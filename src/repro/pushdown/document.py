"""The navigable face of a pushed source.

A :class:`PushedSourceDocument` stands where the metered, buffered
wrapper document would have stood in the lazy plan.  It stays virtual
until the first navigation: only then does it execute the negotiated
native request (one ``wrapper.push(request)`` call, under a
``pushdown.execute`` span) and adopt the complete reply as a
pre-filled buffer -- so ``prepare()`` keeps the paper's
"root handle without source access" property, and everything after
the single native round trip is a buffer hit.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..buffer.component import BufferComponent
from ..navigation.interface import NavigableDocument
from ..runtime.context import ExecutionContext
from .plan import PushedSource
from ..runtime.locks import make_lock

__all__ = ["PushedSourceDocument"]


class PushedSourceDocument(NavigableDocument):
    """Lazily executes one native request, then navigates its result."""

    def __init__(self, node: PushedSource,
                 context: Optional[ExecutionContext] = None):
        self._node = node
        self._context = context
        self._buffer: Optional[BufferComponent] = None
        self._lock = make_lock("pushdown.document")

    @property
    def executed(self) -> bool:
        """Whether the native request has run yet."""
        return self._buffer is not None

    def _materialized(self) -> BufferComponent:
        buffer = self._buffer
        if buffer is not None:
            return buffer
        with self._lock:
            if self._buffer is None:
                node = self._node
                context = self._context
                if context is not None:
                    # the native request is single-flighted under
                    # the document lock; the span/tracer fan-out
                    # rides inside deliberately
                    # lint: allow=L012
                    with context.span("pushdown", "execute",
                                      url=node.compiled.url):
                        tree = node.server.push(node.request)
                else:
                    tree = node.server.push(node.request)
                tracer = context.tracer if context is not None else None
                self._buffer = BufferComponent.prefilled(
                    tree, tracer=tracer,
                    name="pushed:%s" % node.compiled.url)
            return self._buffer

    # -- NavigableDocument -------------------------------------------------
    def root(self) -> Any:
        return self._materialized().root()

    def down(self, pointer: Any) -> Optional[Any]:
        return self._materialized().down(pointer)

    def right(self, pointer: Any) -> Optional[Any]:
        return self._materialized().right(pointer)

    def fetch(self, pointer: Any) -> str:
        return self._materialized().fetch(pointer)

    def select(self, pointer: Any,
               predicate: "str | Callable[[str], bool]") -> Optional[Any]:
        return self._materialized().select(pointer, predicate)
