"""Batched navigation: the buffer side of LXP pipelining.

A plain buffer resolves one hole per round trip, so a forward scan of
a chunked source pays one network latency per chunk -- the reply to
chunk *n* names the hole for chunk *n+1*, a chain of dependent round
trips.  :class:`BatchingBuffer` ships its demand fill as a *batched*
LXP exchange instead (``fill_batch``): one round trip carries the
demanded hole plus up to ``speculate`` server-side speculative
follow-up fills on the holes the server's own replies introduce.  The
speculative replies are spliced into the open tree immediately, so
the next ``speculate`` navigations are buffer hits and the round-trip
chain collapses by a factor of ``speculate + 1``.

Speculative replies are addressed by hole id.  A reply whose hole is
no longer outstanding (already filled, or never grafted) is dropped --
the protocol stays correct under any server speculation policy,
including none.
"""

from __future__ import annotations

from dataclasses import dataclass

from .component import BufferComponent
from .holes import LXPProtocolError, OpenHole

__all__ = ["BatchingBuffer", "BatchStats"]


@dataclass
class BatchStats:
    """Accounting for one batching buffer.

    ``batches`` counts batched exchanges (round trips when the server
    sits across a channel); ``speculative_fills`` counts the extra
    replies those exchanges carried; ``dropped_replies`` counts
    speculative replies that arrived for holes no longer outstanding
    (wasted server work, never a correctness issue).
    """

    batches: int = 0
    speculative_fills: int = 0
    dropped_replies: int = 0

    @property
    def commands(self) -> int:
        """Fill commands answered across all batches."""
        return self.batches + self.speculative_fills


class BatchingBuffer(BufferComponent):
    """A BufferComponent that demands fills through ``fill_batch``.

    ``speculate`` is the per-exchange speculation budget handed to the
    server; 0 degenerates to one-command batches (same round trips as
    the plain buffer, same replies, useful as a protocol smoke test).
    """

    def __init__(self, server, speculate: int = 0, **kwargs):
        super().__init__(server, **kwargs)
        if speculate < 0:
            raise ValueError("speculate must be >= 0")
        self.speculate = speculate
        self.batch_stats = BatchStats()

    def _fill_hole(self, hole: OpenHole) -> None:
        tracer = self.tracer
        if tracer is None or not tracer.active:
            self._batched_fill(hole)
            return
        with tracer.span("buffer", "fill", buffer=self.name):
            self._batched_fill(hole)

    def _batched_fill(self, hole: OpenHole) -> None:
        replies = self.server.fill_batch([hole.hole_id],
                                         self.speculate)
        with self._lock:
            self.batch_stats.batches += 1
            demanded = True
            for hole_id, fragments in replies:
                if demanded and hole_id == hole.hole_id:
                    target: "OpenHole | None" = hole
                    demanded = False
                else:
                    target = self.find_hole(hole_id)
                    if target is None:
                        self.batch_stats.dropped_replies += 1
                        continue
                    self.batch_stats.speculative_fills += 1
                self._splice(target, fragments)
            if demanded:
                raise LXPProtocolError(
                    "batch reply omitted the requested hole %r"
                    % (hole.hole_id,))
