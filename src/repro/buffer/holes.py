"""Open trees with holes (paper Definitions 3 and 4).

An *open* tree is a partial version of a source's XML view: element
nodes whose child lists may contain *holes* -- placeholders carrying an
opaque identifier and representing zero or more unexplored sibling
elements.  The buffer component refines its open tree in place as
``fill`` answers splice fragments over holes.

Two node kinds:

* :class:`OpenElem` -- a labeled node with a mutable child list; the
  buffer hands these out as navigation pointers (object identity is
  the pointer).
* :class:`OpenHole` -- an unexplored sublist, to be replaced by the
  fragments of a ``fill`` answer.

Fragments (what wrappers return from ``fill``) are the immutable
counterparts :class:`FragElem` / :class:`FragHole`; the buffer converts
them to open nodes when splicing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Union

from ..xtree.tree import Tree

__all__ = [
    "OpenElem", "OpenHole", "FragElem", "FragHole", "Fragment",
    "LXPProtocolError", "validate_fill_reply", "fragment_of_tree",
    "fragment_wire_size", "open_tree_to_tree", "count_holes",
]


from ..errors import PermanentSourceError


class LXPProtocolError(PermanentSourceError):
    """Raised when a wrapper's fill reply violates the LXP rules.

    Permanent by classification: re-sending the identical request to
    a wrapper that violates the protocol cannot make it conform."""


# ----------------------------------------------------------------------
# Fragments: immutable wire format of fill answers
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FragElem:
    """An element in a fill reply; ``children`` may mix elements and
    holes."""

    label: str
    children: tuple = ()

    def __repr__(self) -> str:
        if not self.children:
            return self.label
        return "%s[%s]" % (self.label,
                           ", ".join(repr(c) for c in self.children))


@dataclass(frozen=True)
class FragHole:
    """A hole in a fill reply; ``hole_id`` is wrapper-defined."""

    hole_id: object

    def __repr__(self) -> str:
        return "hole[%r]" % (self.hole_id,)


Fragment = Union[FragElem, FragHole]


def validate_fill_reply(fragments: Sequence[Fragment]) -> None:
    """Enforce the LXP progress rules (paper Section 4):

    * a non-empty reply cannot consist only of holes;
    * no two adjacent holes.

    An empty reply is legal ("dead end": the hole represented zero
    elements).
    """
    if not fragments:
        return
    if all(isinstance(f, FragHole) for f in fragments):
        raise LXPProtocolError(
            "fill reply contains only holes: no progress")
    previous_was_hole = False
    for fragment in fragments:
        is_hole = isinstance(fragment, FragHole)
        if is_hole and previous_was_hole:
            raise LXPProtocolError("fill reply has two adjacent holes")
        previous_was_hole = is_hole

    def check(frag: Fragment) -> None:
        if isinstance(frag, FragHole):
            return
        prev_hole = False
        only_holes = bool(frag.children)
        for child in frag.children:
            is_hole = isinstance(child, FragHole)
            if is_hole and prev_hole:
                raise LXPProtocolError(
                    "fill reply has two adjacent holes under %r"
                    % frag.label)
            if not is_hole:
                only_holes = False
                check(child)
            prev_hole = is_hole
        if only_holes and len(frag.children) > 1:
            raise LXPProtocolError(
                "element %r has multiple children but only holes"
                % frag.label)

    for fragment in fragments:
        check(fragment)


def fragment_of_tree(tree: Tree) -> FragElem:
    """A fully closed fragment mirroring ``tree`` (no holes)."""
    return FragElem(tree.label,
                    tuple(fragment_of_tree(c) for c in tree.children))


def fragment_wire_size(fragment: Fragment) -> int:
    """Estimated serialized size of a fragment in bytes (tags + text +
    hole markers), used for transfer-cost accounting by the metered
    transports and the ``lxp_fragment_bytes`` metric.  (Historically
    defined in :mod:`repro.client.remote`, which still re-exports it.)
    """
    if isinstance(fragment, FragHole):
        return len("<hole id=''/>") + len(repr(fragment.hole_id))
    size = 2 * len(fragment.label) + len("<></>")
    for child in fragment.children:
        size += fragment_wire_size(child)
    return size


# ----------------------------------------------------------------------
# Open nodes: the buffer's mutable view
# ----------------------------------------------------------------------

class OpenElem:
    """An element of the buffer's open tree.  Identity == pointer."""

    __slots__ = ("label", "children", "parent")

    def __init__(self, label: str, parent: Optional["OpenElem"] = None):
        self.label = label
        self.children: List[Union[OpenElem, OpenHole]] = []
        self.parent = parent

    def index_in_parent(self) -> int:
        # Child lists are short relative to fill granularity; a linear
        # scan keeps splicing simple and correct.
        return self.parent.children.index(self)

    def __repr__(self) -> str:
        return "OpenElem(%s, %d children)" % (self.label,
                                              len(self.children))


class OpenHole:
    """A hole in the buffer's open tree."""

    __slots__ = ("hole_id", "parent")

    def __init__(self, hole_id: object,
                 parent: Optional[OpenElem] = None):
        self.hole_id = hole_id
        self.parent = parent

    def __repr__(self) -> str:
        return "OpenHole(%r)" % (self.hole_id,)


def graft(fragment: Fragment,
          parent: Optional[OpenElem]) -> Union[OpenElem, OpenHole]:
    """Convert a fill fragment into open nodes under ``parent``."""
    if isinstance(fragment, FragHole):
        return OpenHole(fragment.hole_id, parent)
    node = OpenElem(fragment.label, parent)
    node.children = [graft(c, node) for c in fragment.children]
    return node


def open_tree_to_tree(node: OpenElem,
                      hole_label: str = "hole") -> Tree:
    """Render an open tree as a Tree, holes shown as ``hole[...]``
    leaves (debugging / inspection aid)."""
    children = []
    for child in node.children:
        if isinstance(child, OpenHole):
            children.append(Tree(hole_label, [Tree(str(child.hole_id))]))
        else:
            children.append(open_tree_to_tree(child, hole_label))
    return Tree(node.label, children)


def count_holes(node: OpenElem) -> int:
    """Number of holes currently in the open tree under ``node``."""
    count = 0
    for child in node.children:
        if isinstance(child, OpenHole):
            count += 1
        else:
            count += count_holes(child)
    return count
