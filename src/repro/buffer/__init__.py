"""Buffer component and the Lean XML Fragment Protocol (paper Sec. 4):
open trees with holes, fill-request chasing (Figure 8), granularity
policies, and prefetching."""

from .batch import BatchingBuffer, BatchStats
from .component import BufferComponent, BufferStats
from .holes import (
    FragElem,
    FragHole,
    Fragment,
    LXPProtocolError,
    OpenElem,
    OpenHole,
    count_holes,
    fragment_of_tree,
    open_tree_to_tree,
    validate_fill_reply,
)
from .lxp import (
    AdaptiveTreeLXPServer,
    LXPServer,
    LXPStats,
    RandomizedLXPServer,
    TreeLXPServer,
    reply_holes,
)
from .prefetch import (
    AsyncPrefetchingBuffer,
    PrefetchingBuffer,
    PrefetchStats,
)

__all__ = [
    "OpenElem", "OpenHole", "FragElem", "FragHole", "Fragment",
    "LXPProtocolError", "validate_fill_reply", "fragment_of_tree",
    "open_tree_to_tree", "count_holes", "reply_holes",
    "LXPServer", "LXPStats", "TreeLXPServer", "AdaptiveTreeLXPServer",
    "RandomizedLXPServer",
    "BufferComponent", "BufferStats",
    "PrefetchingBuffer", "AsyncPrefetchingBuffer", "PrefetchStats",
    "BatchingBuffer", "BatchStats",
]
