"""The generic buffer component (paper Section 4, Figure 8).

Sits between a lazy mediator and a wrapper: answers DOM-VXD
navigations from its open tree when it can, and issues LXP ``fill``
requests when a navigation hits a hole.  One implementation serves
every wrapper -- the modularity argument of the refined VXD
architecture ("instead of having each wrapper handle its own buffering
needs ... a separate generic buffer component").

The ``down``/``right`` implementations are the chase algorithms of
Figure 8, generalized to the most liberal LXP replies: fills may return
holes at arbitrary positions, so the chase loops until it reaches an
element or proves there is none, splicing fragments and dropping empty
holes as it goes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..navigation.interface import NavigableDocument
from ..xtree.tree import Tree
from .holes import (
    FragHole,
    LXPProtocolError,
    OpenElem,
    OpenHole,
    fragment_of_tree,
    graft,
    validate_fill_reply,
)
from .lxp import LXPServer
from ..runtime.locks import make_rlock

__all__ = ["BufferComponent", "BufferStats"]


class _PrefilledServer(LXPServer):
    """The degenerate server behind a pre-filled buffer.

    Its root hole is replaced before any navigation can observe it, so
    a fill request can only mean the adopted subtree was wrong --
    which is a protocol error, never silently fabricated data.
    """

    def get_root(self) -> FragHole:
        return FragHole(("prefilled",))

    def fill(self, hole_id: object):
        raise LXPProtocolError(
            "prefilled buffer has no holes to fill (got %r)" % (hole_id,))


@dataclass
class BufferStats:
    """Hit/miss accounting for one buffer."""

    navigations: int = 0
    hits: int = 0
    fills: int = 0

    @property
    def misses(self) -> int:
        return self.fills

    @property
    def hit_rate(self) -> float:
        if self.navigations == 0:
            return 1.0
        return self.hits / self.navigations

    def reset(self) -> None:
        self.navigations = 0
        self.hits = 0
        self.fills = 0


class BufferComponent(NavigableDocument):
    """A NavigableDocument over an LXP wrapper, backed by an open tree.

    Pointers are :class:`OpenElem` nodes (object identity).  The open
    tree only ever grows/refines; handed-out pointers stay valid.
    """

    def __init__(self, server: LXPServer, tracer=None, name: str = ""):
        self.server = server
        self.stats = BufferStats()
        #: optional tracer + buffer name: demand fills become
        #: ``buffer.fill`` spans in the causal trace, so the source
        #: commands and round trips a fill provokes nest under it
        self.tracer = tracer
        self.name = name
        self._root: Optional[OpenElem] = None
        #: a virtual super-root whose single child list holds the root
        #: element (or its hole before the first fill)
        self._top = OpenElem("#top")
        self._top.children = [OpenHole(server.get_root().hole_id,
                                       self._top)]
        #: guards the open tree and the fill counters.  The plain
        #: buffer is client-thread-confined and never contends on it;
        #: the concurrent subclasses (async prefetch) splice worker
        #: results through the same lock.  Re-entrant: a splice may
        #: happen inside a navigation that already holds it.
        self._lock = make_rlock("buffer.component")

    @classmethod
    def prefilled(cls, tree: Tree, tracer=None,
                  name: str = "") -> "BufferComponent":
        """A buffer whose open tree is ``tree``, fully closed.

        This is how a pushed source-native result enters the
        navigation stack: the complete reply is adopted as one
        hole-free subtree, so every later navigation is a buffer hit
        and no fill (hence no source navigation) can ever happen.
        """
        # No lock: the buffer is thread-confined until returned (the
        # same reasoning that exempts __init__).  Taking it here put
        # buffer.component under pushdown.document in the lock-order
        # graph and closed a name-level cycle with the demand-fill
        # path (L010).
        buffer = cls(_PrefilledServer(), tracer=tracer, name=name)
        root = graft(fragment_of_tree(tree), buffer._top)
        buffer._top.children = [root]
        return buffer

    # -- splicing --------------------------------------------------------
    def _splice(self, hole: OpenHole, fragments) -> None:
        """Replace ``hole`` in the open tree by ``fragments``.

        The one mutation point of the open tree: every fill reply --
        demanded, prefetched, batched or speculative -- lands here.
        """
        validate_fill_reply(fragments)
        with self._lock:
            self.stats.fills += 1
            parent = hole.parent
            index = parent.children.index(hole)
            spliced = [graft(f, parent) for f in fragments]
            parent.children[index:index + 1] = spliced

    def _fill_hole(self, hole: OpenHole) -> None:
        """Replace ``hole`` by the wrapper's fill reply."""
        tracer = self.tracer
        if tracer is None or not tracer.active:
            self._splice(hole, self.server.fill(hole.hole_id))
            return
        with tracer.span("buffer", "fill", buffer=self.name):
            self._splice(hole, self.server.fill(hole.hole_id))

    def _chase_elem_at(self, parent: OpenElem,
                       index: int) -> Optional[OpenElem]:
        """First element at or after ``index`` in ``parent``'s child
        list, filling holes as needed (Figure 8's chase, iterative)."""
        while index < len(parent.children):
            node = parent.children[index]
            if isinstance(node, OpenElem):
                return node
            self._fill_hole(node)
            # The hole was replaced in place; re-examine this index.
        return None

    # -- NavigableDocument ---------------------------------------------------
    def root(self) -> OpenElem:
        """The root element pointer.

        Note: resolving the root may require the first fill -- LXP's
        ``get_root`` only returns a hole.  The overall architecture's
        "handle without source access" property is preserved one level
        up: the *mediator* does not call this until the client
        navigates.
        """
        with self._lock:
            if self._root is None:
                self.stats.navigations += 1
                # demand fills run under the open-tree lock by
                # design; see BLOCKING_HOLD_ALLOWED
                # lint: allow=L011,L012
                root = self._chase_elem_at(self._top, 0)
                if root is None:
                    raise LXPProtocolError(
                        "wrapper shipped no root element")
                self._root = root
            return self._root

    def down(self, pointer: OpenElem) -> Optional[OpenElem]:
        with self._lock:
            self.stats.navigations += 1
            before = self.stats.fills
            # demand fills run under the open-tree lock by
            # design; see BLOCKING_HOLD_ALLOWED
            # lint: allow=L011,L012
            result = self._chase_elem_at(pointer, 0)
            if self.stats.fills == before:
                self.stats.hits += 1
            return result

    def right(self, pointer: OpenElem) -> Optional[OpenElem]:
        with self._lock:
            self.stats.navigations += 1
            before = self.stats.fills
            parent = pointer.parent
            if parent is None or parent is self._top:
                # The root element has no siblings (the wrapper exports
                # a single root; trailing holes beside it are not
                # chased).
                self.stats.hits += 1
                return None
            index = pointer.index_in_parent()
            # demand fills run under the open-tree lock by
            # design; see BLOCKING_HOLD_ALLOWED
            # lint: allow=L011,L012
            result = self._chase_elem_at(parent, index + 1)
            if self.stats.fills == before:
                self.stats.hits += 1
            return result

    def fetch(self, pointer: OpenElem) -> str:
        # Labels always travel with their elements: a fetch never
        # triggers a fill.
        with self._lock:
            self.stats.navigations += 1
            self.stats.hits += 1
        return pointer.label

    # -- inspection -------------------------------------------------------
    def open_root(self) -> Optional[OpenElem]:
        """The current open tree (None before the first navigation)."""
        return self._root

    def leftmost_holes(self, limit: int) -> List[OpenHole]:
        """Up to ``limit`` outstanding holes in document order -- the
        direction a forward-browsing client needs next.  Both
        prefetcher variants pick their targets from this list."""
        found: List[OpenHole] = []
        with self._lock:
            start = self._root if self._root is not None else self._top

            def walk(node: OpenElem) -> None:
                for child in node.children:
                    if len(found) >= limit:
                        return
                    if isinstance(child, OpenHole):
                        found.append(child)
                    else:
                        walk(child)

            walk(start)
        return found

    def find_hole(self, hole_id) -> Optional[OpenHole]:
        """The outstanding open-tree hole carrying ``hole_id``, if any.

        Speculative batch replies are addressed by hole id, not by
        pointer; a reply whose hole has meanwhile been filled (or was
        never seen) resolves to ``None`` and is simply dropped.
        """
        with self._lock:
            stack: List[OpenElem] = [self._top]
            while stack:
                node = stack.pop()
                for child in node.children:
                    if isinstance(child, OpenHole):
                        if child.hole_id == hole_id:
                            return child
                    else:
                        stack.append(child)
        return None

    def holes_outstanding(self) -> int:
        from .holes import count_holes
        with self._lock:
            root = self._root
            if root is None:
                return sum(1 for c in self._top.children
                           if isinstance(c, OpenHole))
            return count_holes(root)
