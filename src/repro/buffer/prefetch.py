"""Prefetching: decoupling client pull from wrapper push (Section 4).

"a buffer can be used to decouple the client-driven view navigation
('pull from above') and the production of results by the wrapped
source ('push from below') based on an asynchronous prefetching
strategy."

Two realizations of that strategy share the :class:`PrefetchStats`
accounting:

:class:`PrefetchingBuffer`
    Models the asynchrony's *effect* deterministically: between
    client-issued navigations the prefetcher fills up to ``lookahead``
    outstanding holes (leftmost-first -- the direction a
    forward-browsing client will need next).  The stats separate
    demand fills (the client waited for these) from prefetch fills
    (overlapped with client think time), so experiment E5 can report
    stall counts rather than pretend wall-clock concurrency.

:class:`AsyncPrefetchingBuffer`
    The real thing: a small thread pool fills outstanding holes
    *during* client think time.  Workers only perform the source I/O
    (``server.fill``); completed fragments are handed over and spliced
    into the open tree on the client thread, under the buffer lock, so
    the open tree stays single-writer.  A navigation that reaches a
    hole whose fill is still in flight *stalls* (counted) and waits
    for that one future -- never issuing a duplicate fill.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional

from .component import BufferComponent
from .holes import OpenElem, OpenHole

__all__ = ["PrefetchingBuffer", "AsyncPrefetchingBuffer",
           "PrefetchStats"]


@dataclass
class PrefetchStats:
    """Demand/prefetch fill split, plus stall accounting.

    ``stalls`` counts navigations that reached a hole whose prefetch
    was issued but not yet complete -- the client had to wait.  The
    deterministic prefetcher never stalls (its fills are synchronous);
    the thread-backed one reports its overlap quality through the
    ``stalls : prefetch_fills`` ratio.
    """

    demand_fills: int = 0
    prefetch_fills: int = 0
    stalls: int = 0

    @property
    def total_fills(self) -> int:
        return self.demand_fills + self.prefetch_fills


class PrefetchingBuffer(BufferComponent):
    """A BufferComponent that fills holes ahead of the client.

    Parameters
    ----------
    server:
        The LXP wrapper to pull from.
    lookahead:
        Maximum holes filled per client navigation, beyond what the
        navigation itself demanded.  0 disables prefetching (plain
        buffer behaviour).
    """

    def __init__(self, server, lookahead: int = 2, **kwargs):
        super().__init__(server, **kwargs)
        self.lookahead = lookahead
        self.prefetch_stats = PrefetchStats()
        self._in_prefetch = False
        #: prefetch fills issued since the last demand fill -- the
        #: prefetcher never runs more than ``lookahead`` fills ahead of
        #: what the client actually consumed.
        self._ahead = 0

    # Every real fill passes through _fill_hole; classify it.
    def _fill_hole(self, hole: OpenHole) -> None:
        super()._fill_hole(hole)
        if self._in_prefetch:
            self.prefetch_stats.prefetch_fills += 1
            self._ahead += 1
        else:
            self.prefetch_stats.demand_fills += 1
            self._ahead = 0

    def _prefetch(self) -> None:
        if self.lookahead <= 0 or self._ahead >= self.lookahead:
            return
        budget = self.lookahead - self._ahead
        self._in_prefetch = True
        try:
            for hole in self.leftmost_holes(budget):
                # The hole may have been detached by a previous splice
                # in this round; skip stale ones.
                if hole.parent is not None \
                        and hole in hole.parent.children:
                    self._fill_hole(hole)
        finally:
            self._in_prefetch = False

    # -- navigations trigger a prefetch round afterwards -----------------
    def down(self, pointer):
        result = super().down(pointer)
        self._prefetch()
        return result

    def right(self, pointer):
        result = super().right(pointer)
        self._prefetch()
        return result


class AsyncPrefetchingBuffer(BufferComponent):
    """A BufferComponent whose prefetcher is a real thread pool.

    After each client navigation, up to ``lookahead`` leftmost
    outstanding holes are dispatched to ``workers`` threads.  Workers
    run *only* the source I/O -- ``server.fill(hole_id)`` -- so the
    layers below must merely keep their counters thread-safe (they
    do); the open tree itself is touched exclusively on the client
    thread, which collects completed futures at the moment their hole
    is demanded and splices under the buffer lock.

    Determinism note: the *resulting* open tree and answer are
    identical to the sequential path (the same holes get the same
    replies); only the timing and the demand/prefetch classification
    of fills differ.  A prefetched fill that *failed* re-raises its
    error when (and only when) the client actually demands that hole,
    so the resilience seams keep their sequential semantics.
    """

    def __init__(self, server, lookahead: int = 2, workers: int = 1,
                 **kwargs):
        super().__init__(server, **kwargs)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if lookahead < 0:
            raise ValueError("lookahead must be >= 0")
        self.lookahead = lookahead
        self.workers = workers
        self.prefetch_stats = PrefetchStats()
        self._executor: Optional[ThreadPoolExecutor] = None
        #: holes with a fill in flight (or complete, not yet spliced)
        self._inflight: Dict[OpenHole, Future] = {}

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="mix-prefetch")
        return self._executor

    # -- demand path -------------------------------------------------------
    def _fill_hole(self, hole: OpenHole) -> None:
        with self._lock:
            future = self._inflight.pop(hole, None)
        if future is None:
            super()._fill_hole(hole)  # spans like any demand fill
            self.prefetch_stats.demand_fills += 1
            return
        if not future.done():
            self.prefetch_stats.stalls += 1
        fragments = future.result()  # re-raises a worker's failure
        self._splice(hole, fragments)
        self.prefetch_stats.prefetch_fills += 1

    # -- prefetch scheduling ----------------------------------------------
    def _traced_fill(self, hole_id, parent):
        """The worker-thread task: the source I/O, bracketed (when the
        tracer is live) by span adoption so the ``prefetch_fill`` span
        and everything the source emits stay children of the client
        navigation that scheduled the prefetch."""
        tracer = self.tracer
        if tracer is None or not tracer.active:
            return self.server.fill(hole_id)
        with tracer.attach(parent):
            with tracer.span("buffer", "prefetch_fill",
                             buffer=self.name):
                return self.server.fill(hole_id)

    def _schedule(self) -> None:
        if self.lookahead <= 0:
            return
        tracer = self.tracer
        parent = (tracer.capture()
                  if tracer is not None and tracer.active else None)
        with self._lock:
            budget = self.lookahead - len(self._inflight)
            if budget <= 0:
                return
            executor = self._ensure_executor()
            for hole in self.leftmost_holes(self.lookahead):
                if budget <= 0:
                    break
                if hole in self._inflight:
                    continue
                self._inflight[hole] = executor.submit(
                    self._traced_fill, hole.hole_id, parent)
                budget -= 1

    def down(self, pointer):
        result = super().down(pointer)
        self._schedule()
        return result

    def right(self, pointer):
        result = super().right(pointer)
        self._schedule()
        return result

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Stop the pool; in-flight results are abandoned (their holes
        stay open and will be demand-filled if ever reached)."""
        with self._lock:
            executor, self._executor = self._executor, None
            inflight, self._inflight = dict(self._inflight), {}
        for future in inflight.values():
            future.cancel()
        if executor is not None:
            executor.shutdown(wait=True)
