"""Prefetching: decoupling client pull from wrapper push (Section 4).

"a buffer can be used to decouple the client-driven view navigation
('pull from above') and the production of results by the wrapped
source ('push from below') based on an asynchronous prefetching
strategy."

We model the asynchrony's *effect* deterministically: between
client-issued navigations the prefetcher fills up to ``lookahead``
outstanding holes (leftmost-first -- the direction a forward-browsing
client will need next).  The stats separate demand fills (the client
waited for these) from prefetch fills (overlapped with client think
time), so experiment E5 can report stall counts rather than pretend
wall-clock concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .component import BufferComponent
from .holes import OpenElem, OpenHole

__all__ = ["PrefetchingBuffer", "PrefetchStats"]


@dataclass
class PrefetchStats:
    demand_fills: int = 0
    prefetch_fills: int = 0

    @property
    def total_fills(self) -> int:
        return self.demand_fills + self.prefetch_fills


class PrefetchingBuffer(BufferComponent):
    """A BufferComponent that fills holes ahead of the client.

    Parameters
    ----------
    server:
        The LXP wrapper to pull from.
    lookahead:
        Maximum holes filled per client navigation, beyond what the
        navigation itself demanded.  0 disables prefetching (plain
        buffer behaviour).
    """

    def __init__(self, server, lookahead: int = 2):
        super().__init__(server)
        self.lookahead = lookahead
        self.prefetch_stats = PrefetchStats()
        self._in_prefetch = False
        #: prefetch fills issued since the last demand fill -- the
        #: prefetcher never runs more than ``lookahead`` fills ahead of
        #: what the client actually consumed.
        self._ahead = 0

    # Every real fill passes through _fill_hole; classify it.
    def _fill_hole(self, hole: OpenHole) -> None:
        super()._fill_hole(hole)
        if self._in_prefetch:
            self.prefetch_stats.prefetch_fills += 1
            self._ahead += 1
        else:
            self.prefetch_stats.demand_fills += 1
            self._ahead = 0

    def _leftmost_holes(self, limit: int) -> List[OpenHole]:
        """Up to ``limit`` holes in document order from the open root."""
        found: List[OpenHole] = []
        start = self._root if self._root is not None else self._top

        def walk(node: OpenElem) -> None:
            for child in node.children:
                if len(found) >= limit:
                    return
                if isinstance(child, OpenHole):
                    found.append(child)
                else:
                    walk(child)

        walk(start)
        return found

    def _prefetch(self) -> None:
        if self.lookahead <= 0 or self._ahead >= self.lookahead:
            return
        budget = self.lookahead - self._ahead
        self._in_prefetch = True
        try:
            for hole in self._leftmost_holes(budget):
                # The hole may have been detached by a previous splice
                # in this round; skip stale ones.
                if hole.parent is not None \
                        and hole in hole.parent.children:
                    self._fill_hole(hole)
        finally:
            self._in_prefetch = False

    # -- navigations trigger a prefetch round afterwards -----------------
    def down(self, pointer):
        result = super().down(pointer)
        self._prefetch()
        return result

    def right(self, pointer):
        result = super().right(pointer)
        self._prefetch()
        return result
