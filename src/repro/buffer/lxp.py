"""The Lean XML Fragment Protocol (LXP) -- paper Section 4.

Two commands only::

    get_root(uri)   ->  hole[id]          establish the connection
    fill(hole[id])  ->  [fragment...]     explore the part the hole
                                          represents

The wrapper decides the reply granularity: one node, a chunk of
siblings, a whole subtree, or any liberal mix with holes at arbitrary
(non-adjacent) positions.  This module provides the server interface,
a reference server over in-memory trees with configurable granularity
policies, and a randomized liberal server used by the property tests
to hammer the buffer's chase algorithms.

Hole identifiers are *stateless* where possible (the MIXm relational
wrapper's ``db.table.row`` scheme): ``TreeLXPServer`` encodes
``(path, lo, hi)`` -- the represented sublist of children -- directly
in the id, so the server keeps no per-hole table.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..runtime.config import validate_granularity
from ..xtree.tree import Tree
from .holes import FragElem, FragHole, Fragment, LXPProtocolError
from ..runtime.locks import make_lock

__all__ = ["LXPServer", "LXPStats", "TreeLXPServer",
           "AdaptiveTreeLXPServer", "RandomizedLXPServer",
           "measure_fragment", "reply_holes"]


@dataclass
class LXPStats:
    """Traffic accounting for one LXP connection.

    Carries its own lock: with batched pipelining and thread-backed
    prefetching, fills reach one server from the client thread and
    from prefetch workers at once."""

    fills: int = 0
    elements_shipped: int = 0
    holes_shipped: int = 0

    def __post_init__(self) -> None:
        # Not a dataclass field: equality/repr stay value-based.
        self.lock = make_lock("lxp.stats")
        # Optional observability hookup (not dataclass fields for the
        # same reason): when a MetricsRegistry is attached, every
        # measured reply also feeds the lxp_* metric series, labelled
        # with this connection's source name.
        self.metrics = None
        self.source = ""

    def snapshot(self) -> dict:
        """A consistent copy of the counters, taken under the lock
        (safe while fills are still arriving from other threads)."""
        with self.lock:
            return {
                "fills": self.fills,
                "elements_shipped": self.elements_shipped,
                "holes_shipped": self.holes_shipped,
            }

    def reset(self) -> None:
        with self.lock:
            self.fills = 0
            self.elements_shipped = 0
            self.holes_shipped = 0


def reply_holes(fragments: Sequence[Fragment]) -> List[object]:
    """The hole ids of a fill reply, in document order.

    The speculation loop of :meth:`LXPServer.fill_batch` uses this to
    grow its frontier; the buffer uses it to predict what a reply left
    unexplored."""
    holes: List[object] = []

    def walk(fragment: Fragment) -> None:
        if isinstance(fragment, FragHole):
            holes.append(fragment.hole_id)
        else:
            for child in fragment.children:
                walk(child)

    for fragment in fragments:
        walk(fragment)
    return holes


class LXPServer:
    """Interface every LXP wrapper implements."""

    def get_root(self) -> FragHole:
        """A hole standing for the (not yet shipped) root element."""
        raise NotImplementedError

    def fill(self, hole_id) -> List[Fragment]:
        """Explore the part of the source the hole represents."""
        raise NotImplementedError

    def fill_batch(self, hole_ids: Sequence[object],
                   speculate: int = 0
                   ) -> List[Tuple[object, List[Fragment]]]:
        """Answer a *batch* of fill commands in one exchange.

        The pipelined form of LXP: the client ships every outstanding
        hole id it wants resolved and receives one multi-fragment
        reply -- a list of ``(hole_id, fragments)`` pairs, the
        requested ids first, in request order.

        ``speculate`` additionally lets the server keep going on its
        own: after answering the requested ids it may fill up to
        ``speculate`` of the holes *its own replies* introduced
        (frontier order, i.e. document order of discovery).  That
        collapses a forward scan's chain of dependent round trips --
        the reply to chunk *n* names the hole for chunk *n+1*, which
        the server resolves before the client ever asks.

        Each answered hole still counts as one LXP command in
        :class:`LXPStats` (via :func:`measure_fragment` inside
        ``fill``); what batching saves is *round trips*, accounted by
        the transport.  The default implementation is expressed in
        terms of :meth:`fill`, so every wrapper speaks the batched
        protocol for free.
        """
        if speculate < 0:
            raise LXPProtocolError("speculate must be >= 0")
        replies: List[Tuple[object, List[Fragment]]] = []
        frontier: "deque" = deque()
        answered = set()
        for hole_id in hole_ids:
            reply = self.fill(hole_id)
            replies.append((hole_id, reply))
            answered.add(hole_id)
            frontier.extend(reply_holes(reply))
        budget = speculate
        while budget > 0 and frontier:
            hole_id = frontier.popleft()
            if hole_id in answered:
                continue
            reply = self.fill(hole_id)
            replies.append((hole_id, reply))
            answered.add(hole_id)
            frontier.extend(reply_holes(reply))
            budget -= 1
        return replies


def measure_fragment(stats: LXPStats,
                     fragments: Sequence[Fragment]) -> None:
    """Account one fill reply against ``stats``: bump the fill count
    and tally shipped elements/holes across the whole reply.  Every
    LXP server (source wrappers and the remote channel exporter) calls
    this on each reply it returns."""
    elements = holes = 0
    stack = list(fragments)
    while stack:
        fragment = stack.pop()
        if isinstance(fragment, FragHole):
            holes += 1
        else:
            elements += 1
            stack.extend(fragment.children)
    with stats.lock:
        stats.fills += 1
        stats.elements_shipped += elements
        stats.holes_shipped += holes
        metrics = getattr(stats, "metrics", None)
    if metrics is not None and metrics.enabled:
        source = getattr(stats, "source", "") or "unnamed"
        metrics.counter("lxp_fills_total").inc(source=source)
        metrics.counter("lxp_elements_shipped_total").inc(
            elements, source=source)
        metrics.counter("lxp_holes_shipped_total").inc(
            holes, source=source)
        from .holes import fragment_wire_size
        metrics.histogram("lxp_fragment_bytes").observe(
            sum(fragment_wire_size(f) for f in fragments),
            source=source)


#: deprecated private alias, kept for one release for old importers
_measure = measure_fragment


class TreeLXPServer(LXPServer):
    """Serve a complete in-memory tree through LXP.

    Granularity knobs (the levers of experiment E4/E5):

    chunk_size:
        Maximum sibling elements per fill; a trailing hole covers the
        rest ("a relational source may return chunks of 100 tuples at
        a time").
    depth:
        How many levels below a shipped element are included; children
        past the horizon are replaced by a single hole.  ``depth=1``
        ships elements with all children unexplored; a large depth
        ships whole subtrees ("start streaming of huge documents by
        sending complete elements").

    Hole ids are ``(path, lo, hi)``: the represented sublist
    ``children[lo:hi]`` of the node at child-index ``path`` (hi=None
    means "to the end"), plus the root hole ``("root",)``.
    """

    def __init__(self, tree: Tree, chunk_size: Optional[int] = None,
                 depth: int = 1000000):
        self.tree = tree
        self.chunk_size, self.depth = validate_granularity(chunk_size,
                                                           depth)
        self.stats = LXPStats()

    def snapshot_version(self) -> object:
        """The version stamp of the snapshot this server exports.

        The capability behind cross-session fragment caching
        (:mod:`repro.runtime.fragcache`), negotiated by presence like
        ``push_compile``: a wrapper that cannot stamp its snapshots
        simply doesn't implement this, and its fragments are never
        cached.  This reference server exports one immutable in-memory
        tree, so the version is constant; mutable sources (the
        versioned testing harness) return a stamp that changes
        whenever the underlying snapshot does.
        """
        return 0

    # -- helpers ----------------------------------------------------------
    def _node_at(self, path: Tuple[int, ...]) -> Tree:
        node = self.tree
        for index in path:
            node = node.child(index)
        return node

    def _ship_element(self, path: Tuple[int, ...], node: Tree,
                      depth_left: int) -> FragElem:
        if node.is_leaf:
            return FragElem(node.label)
        if depth_left <= 1:
            # Children unexplored: one hole for the whole list.
            return FragElem(node.label,
                            (FragHole((path, 0, None)),))
        kids = []
        limit = min(len(node.children), self.chunk_size)
        for index in range(limit):
            kids.append(self._ship_element(
                path + (index,), node.child(index), depth_left - 1))
        if limit < len(node.children):
            kids.append(FragHole((path, limit, None)))
        return FragElem(node.label, tuple(kids))

    # -- LXPServer ----------------------------------------------------------
    def get_root(self) -> FragHole:
        return FragHole(("root",))

    def fill(self, hole_id) -> List[Fragment]:
        if hole_id == ("root",):
            reply: List[Fragment] = [
                self._ship_element((), self.tree, self.depth)]
            measure_fragment(self.stats, reply)
            return reply
        try:
            path, lo, hi = hole_id
            parent = self._node_at(path)
        except (ValueError, IndexError, TypeError):
            raise LXPProtocolError("unknown hole id %r" % (hole_id,))
        end = len(parent.children) if hi is None else hi
        reply = []
        limit = min(end, lo + self.chunk_size)
        for index in range(lo, limit):
            reply.append(self._ship_element(
                path + (index,), parent.child(index), self.depth))
        if limit < end:
            reply.append(FragHole((path, limit, hi)))
        measure_fragment(self.stats, reply)
        return reply


class AdaptiveTreeLXPServer(TreeLXPServer):
    """TreeLXPServer with wrapper-controlled *adaptive* granularity.

    "the wrapper control[s] the granularity at which it exports data"
    (paper Section 4) -- this policy starts small (cheap for clients
    that peek and leave) and doubles the chunk on each sequential
    continuation fill (cheap for clients that keep scanning), up to
    ``max_chunk``.  The growth state is encoded in the hole id
    (``(path, lo, hi, next_chunk)``), so the server stays stateless.
    """

    def __init__(self, tree: Tree, initial_chunk: int = 2,
                 max_chunk: int = 64, depth: int = 1000000):
        super().__init__(tree, chunk_size=initial_chunk, depth=depth)
        if max_chunk < initial_chunk:
            raise ValueError("max_chunk must be >= initial_chunk")
        self.initial_chunk = initial_chunk
        self.max_chunk = max_chunk

    def fill(self, hole_id) -> List[Fragment]:
        if hole_id == ("root",):
            self.chunk_size = self.initial_chunk
            reply: List[Fragment] = [
                self._ship_element((), self.tree, self.depth)]
            measure_fragment(self.stats, reply)
            return reply
        try:
            if len(hole_id) == 4:
                path, lo, hi, chunk = hole_id
            else:
                path, lo, hi = hole_id
                chunk = self.initial_chunk
            parent = self._node_at(path)
        except (ValueError, IndexError, TypeError):
            raise LXPProtocolError("unknown hole id %r" % (hole_id,))
        end = len(parent.children) if hi is None else hi
        self.chunk_size = chunk  # _ship_element uses it for subtrees
        reply = []
        limit = min(end, lo + chunk)
        for index in range(lo, limit):
            reply.append(self._ship_element(
                path + (index,), parent.child(index), self.depth))
        if limit < end:
            grown = min(chunk * 2, self.max_chunk)
            reply.append(FragHole((path, limit, hi, grown)))
        measure_fragment(self.stats, reply)
        return reply


class RandomizedLXPServer(LXPServer):
    """A deliberately *liberal* LXP server for robustness testing.

    Every fill answers with a random legal mix of elements and holes:
    random split points, holes at the front, middle or back (never two
    adjacent, always some progress), random subtree depths.  Seeded,
    so failures reproduce.  Example 7's trace is one possible behaviour
    of this server.
    """

    def __init__(self, tree: Tree, seed: int = 0,
                 max_run: int = 3):
        self.tree = tree
        self.rng = random.Random(seed)
        self.max_run = max(1, max_run)
        self.stats = LXPStats()

    def _node_at(self, path: Tuple[int, ...]) -> Tree:
        node = self.tree
        for index in path:
            node = node.child(index)
        return node

    def get_root(self) -> FragHole:
        return FragHole(("root",))

    def _ship_element(self, path: Tuple[int, ...],
                      node: Tree) -> FragElem:
        if node.is_leaf:
            return FragElem(node.label)
        if self.rng.random() < 0.5:
            # Leave the children wholly unexplored.
            return FragElem(node.label,
                            (FragHole((path, 0, len(node.children))),))
        return FragElem(
            node.label,
            tuple(self._split_range(path, 0, len(node.children))))

    def _split_range(self, path: Tuple[int, ...], lo: int,
                     hi: int) -> List[Fragment]:
        """A random legal fragment list covering children [lo, hi)."""
        if lo >= hi:
            return []
        fragments: List[Fragment] = []
        index = lo
        # Optionally a leading hole covering a prefix.
        if self.rng.random() < 0.3 and hi - index >= 2:
            cut = self.rng.randint(index + 1, hi - 1)
            fragments.append(FragHole((path, index, cut)))
            index = cut
        while index < hi:
            run = min(self.rng.randint(1, self.max_run), hi - index)
            for offset in range(run):
                fragments.append(self._ship_element(
                    path + (index + offset,),
                    self._node_at(path).child(index + offset)))
            index += run
            if index < hi:
                cut = self.rng.randint(index + 1, hi)
                fragments.append(FragHole((path, index, cut)))
                index = cut
        return fragments

    def fill(self, hole_id) -> List[Fragment]:
        if hole_id == ("root",):
            reply: List[Fragment] = [self._ship_element((), self.tree)]
            measure_fragment(self.stats, reply)
            return reply
        path, lo, hi = hole_id
        parent = self._node_at(path)
        end = len(parent.children) if hi is None else hi
        reply = self._split_range(path, lo, end)
        measure_fragment(self.stats, reply)
        return reply
