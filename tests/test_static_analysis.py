"""The static plan analyzer: findings model, the four passes, the
mediator wiring, and the ``lint`` CLI.

The analyzer must (a) agree with ``classify_plan`` on the overall
verdict, (b) catch schema-level impossibilities before any source is
touched, (c) stay byte-for-byte off the default path, and (d) keep
its code registry in sync with the PROTOCOLS.md documentation table.
"""

import json
from pathlib import Path

import pytest

from repro import MIXMediator, StaticAnalysisError, XMLFileWrapper
from repro.algebra import (
    And,
    Comparison,
    Const,
    Difference,
    Distinct,
    GetDescendants,
    GroupBy,
    Join,
    OrderBy,
    Project,
    Select,
    Source,
    TruePredicate,
    Var,
)
from repro.analysis import (
    CODES,
    AnalysisReport,
    Finding,
    SchemaGraph,
    Severity,
    analyze_plan,
    analyze_query,
    cardinality_degree,
    node_at,
    scan_examples,
    static_truth,
    walk_with_paths,
)
from repro.cli import main as cli_main
from repro.runtime import EngineConfig
from repro.wrappers.xmlfile import document_node
from repro.xmas.dtd import infer_dtd
from repro.xtree.parse import parse_xml

from .fixtures import fig4_plan, homes_source, schools_source

REPO = Path(__file__).resolve().parent.parent

HOMES_XML = """<homes>
  <home><addr>A</addr><zip>92093</zip></home>
  <home><addr>B</addr><zip>92111</zip></home>
</homes>"""

SCHOOLS_XML = """<schools>
  <school><dir>Smith</dir><zip>92093</zip></school>
</schools>"""

FIG4_QUERY = (
    "CONSTRUCT <answer><med_home> $H $S {$S} </med_home> {$H}"
    "</answer> {} "
    "WHERE homesSrc homes.home $H AND $H zip._ $V1 "
    "AND schoolsSrc schools.school $S AND $S zip._ $V2 "
    "AND $V1 = $V2")


def _schemas():
    return {
        "homesSrc": document_node("homesSrc", parse_xml(HOMES_XML)),
        "schoolsSrc": document_node("schoolsSrc",
                                    parse_xml(SCHOOLS_XML)),
    }


def _codes(report):
    return {f.code for f in report.findings}


# ----------------------------------------------------------------------
# Findings model
# ----------------------------------------------------------------------

class TestFindingsModel:
    def test_severity_order_and_parse(self):
        assert Severity.INFO.rank < Severity.WARNING.rank \
            < Severity.ERROR.rank
        assert Severity.parse("warning") is Severity.WARNING
        with pytest.raises(ValueError):
            Severity.parse("fatal")

    def test_finding_defaults_severity_from_registry(self):
        finding = Finding(code="S010", message="nope")
        assert finding.severity is Severity.ERROR
        assert finding.title == "unsatisfiable-path"

    def test_unregistered_code_rejected(self):
        with pytest.raises(ValueError):
            Finding(code="Z999", message="bogus")

    def test_report_sorts_most_severe_first(self):
        report = AnalysisReport([
            Finding(code="R010", message="hint"),
            Finding(code="S010", message="error"),
            Finding(code="B001", message="warn"),
        ])
        assert [f.severity for f in report.findings] == [
            Severity.ERROR, Severity.WARNING, Severity.INFO]

    def test_suppression_drops_and_counts(self):
        report = AnalysisReport(
            [Finding(code="B001", message="warn"),
             Finding(code="R010", message="hint")],
            suppressed=("B001",))
        assert _codes(report) == {"R010"}
        assert report.suppressed_count == 1

    def test_exit_codes(self):
        err = AnalysisReport([Finding(code="S010", message="e")])
        warn = AnalysisReport([Finding(code="B001", message="w")])
        info = AnalysisReport([Finding(code="R010", message="i")])
        clean = AnalysisReport([])
        assert err.exit_code() == 2
        assert warn.exit_code() == 1
        assert info.exit_code() == 0
        assert info.exit_code(fail_on=Severity.INFO) == 1
        assert warn.exit_code(fail_on=Severity.ERROR) == 0
        assert clean.exit_code(fail_on=Severity.INFO) == 0

    def test_json_shape(self):
        report = AnalysisReport(
            [Finding(code="B001", message="w", node_path="0",
                     signature="orderBy[$V]")],
            verdict="unbrowsable", plan_signature="root[sig]",
            subject="s")
        data = json.loads(report.to_json())
        assert data["subject"] == "s"
        assert data["verdict"] == "unbrowsable"
        assert data["plan"] == "root[sig]"
        assert data["counts"]["warning"] == 1
        finding = data["findings"][0]
        assert finding["code"] == "B001"
        assert finding["severity"] == "warning"
        assert finding["node_path"] == "0"
        assert finding["signature"] == "orderBy[$V]"

    def test_codes_documented_in_protocols(self):
        """Every registered code appears in the PROTOCOLS.md table
        with its registry severity and title -- and no ghost codes
        are documented.  Scoped to the "Static diagnostics" section:
        the repo linter's own codes live in "Concurrency discipline"
        and have their own sync test."""
        text = (REPO / "docs" / "PROTOCOLS.md").read_text()
        section = text.split("## Static diagnostics", 1)[1]
        section = section.split("\n## ", 1)[0]
        for code, info in CODES.items():
            row = "| `%s` | %s | `%s` |" % (code, info.severity,
                                            info.title)
            assert row in section, \
                "PROTOCOLS.md missing/outdated: %s" % row
        import re
        documented = set(re.findall(r"\| `([A-Z]\d{3})` \|", section))
        assert documented == set(CODES)


# ----------------------------------------------------------------------
# Plan walking
# ----------------------------------------------------------------------

class TestWalk:
    def test_paths_roundtrip(self):
        plan = fig4_plan()
        for path, node in walk_with_paths(plan):
            assert node_at(plan, path) is node

    def test_root_path_is_empty(self):
        plan = fig4_plan()
        pairs = list(walk_with_paths(plan))
        assert pairs[0] == ("", plan)


# ----------------------------------------------------------------------
# The browsability pass
# ----------------------------------------------------------------------

class TestBrowsabilityPass:
    def test_fig4_has_no_browsability_warnings(self):
        report = analyze_plan(fig4_plan())
        assert not [f for f in report.findings
                    if f.code in ("B001", "B002")]
        assert report.verdict == "browsable"

    def test_orderby_flags_b001_b002(self):
        plan = OrderBy(Project(GetDescendants(
            Source("src", "R"), "R", "_", "X"), ["X"]), ["X"])
        report = analyze_plan(plan)
        assert {"B001", "B002"} <= _codes(report)
        assert report.verdict == "unbrowsable"
        b002 = [f for f in report.findings if f.code == "B002"][0]
        assert node_at(plan, b002.node_path) is plan

    def test_difference_flags_unbrowsable(self):
        left = Project(GetDescendants(Source("a", "R"), "R", "_",
                                      "X"), ["X"])
        right = Project(GetDescendants(Source("b", "R"), "R", "_",
                                       "X"), ["X"])
        report = analyze_plan(Difference(left, right))
        assert {"B001", "B002"} <= _codes(report)

    def test_sigma_upgrade_hint_only_without_sigma(self):
        plan = Project(GetDescendants(Source("src", "R"), "R", "hit",
                                      "X"), ["X"])
        plain = analyze_plan(plan, EngineConfig(use_sigma=False))
        sigma = analyze_plan(plan, EngineConfig(use_sigma=True))
        assert "B010" in _codes(plain)
        assert "B010" not in _codes(sigma)


# ----------------------------------------------------------------------
# The schema pass
# ----------------------------------------------------------------------

class TestSchemaPass:
    def test_schema_graph_from_tree(self):
        graph = SchemaGraph.from_tree(
            document_node("homesSrc", parse_xml(HOMES_XML)))
        assert graph.root == "homesSrc"
        assert graph.child_labels("homes") == {"home"}
        assert "zip" in graph.labels

    def test_schema_graph_from_dtd(self):
        from repro.xmas.parser import parse_xmas
        dtd = infer_dtd(parse_xmas(FIG4_QUERY))
        graph = SchemaGraph.from_dtd(dtd)
        assert graph.root == dtd.root
        assert "med_home" in graph.labels

    def test_fig4_clean_with_schemas(self):
        _plan, report = analyze_query(FIG4_QUERY, schemas=_schemas())
        assert not report.errors
        assert not report.warnings

    def test_unsatisfiable_path_is_error(self):
        query = FIG4_QUERY.replace("homes.home", "homes.hoome")
        _plan, report = analyze_query(query, schemas=_schemas())
        assert [f.code for f in report.errors].count("S010") >= 1
        s010 = [f for f in report.errors if f.code == "S010"][0]
        # the typo suggestion rides along
        assert "hoome" in s010.message
        assert "home" in s010.message

    def test_no_schema_means_no_schema_findings(self):
        _plan, report = analyze_query(FIG4_QUERY)
        assert not [f for f in report.findings
                    if f.code.startswith("S")]

    def test_static_truth(self):
        assert static_truth(TruePredicate()) is True
        assert static_truth(Comparison(Const(1), "=", Const(2))) \
            is False
        assert static_truth(Comparison(Const(1), "=", Const(1))) \
            is True
        assert static_truth(
            Comparison(Var("X"), "=", Const(1))) is None
        contradiction = And((Comparison(Var("X"), "=", Const("a")),
                             Comparison(Var("X"), "=", Const("b"))))
        assert static_truth(contradiction) is False

    def test_dead_select_branch(self):
        base = Project(GetDescendants(Source("src", "R"), "R", "_",
                                      "X"), ["X"])
        report = analyze_plan(
            Select(base, Comparison(Const(1), "=", Const(2))))
        assert "S020" in _codes(report)

    def test_join_never_matches_is_error(self):
        left = Project(GetDescendants(Source("a", "R"), "R", "_",
                                      "X"), ["X"])
        right = Project(GetDescendants(Source("b", "R"), "R", "_",
                                       "Y"), ["Y"])
        joined = Join(left, right,
                      And((Comparison(Var("X"), "=", Const("p")),
                           Comparison(Var("X"), "=", Const("q")))))
        report = analyze_plan(joined)
        assert "S021" in {f.code for f in report.errors}


# ----------------------------------------------------------------------
# The cost pass
# ----------------------------------------------------------------------

class TestCostPass:
    def test_cardinality_degrees(self):
        src = Source("src", "R")
        assert cardinality_degree(src) == 0
        one = GetDescendants(src, "R", "_", "X")
        assert cardinality_degree(one) == 1
        two = GetDescendants(one, "X", "_", "Y")
        assert cardinality_degree(two) == 2
        joined = Join(one, two, TruePredicate())
        assert cardinality_degree(joined) == 3

    def test_orderby_over_growing_input_warns_c001(self):
        plan = OrderBy(Project(GetDescendants(
            Source("src", "R"), "R", "_", "X"), ["X"]), ["X"])
        assert "C001" in _codes(analyze_plan(plan))

    def test_join_cache_hint_only_without_budget(self):
        left = Project(GetDescendants(Source("a", "R"), "R", "_",
                                      "X"), ["X"])
        right = Project(GetDescendants(Source("b", "R"), "R", "_",
                                       "Y"), ["Y"])
        joined = Join(left, right, TruePredicate())
        unbounded = analyze_plan(joined)
        bounded = analyze_plan(joined, EngineConfig(cache_budget=64))
        disabled = analyze_plan(joined,
                                EngineConfig(cache_enabled=False))
        assert "C010" in _codes(unbounded)
        assert "C010" not in _codes(bounded)
        assert "C010" not in _codes(disabled)

    def test_stateful_operator_state_hint(self):
        base = Project(GetDescendants(Source("src", "R"), "R", "_",
                                      "X"), ["X"])
        assert "C011" in _codes(analyze_plan(Distinct(base)))


# ----------------------------------------------------------------------
# The rewrites pass
# ----------------------------------------------------------------------

class TestRewritesPass:
    def test_hints_are_informational(self):
        base = Project(GetDescendants(Source("src", "R"), "R", "_",
                                      "X"), ["X"])
        report = analyze_plan(Distinct(Distinct(base)))
        codes = _codes(report)
        assert "R012" in codes
        for finding in report.findings:
            if finding.code.startswith("R"):
                assert finding.severity is Severity.INFO

    def test_applicable_rule_surfaces_r001(self):
        base = Project(GetDescendants(Source("src", "R"), "R", "_",
                                      "X"), ["X"])
        stacked = Select(Select(base, TruePredicate()),
                         TruePredicate())
        report = analyze_plan(stacked)
        r001 = [f for f in report.findings if f.code == "R001"]
        assert r001 and r001[0].data["rule"] == "merge-selects"


# ----------------------------------------------------------------------
# Mediator wiring
# ----------------------------------------------------------------------

def _mediator():
    med = MIXMediator()
    med.register_wrapper("homesSrc",
                         XMLFileWrapper("homesSrc", HOMES_XML))
    med.register_wrapper("schoolsSrc",
                         XMLFileWrapper("schoolsSrc", SCHOOLS_XML))
    for name, tree in _schemas().items():
        med.register_schema(name, tree)
    return med


class TestMediatorWiring:
    def test_default_path_attaches_no_analysis(self):
        result = _mediator().prepare(FIG4_QUERY)
        assert result.analysis is None

    def test_analyze_static_attaches_report(self):
        result = _mediator().prepare(FIG4_QUERY, analyze="static")
        assert result.analysis is not None
        assert result.analysis.verdict == "browsable"
        assert not result.analysis.errors
        # the analyzed plan still answers correctly
        assert result.root.find("med_home") is not None

    def test_static_rejects_error_plans(self):
        bad = FIG4_QUERY.replace("homes.home", "homes.hoome")
        with pytest.raises(StaticAnalysisError) as exc:
            _mediator().prepare(bad, analyze="static")
        assert exc.value.report.errors
        assert "S010" in {f.code for f in exc.value.report.errors}

    def test_strict_rejects_warnings(self):
        query = FIG4_QUERY.replace("AND $V1 = $V2",
                                   "AND $V1 = $V2 ORDER BY $V1")
        med = _mediator()
        med.prepare(query, analyze="static")  # warning-only: passes
        with pytest.raises(StaticAnalysisError):
            med.prepare(query, analyze="strict")

    def test_config_default_mode(self):
        med = MIXMediator(EngineConfig(static_analysis="static"))
        med.register_wrapper("homesSrc",
                             XMLFileWrapper("homesSrc", HOMES_XML))
        med.register_wrapper("schoolsSrc",
                             XMLFileWrapper("schoolsSrc",
                                            SCHOOLS_XML))
        result = med.prepare(FIG4_QUERY)
        assert result.analysis is not None
        # per-call override wins over the config default
        assert med.prepare(FIG4_QUERY, analyze="off").analysis is None

    def test_bad_mode_rejected(self):
        from repro import MediatorError
        with pytest.raises(MediatorError):
            _mediator().prepare(FIG4_QUERY, analyze="bogus")
        with pytest.raises(Exception):
            EngineConfig(static_analysis="bogus")

    def test_static_analysis_event_traced(self):
        med = _mediator()
        med.tracer.record = True
        med.prepare(FIG4_QUERY, analyze="static")
        events = [e for e in med.tracer.events
                  if e.event == "static_analysis"]
        assert len(events) == 1
        assert events[0].data["verdict"] == "browsable"

    def test_explain_lint_renders_report(self):
        result = _mediator().prepare(FIG4_QUERY, analyze="static")
        text = result.explain(lint=True)
        assert "static diagnostics:" in text
        assert "verdict: browsable" in text

    def test_explain_lint_runs_fresh_analysis(self):
        # lint=True works even when prepare() did not analyze
        result = _mediator().prepare(FIG4_QUERY)
        assert result.analysis is None
        assert "static diagnostics:" in result.explain(lint=True)


# ----------------------------------------------------------------------
# The lint CLI
# ----------------------------------------------------------------------

class TestLintCLI:
    def test_clean_query_exits_zero(self, tmp_path, capsys):
        code = cli_main(["lint", "-q", FIG4_QUERY])
        assert code == 0
        assert "verdict: browsable" in capsys.readouterr().out

    def test_error_exits_two_with_schema(self, tmp_path, capsys):
        homes = tmp_path / "homes.xml"
        homes.write_text(HOMES_XML)
        bad = FIG4_QUERY.replace("homes.home", "homes.hoome")
        code = cli_main(["lint", "-q", bad,
                         "-s", "homesSrc=%s" % homes])
        assert code == 2
        assert "S010" in capsys.readouterr().out

    def test_warning_exit_and_fail_on(self, capsys):
        query = FIG4_QUERY + " ORDER BY $V1"
        assert cli_main(["lint", "-q", query]) == 1
        capsys.readouterr()
        assert cli_main(["lint", "-q", query,
                         "--fail-on", "error"]) == 0
        capsys.readouterr()

    def test_suppress_flag(self, capsys):
        query = FIG4_QUERY + " ORDER BY $V1"
        code = cli_main(["lint", "-q", query,
                         "--suppress", "B001,B002,C001"])
        assert code == 0
        capsys.readouterr()

    def test_uncompilable_query_reports_x001(self, capsys):
        code = cli_main(["lint", "-q", "CONSTRUCT oops"])
        assert code == 2
        assert "X001" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        out = tmp_path / "findings.json"
        cli_main(["lint", "-q", FIG4_QUERY, "--json", str(out)])
        capsys.readouterr()
        data = json.loads(out.read_text())
        assert data["verdict"] == "browsable"
        assert isinstance(data["findings"], list)

    def test_examples_scan_all_clean(self, tmp_path, capsys):
        out = tmp_path / "findings.json"
        code = cli_main(["lint", "--examples",
                         str(REPO / "examples"),
                         "--json", str(out)])
        assert code == 0, capsys.readouterr().out
        capsys.readouterr()
        reports = json.loads(out.read_text())
        assert len(reports) >= 5
        subjects = {r["subject"] for r in reports}
        assert "bbq_browser.py:QUERY" in subjects

    def test_examples_inline_suppression_respected(self):
        reports = scan_examples(REPO / "examples")
        bbq = [r for r in reports
               if r.subject == "bbq_browser.py:QUERY"]
        assert len(bbq) == 1
        # the deliberate ORDER BY hazard is suppressed at the query
        assert bbq[0].exit_code() == 0
        assert bbq[0].suppressed_count >= 3


# ----------------------------------------------------------------------
# Zero-overhead guarantee
# ----------------------------------------------------------------------

class TestZeroOverhead:
    def test_analysis_package_not_imported_by_default(self):
        """The default query path must not even import the analyzer."""
        import subprocess
        import sys
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro import MIXMediator, XMLFileWrapper\n"
            "med = MIXMediator()\n"
            "med.register_wrapper('homesSrc', "
            "XMLFileWrapper('homesSrc', '''%s'''))\n"
            "med.query('CONSTRUCT <a> $H </a> {$H} "
            "WHERE homesSrc homes.home $H')\n"
            "assert not any(m.startswith('repro.analysis') "
            "for m in sys.modules), 'analysis imported on default path'\n"
            % HOMES_XML)
        proc = subprocess.run([sys.executable, "-c", script],
                              cwd=str(REPO), capture_output=True,
                              text=True)
        assert proc.returncode == 0, proc.stderr
