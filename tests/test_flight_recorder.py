"""The daemon's flight recorder and live telemetry (PR 9).

The flight recorder is the always-on black box: a bounded ring of
the last N operational events, frozen into an incident dump on every
session kill and once on drain.  ``mix:status`` is the live window:
the daemon's counters, per-session table, fragcache stats, and
(optionally) Prometheus text, served to any connection -- including
the ``repro status`` CLI.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.runtime.observability import FlightRecorder
from repro.server import connect, fetch_status
from repro.testing.faults import FakeClock
from repro.testing.transport import (
    open_raw,
    recv_reply_bytes,
    send_frame_bytes,
    send_garbage,
)
from repro.testing.transport import _decode  # test-only convenience

from .test_server_sessions import QUERY, make_server, wait_until


# ----------------------------------------------------------------------
# the ring itself
# ----------------------------------------------------------------------

class TestFlightRecorderRing:
    def test_ring_is_bounded_and_evicts_oldest(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record("server", "request", serial=i)
        entries = recorder.snapshot()
        assert len(entries) == 4
        assert [e["data"]["serial"] for e in entries] == [6, 7, 8, 9]
        stats = recorder.stats()
        assert stats == {"capacity": 4, "size": 4, "recorded": 10,
                         "incidents": 0}

    def test_clock_is_injected(self):
        clock = FakeClock()
        recorder = FlightRecorder(capacity=4, clock=clock)
        recorder.record("server", "open")
        clock.advance(25.0)
        recorder.record("server", "close")
        first, second = recorder.snapshot()
        assert first["ts_ms"] == 0.0
        assert second["ts_ms"] == 25.0

    def test_incident_freezes_ring_and_writes_jsonl(self, tmp_path):
        recorder = FlightRecorder(capacity=8,
                                  incident_dir=str(tmp_path),
                                  clock=FakeClock())
        for i in range(3):
            recorder.record("server", "request", op="fill", n=i)
        record = recorder.incident("budget", session="s#1",
                                   detail="12-fill budget")
        assert record["reason"] == "budget"
        assert record["session"] == "s#1"
        assert len(record["events"]) == 3
        path = record["path"]
        assert path is not None and os.path.exists(path)
        assert pathlib.Path(path).name == "incident-001-budget.jsonl"

        lines = [json.loads(line) for line in
                 pathlib.Path(path).read_text().splitlines()]
        header, entries = lines[0], lines[1:]
        assert header["reason"] == "budget"
        assert header["session"] == "s#1"
        assert header["events"] == 3
        assert [e["data"]["n"] for e in entries] == [0, 1, 2]

        # The bounded summary history keeps no event payloads.
        assert len(recorder.incidents) == 1
        summary = recorder.incidents[0]
        assert "events" not in summary
        assert summary["path"] == path

    def test_incident_without_dir_keeps_summary_only(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("server", "kill", reason="idle")
        record = recorder.incident("idle")
        assert record["path"] is None
        assert len(record["events"]) == 1
        assert recorder.incidents[0]["path"] is None

    def test_unwritable_incident_dir_is_swallowed(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        recorder = FlightRecorder(capacity=4,
                                  incident_dir=str(blocker))
        recorder.record("server", "kill", reason="idle")
        record = recorder.incident("idle")  # must not raise
        assert record["path"] is None

    def test_incident_serial_increments_and_slug_sanitizes(
            self, tmp_path):
        recorder = FlightRecorder(capacity=4,
                                  incident_dir=str(tmp_path))
        first = recorder.incident("mix:protocol")
        second = recorder.incident("mix:protocol")
        assert pathlib.Path(first["path"]).name \
            == "incident-001-mix-protocol.jsonl"
        assert pathlib.Path(second["path"]).name \
            == "incident-002-mix-protocol.jsonl"

    def test_incident_history_is_bounded(self):
        recorder = FlightRecorder(capacity=2, max_incidents=3)
        for i in range(7):
            recorder.incident("drain", detail=str(i))
        assert len(recorder.incidents) == 3
        assert [s["detail"] for s in recorder.incidents] \
            == ["4", "5", "6"]


# ----------------------------------------------------------------------
# the daemon integration: kills and drain dump the ring
# ----------------------------------------------------------------------

class TestIncidentDumps:
    def test_budget_kill_dumps_incident_with_session_history(
            self, tmp_path):
        server, host, port = make_server(
            n_homes=5, serve_session_max_fills=1, chunk_size=2,
            serve_incident_dir=str(tmp_path))
        try:
            sock = open_raw(host, port)
            try:
                send_frame_bytes(sock, {"op": "open", "query": QUERY})
                opened = _decode(recv_reply_bytes(sock))
                send_frame_bytes(sock, {"op": "fill",
                                        "hole": opened["root"]})
                assert _decode(recv_reply_bytes(sock))["ok"]
                send_frame_bytes(sock, {"op": "fill",
                                        "hole": opened["root"]})
                second = _decode(recv_reply_bytes(sock))
                assert second["error"] == "mix:budget"
            finally:
                sock.close()
            wait_until(lambda: server.stats.snapshot()
                       ["budget_kills"] == 1, message="budget kill")
            dumps = sorted(tmp_path.glob("incident-*-budget.jsonl"))
            assert dumps, "budget kill produced no incident dump"
            lines = [json.loads(line) for line in
                     dumps[0].read_text().splitlines()]
            header, entries = lines[0], lines[1:]
            assert header["reason"] == "budget"
            assert header["session"] == "s#1"
            # The ring holds the killed session's recent history:
            # its open and its delivered request(s).
            sessions = {e["data"].get("session") for e in entries
                        if "session" in e["data"]}
            assert "s#1" in sessions
            events = [(e["layer"], e["event"]) for e in entries]
            assert ("server", "open") in events
            assert ("server", "request") in events
        finally:
            server.drain()

    def test_protocol_kill_dumps_incident(self, tmp_path):
        server, host, port = make_server(
            n_homes=3, serve_incident_dir=str(tmp_path))
        try:
            send_garbage(host, port)
            wait_until(
                lambda: server.stats.snapshot()["protocol_kills"]
                == 1, message="protocol kill")
            wait_until(
                lambda: any(tmp_path.glob(
                    "incident-*-protocol.jsonl")),
                message="protocol incident dump")
        finally:
            server.drain()

    def test_drain_dumps_one_incident(self, tmp_path):
        server, host, port = make_server(
            n_homes=3, serve_incident_dir=str(tmp_path))
        with connect(host, port, QUERY) as session:
            session.root.first_child()
        wait_until(lambda: server.active_sessions == 0,
                   message="session teardown")
        assert server.drain() is True
        dumps = sorted(tmp_path.glob("incident-*-drain.jsonl"))
        assert len(dumps) == 1
        header = json.loads(dumps[0].read_text().splitlines()[0])
        assert header["reason"] == "drain"
        assert "clean=True" in header["detail"]
        # Drain is idempotent: a second call adds no second dump.
        server.drain()
        assert len(list(tmp_path.glob("incident-*-drain.jsonl"))) == 1

    def test_recorder_runs_with_metrics_disabled(self):
        """Always on means always on: the default config records
        operational history even though ``metrics_enabled`` is off."""
        server, host, port = make_server(n_homes=3)
        try:
            assert server.metrics.enabled is False
            with connect(host, port, QUERY) as session:
                session.root.first_child()
            wait_until(lambda: server.active_sessions == 0,
                       message="session teardown")
            events = [(e["layer"], e["event"])
                      for e in server.recorder.snapshot()]
            assert ("server", "listen") in events
            assert ("server", "open") in events
            assert ("server", "request") in events
        finally:
            server.drain()

    def test_ring_capacity_follows_config(self):
        server, host, port = make_server(
            n_homes=3, serve_flight_recorder_events=7)
        try:
            assert server.recorder.capacity == 7
        finally:
            server.drain()


# ----------------------------------------------------------------------
# the slow-request log
# ----------------------------------------------------------------------

class TestSlowRequestLog:
    def test_threshold_zero_logs_every_request(self):
        server, host, port = make_server(n_homes=3,
                                         slow_request_ms=0.0)
        try:
            with connect(host, port, QUERY) as session:
                session.root.first_child()
            wait_until(lambda: server.active_sessions == 0,
                       message="session teardown")
            slow = [e for e in server.recorder.snapshot()
                    if e["event"] == "slow_request"]
            assert slow, "threshold 0.0 logged nothing"
            assert slow[0]["data"]["threshold_ms"] == 0.0
            assert "op" in slow[0]["data"]
            counters = server.telemetry.counter(
                "server_slow_requests_total")
            assert sum(counters.series().values()) == len(slow)
        finally:
            server.drain()

    def test_default_threshold_logs_nothing(self):
        server, host, port = make_server(n_homes=3)
        try:
            with connect(host, port, QUERY) as session:
                session.root.first_child()
            wait_until(lambda: server.active_sessions == 0,
                       message="session teardown")
            assert [e for e in server.recorder.snapshot()
                    if e["event"] == "slow_request"] == []
        finally:
            server.drain()


# ----------------------------------------------------------------------
# mix:status and the CLI
# ----------------------------------------------------------------------

class TestStatusVerb:
    def test_status_reply_shape(self):
        server, host, port = make_server(n_homes=3)
        try:
            with connect(host, port, QUERY) as session:
                session.root.first_child()
                status = fetch_status(host, port)
                assert status["draining"] is False
                assert status["address"][1] == port
                # active_sessions counts admitted connections: the
                # open session plus the probe itself.
                assert status["active_sessions"] == 2
                assert status["server"]["sessions_opened"] == 1
                assert status["fragcache"] is None
                recorder = status["flight_recorder"]
                assert recorder["capacity"] == 256
                assert recorder["recorded"] > 0
                assert status["incidents"] == []
                (row,) = status["sessions"]
                assert row["session"] == session.session_id
                assert row["fills"] >= 1
                assert row["requests"] >= 1
                assert row["bytes_shipped"] > 0
                assert row["age_ms"] >= 0.0
                assert row["in_flight"] is None
                assert row["trace_id"] is None
                assert row["peer"] == "127.0.0.1"
                assert row["budget_remaining"] == {"fills": None,
                                                   "bytes": None}
                assert "prometheus" not in status
        finally:
            server.drain()

    def test_status_reports_budget_and_trace(self):
        from repro.runtime.config import EngineConfig
        from repro.runtime.context import ExecutionContext, Tracer

        server, host, port = make_server(n_homes=5,
                                         serve_session_max_fills=10)
        try:
            tracer = Tracer(record=True, trace_id="t-status")
            context = ExecutionContext(EngineConfig(), tracer=tracer)
            with connect(host, port, QUERY, context=context) as s:
                s.root.first_child()
                (row,) = fetch_status(host, port)["sessions"]
                assert row["trace_id"] == "t-status"
                remaining = row["budget_remaining"]["fills"]
                assert remaining == 10 - row["fills"]
        finally:
            server.drain()

    def test_status_mid_session_keeps_dialogue_going(self):
        server, host, port = make_server(n_homes=3)
        try:
            with connect(host, port, QUERY) as session:
                reply = session.channel.call({"op": "status"})
                assert reply["status"]["active_sessions"] == 1
                # The session still navigates after the admin verb.
                assert session.root.first_child().tag == "home"
        finally:
            server.drain()

    def test_status_probes_stay_out_of_request_counters(self):
        server, host, port = make_server(n_homes=3)
        try:
            before = server.stats.snapshot()["requests"]
            for _ in range(3):
                fetch_status(host, port)
            assert server.stats.snapshot()["requests"] == before
            total = server.telemetry.counter(
                "server_status_requests_total")
            assert sum(total.series().values()) == 3
        finally:
            server.drain()

    def test_status_with_prometheus_text(self):
        server, host, port = make_server(n_homes=3)
        try:
            with connect(host, port, QUERY) as session:
                session.root.first_child()
            status = fetch_status(host, port, prometheus=True)
            text = status["prometheus"]
            assert "# TYPE repro_server_sessions_total counter" \
                in text
            assert "# HELP repro_server_sessions_total" in text
            assert "# TYPE repro_server_request_ms histogram" in text
            assert 'repro_server_requests_total{op="open"} 1' in text
            assert "repro_server_lifetime_count{" in text
            # The probing connection itself is an admitted handler,
            # so the gauge is >= 1 at scrape time.
            assert "repro_server_sessions_active " in text
        finally:
            server.drain()

    def test_cli_status_table_and_exit_codes(self, capsys):
        from repro.cli import main

        server, host, port = make_server(n_homes=3)
        address = "%s:%d" % (host, port)
        try:
            with connect(host, port, QUERY) as session:
                session.root.first_child()
                assert main(["status", address]) == 0
                out = capsys.readouterr().out
                assert "serving" in out
                assert session.session_id in out
        finally:
            server.drain()
        # Unreachable daemon: exit 2.
        assert main(["status", address]) == 2

    def test_cli_status_json_and_prometheus(self, tmp_path, capsys):
        from repro.cli import main

        server, host, port = make_server(n_homes=3)
        address = "%s:%d" % (host, port)
        try:
            json_path = tmp_path / "status.json"
            assert main(["status", address, "--json",
                         str(json_path)]) == 0
            payload = json.loads(json_path.read_text())
            assert payload["draining"] is False
            capsys.readouterr()
            assert main(["status", address, "--prometheus"]) == 0
            out = capsys.readouterr().out
            assert "# TYPE repro_server_status_requests_total " \
                "counter" in out
        finally:
            server.drain()

    def test_cli_status_rejects_bad_address(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["status", "no-port-here"])
