"""Tests for open trees, LXP, and the generic buffer component
(paper Section 4, Definitions 3-4, Example 7, Figure 8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer import (
    AsyncPrefetchingBuffer,
    BatchingBuffer,
    BufferComponent,
    FragElem,
    FragHole,
    LXPProtocolError,
    PrefetchingBuffer,
    RandomizedLXPServer,
    TreeLXPServer,
    count_holes,
    fragment_of_tree,
    open_tree_to_tree,
    reply_holes,
    validate_fill_reply,
)
from repro.navigation import materialize
from repro.xtree import Tree, elem, leaf


class TestFillReplyValidation:
    def test_empty_reply_is_legal(self):
        validate_fill_reply([])

    def test_elements_only(self):
        validate_fill_reply([FragElem("a"), FragElem("b")])

    def test_trailing_hole(self):
        validate_fill_reply([FragElem("a"), FragHole(1)])

    def test_leading_hole(self):
        validate_fill_reply([FragHole(1), FragElem("a")])

    def test_only_holes_rejected(self):
        with pytest.raises(LXPProtocolError):
            validate_fill_reply([FragHole(1)])

    def test_adjacent_holes_rejected(self):
        with pytest.raises(LXPProtocolError):
            validate_fill_reply([FragElem("a"), FragHole(1),
                                 FragHole(2)])

    def test_nested_adjacent_holes_rejected(self):
        bad = FragElem("a", (FragElem("b"), FragHole(1), FragHole(2)))
        with pytest.raises(LXPProtocolError):
            validate_fill_reply([bad])

    def test_single_child_hole_is_legal(self):
        validate_fill_reply([FragElem("a", (FragHole(1),))])

    def test_fragment_of_tree_is_closed(self):
        frag = fragment_of_tree(elem("a", elem("b", "c")))
        assert frag == FragElem("a", (FragElem("b", (FragElem("c"),)),))


EXAMPLE7_TREE = elem("a", elem("b", "d", "e"), elem("c"))


class TestTreeLXPServer:
    def test_root_hole(self):
        server = TreeLXPServer(EXAMPLE7_TREE)
        assert server.get_root() == FragHole(("root",))

    def test_full_depth_ships_everything(self):
        server = TreeLXPServer(EXAMPLE7_TREE, chunk_size=100)
        reply = server.fill(("root",))
        assert reply == [fragment_of_tree(EXAMPLE7_TREE)]
        assert server.stats.fills == 1

    def test_depth_one_leaves_child_holes(self):
        server = TreeLXPServer(EXAMPLE7_TREE, depth=1)
        (root,) = server.fill(("root",))
        assert root.label == "a"
        assert isinstance(root.children[0], FragHole)

    def test_chunking_leaves_trailing_hole(self):
        tree = Tree("r", [leaf(str(i)) for i in range(7)])
        server = TreeLXPServer(tree, chunk_size=3, depth=2)
        (root,) = server.fill(("root",))
        labels = [c.label for c in root.children[:-1]]
        assert labels == ["0", "1", "2"]
        hole = root.children[-1]
        reply2 = server.fill(hole.hole_id)
        assert [c.label for c in reply2[:-1]] == ["3", "4", "5"]

    def test_replies_always_validate(self):
        tree = Tree("r", [elem("x", str(i)) for i in range(20)])
        server = TreeLXPServer(tree, chunk_size=4, depth=1)
        stack = [server.get_root().hole_id]
        while stack:
            reply = server.fill(stack.pop())
            validate_fill_reply(reply)
            for frag in reply:
                queue = [frag]
                while queue:
                    f = queue.pop()
                    if isinstance(f, FragHole):
                        stack.append(f.hole_id)
                    else:
                        queue.extend(f.children)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            TreeLXPServer(EXAMPLE7_TREE, chunk_size=0)
        with pytest.raises(ValueError):
            TreeLXPServer(EXAMPLE7_TREE, depth=0)

    def test_unknown_hole(self):
        server = TreeLXPServer(EXAMPLE7_TREE)
        with pytest.raises(LXPProtocolError):
            server.fill("garbage")


class TestBufferComponent:
    def test_exposes_the_source_tree(self):
        buffer = BufferComponent(TreeLXPServer(EXAMPLE7_TREE, depth=1))
        assert materialize(buffer) == EXAMPLE7_TREE

    def test_fetch_never_fills(self):
        buffer = BufferComponent(TreeLXPServer(EXAMPLE7_TREE, depth=1))
        root = buffer.root()
        fills = buffer.stats.fills
        buffer.fetch(root)
        assert buffer.stats.fills == fills

    def test_down_on_leaf(self):
        buffer = BufferComponent(TreeLXPServer(EXAMPLE7_TREE, depth=1))
        b = buffer.down(buffer.root())
        d = buffer.down(b)
        assert buffer.fetch(d) == "d"
        assert buffer.down(d) is None

    def test_root_has_no_sibling(self):
        buffer = BufferComponent(TreeLXPServer(EXAMPLE7_TREE))
        assert buffer.right(buffer.root()) is None

    def test_hit_rate_improves_with_chunking(self):
        tree = Tree("r", [elem("x", str(i)) for i in range(50)])

        def rate(chunk):
            buffer = BufferComponent(
                TreeLXPServer(tree, chunk_size=chunk, depth=3))
            materialize(buffer)
            return buffer.stats.hit_rate

        assert rate(25) > rate(1)

    def test_pointers_stay_valid_across_splices(self):
        tree = Tree("r", [elem("x", str(i)) for i in range(10)])
        buffer = BufferComponent(TreeLXPServer(tree, chunk_size=2,
                                               depth=2))
        first = buffer.down(buffer.root())
        # Walk to the end, splicing several times.
        node = first
        while buffer.right(node) is not None:
            node = buffer.right(node)
        # The old pointer still navigates correctly.
        assert buffer.fetch(first) == "x"
        assert buffer.fetch(buffer.down(first)) == "0"

    def test_holes_outstanding_decreases(self):
        tree = Tree("r", [elem("x", str(i)) for i in range(10)])
        buffer = BufferComponent(TreeLXPServer(tree, chunk_size=2,
                                               depth=3))
        materialize(buffer)
        assert buffer.holes_outstanding() == 0

    def test_empty_root_reply_raises(self):
        class EmptyServer(TreeLXPServer):
            def fill(self, hole_id):
                return []

        buffer = BufferComponent(EmptyServer(EXAMPLE7_TREE))
        with pytest.raises(LXPProtocolError):
            buffer.root()


class TestExample7Trace:
    """The liberal trace of Example 7, replayed literally."""

    def test_liberal_fill_sequence(self):
        # A scripted server answering exactly as in the paper.
        script = {
            ("root",): [FragElem("a", (FragHole(1),))],
            1: [FragElem("b", (FragHole(2),)), FragHole(3)],
            3: [FragElem("c")],
            2: [FragHole(4), FragElem("d", (FragHole(5),)), FragHole(6)],
            4: [],
            5: [],
            6: [FragElem("e")],
        }

        class ScriptedServer(TreeLXPServer):
            def __init__(self):
                self.stats = type("S", (), {"fills": 0})()

            def get_root(self):
                return FragHole(("root",))

            def fill(self, hole_id):
                return script[hole_id]

        buffer = BufferComponent(ScriptedServer())
        assert materialize(buffer) == elem("a", elem("b", "d", "e"),
                                           elem("c"))


class TestPrefetching:
    def test_prefetch_reduces_demand_fills(self):
        tree = Tree("r", [elem("x", str(i)) for i in range(60)])

        def demand_fills(lookahead):
            buffer = PrefetchingBuffer(
                TreeLXPServer(tree, chunk_size=5, depth=3),
                lookahead=lookahead)
            materialize(buffer)
            return buffer.prefetch_stats.demand_fills

        assert demand_fills(4) < demand_fills(0)

    def test_zero_lookahead_is_plain_buffer(self):
        tree = Tree("r", [elem("x", str(i)) for i in range(10)])
        buffer = PrefetchingBuffer(
            TreeLXPServer(tree, chunk_size=5, depth=3), lookahead=0)
        materialize(buffer)
        assert buffer.prefetch_stats.prefetch_fills == 0


# ----------------------------------------------------------------------
# Property: the buffer over ANY liberal server is indistinguishable
# from direct navigation of the complete tree.
# ----------------------------------------------------------------------

_trees = st.recursive(
    st.sampled_from(list("pqxyz12")).map(leaf),
    lambda kids: st.builds(
        Tree, st.sampled_from(["r", "s", "t"]),
        st.lists(kids, max_size=4)),
    max_leaves=14,
)


@settings(max_examples=120, deadline=None)
@given(tree=_trees, seed=st.integers(0, 10000))
def test_buffer_over_randomized_liberal_server(tree, seed):
    buffer = BufferComponent(RandomizedLXPServer(tree, seed=seed))
    assert materialize(buffer) == tree


@settings(max_examples=60, deadline=None)
@given(tree=_trees, chunk=st.integers(1, 5), depth=st.integers(1, 4))
def test_buffer_over_chunked_server(tree, chunk, depth):
    buffer = BufferComponent(
        TreeLXPServer(tree, chunk_size=chunk, depth=depth))
    assert materialize(buffer) == tree
    assert buffer.holes_outstanding() == 0


@settings(max_examples=80, deadline=None)
@given(tree=_trees, seed=st.integers(0, 5000), data=st.data())
def test_partial_navigation_matches_materialized(tree, seed, data):
    """Any partial navigation over the buffer equals the same
    navigation over the in-memory tree -- not just full exploration."""
    from repro.navigation import MaterializedDocument, Navigation, \
        run_navigation
    commands = data.draw(st.lists(
        st.sampled_from(["d", "r", "f"]), max_size=15))
    nav = Navigation.parse(";".join(commands))

    reference = run_navigation(MaterializedDocument(tree), nav)
    buffered_doc = BufferComponent(RandomizedLXPServer(tree, seed=seed))
    actual = run_navigation(buffered_doc, nav)

    assert actual.labels == reference.labels
    assert [p is None for p in actual.pointers] == \
        [p is None for p in reference.pointers]


class TestAdaptiveGranularity:
    def _tree(self, n=200):
        return Tree("r", [elem("x", str(i)) for i in range(n)])

    def test_exposes_the_tree(self):
        from repro.buffer import AdaptiveTreeLXPServer
        tree = self._tree(50)
        buffer = BufferComponent(
            AdaptiveTreeLXPServer(tree, initial_chunk=2, max_chunk=16))
        assert materialize(buffer) == tree

    def test_chunk_grows_along_a_scan(self):
        from repro.buffer import AdaptiveTreeLXPServer
        server = AdaptiveTreeLXPServer(self._tree(), initial_chunk=2,
                                       max_chunk=64, depth=2)
        (root,) = server.fill(("root",))
        hole = root.children[-1]
        assert isinstance(hole, FragHole)
        sizes = []
        while isinstance(hole, FragHole):
            reply = server.fill(hole.hole_id)
            elems = [f for f in reply if isinstance(f, FragElem)]
            sizes.append(len(elems))
            hole = reply[-1]
        # Doubling run capped at max_chunk.
        assert sizes[0] == 2 and sizes[1] == 4 and sizes[2] == 8
        assert max(sizes) <= 64
        assert sizes[-2] == 64  # reached the cap

    def test_fewer_fills_than_fixed_small_chunks(self):
        from repro.buffer import AdaptiveTreeLXPServer
        tree = self._tree(200)
        adaptive = BufferComponent(
            AdaptiveTreeLXPServer(tree, initial_chunk=2, max_chunk=64,
                                  depth=2))
        materialize(adaptive)
        fixed = BufferComponent(TreeLXPServer(tree, chunk_size=2,
                                              depth=2))
        materialize(fixed)
        assert adaptive.stats.fills < fixed.stats.fills / 3

    def test_peek_stays_cheap(self):
        from repro.buffer import AdaptiveTreeLXPServer
        server = AdaptiveTreeLXPServer(self._tree(200),
                                       initial_chunk=2, max_chunk=64,
                                       depth=2)
        buffer = BufferComponent(server)
        buffer.fetch(buffer.down(buffer.root()))  # peek at one child
        # Only the root fill (2 elements) happened: no overshipping.
        assert server.stats.elements_shipped <= 6

    def test_bad_parameters(self):
        from repro.buffer import AdaptiveTreeLXPServer
        with pytest.raises(ValueError):
            AdaptiveTreeLXPServer(self._tree(5), initial_chunk=8,
                                  max_chunk=4)


# ----------------------------------------------------------------------
# Batched LXP: fill_batch protocol and the batching buffer
# ----------------------------------------------------------------------

class TestFillBatchProtocol:
    def _server(self, n=10, chunk=2, depth=1):
        tree = Tree("r", [elem("x", str(i)) for i in range(n)])
        return TreeLXPServer(tree, chunk_size=chunk, depth=depth)

    def test_requested_ids_first_in_request_order(self):
        server = self._server()
        root_id = server.get_root().hole_id
        replies = server.fill_batch([root_id])
        assert [hid for hid, _ in replies] == [root_id]
        validate_fill_reply(replies[0][1])

    def test_speculation_follows_reply_frontier(self):
        server = self._server()
        root_id = server.get_root().hole_id
        replies = server.fill_batch([root_id], speculate=2)
        ids = [hid for hid, _ in replies]
        assert ids[0] == root_id and len(ids) == 3
        # Every speculative id was introduced by an earlier reply in
        # this same batch, in document (frontier) order.
        introduced = []
        for _, fragments in replies:
            introduced.extend(reply_holes(fragments))
        assert ids[1:] == introduced[:2]

    def test_speculation_never_reanswers(self):
        server = self._server(n=20, chunk=2)
        root_id = server.get_root().hole_id
        replies = server.fill_batch([root_id], speculate=50)
        ids = [hid for hid, _ in replies]
        assert len(ids) == len(set(ids))

    def test_zero_speculation_answers_exactly_the_request(self):
        server = self._server()
        root_id = server.get_root().hole_id
        assert len(server.fill_batch([root_id], speculate=0)) == 1

    def test_negative_speculation_rejected(self):
        server = self._server()
        with pytest.raises(LXPProtocolError):
            server.fill_batch([server.get_root().hole_id], speculate=-1)

    def test_each_answered_hole_counts_as_one_command(self):
        server = self._server()
        root_id = server.get_root().hole_id
        before = server.stats.fills
        replies = server.fill_batch([root_id], speculate=3)
        assert server.stats.fills - before == len(replies)

    def test_reply_holes_document_order(self):
        fragments = [
            FragElem("a", [FragHole("h1"), FragElem("b", [FragHole("h2")])]),
            FragHole("h3"),
        ]
        assert reply_holes(fragments) == ["h1", "h2", "h3"]


class TestBatchingBuffer:
    def _tree(self, n=12):
        return Tree("r", [elem("x", str(i)) for i in range(n)])

    def test_materializes_identically_to_plain_buffer(self):
        tree = self._tree()
        plain = materialize(BufferComponent(
            TreeLXPServer(tree, chunk_size=2, depth=1)))
        batched = materialize(BatchingBuffer(
            TreeLXPServer(tree, chunk_size=2, depth=1), speculate=4))
        assert batched == plain

    def test_speculative_fills_reduce_batches(self):
        tree = self._tree(20)

        def batches(speculate):
            buffer = BatchingBuffer(
                TreeLXPServer(tree, chunk_size=2, depth=1),
                speculate=speculate)
            materialize(buffer)
            return buffer.batch_stats.batches

        assert batches(4) < batches(0)

    def test_commands_equal_batches_plus_speculation(self):
        buffer = BatchingBuffer(
            TreeLXPServer(self._tree(), chunk_size=2, depth=1),
            speculate=3)
        materialize(buffer)
        stats = buffer.batch_stats
        assert stats.commands \
            == stats.batches + stats.speculative_fills
        assert stats.commands == buffer.stats.fills \
            + stats.dropped_replies

    def test_omitted_demand_reply_is_protocol_error(self):
        class RudeServer(TreeLXPServer):
            def fill_batch(self, hole_ids, speculate=0):
                return []  # never answers what was asked

        buffer = BatchingBuffer(RudeServer(self._tree(), chunk_size=2),
                                speculate=0)
        with pytest.raises(LXPProtocolError, match="omitted"):
            buffer.root()

    def test_stale_speculative_replies_are_dropped(self):
        class EchoTwiceServer(TreeLXPServer):
            """Answers the demand, then 'speculates' the same hole
            again -- the duplicate must be dropped, not spliced."""

            def fill_batch(self, hole_ids, speculate=0):
                replies = [(hid, self.fill(hid)) for hid in hole_ids]
                return replies + [(hole_ids[0],
                                   self.fill(hole_ids[0]))]

        tree = self._tree()
        buffer = BatchingBuffer(EchoTwiceServer(tree, chunk_size=2,
                                                depth=1))
        plain = materialize(BufferComponent(
            TreeLXPServer(tree, chunk_size=2, depth=1)))
        assert materialize(buffer) == plain
        assert buffer.batch_stats.dropped_replies > 0


class TestAsyncPrefetchingBuffer:
    def _tree(self, n=30):
        return Tree("r", [elem("x", str(i)) for i in range(n)])

    def test_materializes_identically_to_plain_buffer(self):
        tree = self._tree()
        plain = materialize(BufferComponent(
            TreeLXPServer(tree, chunk_size=3, depth=1)))
        buffer = AsyncPrefetchingBuffer(
            TreeLXPServer(tree, chunk_size=3, depth=1),
            lookahead=3, workers=2)
        try:
            assert materialize(buffer) == plain
        finally:
            buffer.close()

    def test_fill_accounting_balances(self):
        buffer = AsyncPrefetchingBuffer(
            TreeLXPServer(self._tree(), chunk_size=2, depth=1),
            lookahead=2, workers=2)
        try:
            materialize(buffer)
        finally:
            buffer.close()
        stats = buffer.prefetch_stats
        assert stats.demand_fills + stats.prefetch_fills \
            == buffer.stats.fills

    def test_invalid_parameters_rejected(self):
        server = TreeLXPServer(self._tree(), chunk_size=2)
        with pytest.raises(ValueError):
            AsyncPrefetchingBuffer(server, workers=0)
        with pytest.raises(ValueError):
            AsyncPrefetchingBuffer(server, lookahead=-1)

    def test_close_is_idempotent_and_buffer_survives(self):
        buffer = AsyncPrefetchingBuffer(
            TreeLXPServer(self._tree(8), chunk_size=2, depth=1),
            lookahead=2, workers=1)
        root = buffer.root()
        buffer.close()
        buffer.close()
        # Demand path still works after close (no more prefetching).
        assert buffer.down(root) is not None
