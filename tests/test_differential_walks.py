"""Property-based differential testing of concurrent navigation.

Seeded random navigation walks -- d/r/f/select interleavings with
partial exploration and revisits from earlier pointers -- run against
the lazy engine under every concurrency configuration (plain, batched
LXP, thread-backed prefetcher, parallel fan-out) and must agree
step-for-step with the eager oracle.  Hypothesis shrinks any failing
walk to a minimal counterexample.

Walk volume scales with the ``DIFF_WALKS`` environment variable (CI
sets 200; the local default keeps the suite quick).
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import evaluate_bindings
from repro.buffer import TreeLXPServer
from repro.lazy import BindingsDocument, build_lazy_plan
from repro.navigation import (
    MaterializedDocument,
    Navigation,
    materialize,
    run_navigation,
)
from repro.navigation.commands import DOWN, FETCH, RIGHT, NavStep, Select
from repro.runtime import EngineConfig, ExecutionContext
from repro.wrappers.base import buffered

from .test_lazy_equivalence import _plans, _source_tree

WALKS = int(os.environ.get("DIFF_WALKS", "25"))

# Labels a select may probe for: real labels, data values, and one
# guaranteed miss.
_SELECT_LABELS = ["a", "b", "c", "1", "2", "3", "nope"]

#: name -> EngineConfig for the source-side buffer stack and the lazy
#: context.  Every configuration must be observationally identical to
#: the first one.
CONFIGS = {
    "plain": EngineConfig(),
    "batched": EngineConfig(batch_navigations=True, prefetch=4),
    "async-prefetch": EngineConfig(prefetch=2, prefetch_workers=2),
    "fanout": EngineConfig(fanout_workers=2),
    "everything": EngineConfig(batch_navigations=True, prefetch=3,
                               fanout_workers=2),
}


@st.composite
def _walks(draw):
    """A random Definition-1 navigation with revisits.

    Each step continues from the previous pointer or revisits an
    earlier pointer position (``@k``), modelling a client that keeps
    several handles into the virtual answer alive at once.
    """
    steps = []
    length = draw(st.integers(0, 14))
    for index in range(length):
        kind = draw(st.sampled_from(["d", "r", "f", "f", "select"]))
        if kind == "d":
            command = DOWN
        elif kind == "r":
            command = RIGHT
        elif kind == "f":
            command = FETCH
        else:
            command = Select(draw(st.sampled_from(_SELECT_LABELS)))
        source = -1
        if index and draw(st.booleans()):
            # Revisit: any prior pointer position (0 = root handle).
            source = draw(st.integers(0, index))
        steps.append(NavStep(command, source))
    return Navigation(steps)


def _lazy_document(plan, tree, config):
    """The virtual answer document with the full concurrent stack:
    tree -> LXP server -> (batched/async/plain) buffer -> lazy plan."""
    context = ExecutionContext.create(config)
    server = TreeLXPServer(tree, chunk_size=2, depth=2)
    source = buffered(server,
                      prefetch=config.prefetch,
                      workers=config.prefetch_workers,
                      batch=config.batch_navigations)
    lazy = build_lazy_plan(plan, {"src": source}, context)
    return BindingsDocument(lazy), context


def _navigation_outcome(document, nav):
    result = run_navigation(document, nav)
    return result.labels, [p is None for p in result.pointers]


@settings(max_examples=WALKS, deadline=None)
@given(tree=_source_tree, plan=_plans(), nav=_walks(),
       config_name=st.sampled_from(sorted(CONFIGS)))
def test_random_walk_matches_eager_oracle(tree, plan, nav, config_name):
    eager_tree = evaluate_bindings(plan, {"src": tree}).to_tree()
    expected = _navigation_outcome(MaterializedDocument(eager_tree), nav)

    config = CONFIGS[config_name]
    document, context = _lazy_document(plan, tree, config)
    try:
        assert _navigation_outcome(document, nav) == expected
    finally:
        context.close()


@settings(max_examples=WALKS, deadline=None)
@given(tree=_source_tree, plan=_plans(),
       config_name=st.sampled_from(sorted(CONFIGS)))
def test_materialized_answer_matches_eager_oracle(tree, plan,
                                                  config_name):
    """Full materialization through every concurrent stack is
    byte-identical to the eager evaluator's answer tree."""
    expected = evaluate_bindings(plan, {"src": tree}).to_tree()
    config = CONFIGS[config_name]
    document, context = _lazy_document(plan, tree, config)
    try:
        assert materialize(document) == expected
    finally:
        context.close()


@settings(max_examples=WALKS, deadline=None)
@given(tree=_source_tree, nav=_walks())
def test_buffer_stacks_agree_on_raw_source(tree, nav):
    """With no plan in the way, every buffer variant exposes the same
    document as the tree itself -- the buffer-layer half of the
    differential argument, where batching/speculation actually
    reorders the fills."""
    expected = _navigation_outcome(MaterializedDocument(tree), nav)
    for config in CONFIGS.values():
        server = TreeLXPServer(tree, chunk_size=2, depth=1)
        source = buffered(server,
                          prefetch=config.prefetch,
                          workers=config.prefetch_workers,
                          batch=config.batch_navigations)
        assert _navigation_outcome(source, nav) == expected
        if hasattr(source, "close"):
            source.close()
