"""Tests for hybrid lazy/eager evaluation (the Materialize operator
and the materialize-unbrowsable optimizer rule -- paper Section 6's
future work)."""

import pytest

from repro.algebra import (
    Difference,
    GetDescendants,
    Materialize,
    OrderBy,
    Project,
    Source,
    evaluate_bindings,
    walk_plan,
)
from repro.bench import homes_and_schools
from repro.lazy import BindingsDocument, LazyMaterialize, build_lazy_plan
from repro.mediator import MIXMediator
from repro.navigation import (
    CountingDocument,
    MaterializedDocument,
    materialize,
)
from repro.rewriter import optimize
from repro.runtime import EngineConfig
from repro.xtree import Tree, elem

ORDERED_QUERY = ("CONSTRUCT <out> $H {$H} </out> {} "
                 "WHERE homesSrc homes.home $H AND $H zip._ $V "
                 "ORDER BY $V DESC")


def _chain():
    return Project(
        GetDescendants(
            GetDescendants(Source("src", "R"), "R", "r.x", "X"),
            "X", "_", "V"),
        ["X", "V"])


def _tree(n=6):
    return {"src": Tree("src", [Tree("r", [
        elem("x", str(n - i)) for i in range(n)])])}


class TestMaterializeOperator:
    def test_identity_semantics(self):
        plan = Materialize(OrderBy(_chain(), ["V"]))
        trees = _tree()
        assert evaluate_bindings(plan, trees) == \
            evaluate_bindings(plan.child, trees)

    def test_lazy_matches_eager(self):
        plan = Materialize(OrderBy(_chain(), ["V"]))
        trees = _tree()
        docs = {u: MaterializedDocument(t) for u, t in trees.items()}
        lazy = build_lazy_plan(plan, docs)
        assert materialize(BindingsDocument(lazy)) == \
            evaluate_bindings(plan, trees).to_tree()

    def test_rewalk_is_free(self):
        plan = Materialize(OrderBy(_chain(), ["V"]))
        trees = _tree()
        docs = {u: CountingDocument(MaterializedDocument(t))
                for u, t in trees.items()}
        lazy = build_lazy_plan(plan, docs)
        materialize(BindingsDocument(lazy))
        first_walk = sum(d.total for d in docs.values())
        materialize(BindingsDocument(lazy))
        assert sum(d.total for d in docs.values()) == first_walk

    def test_untouched_variables_cost_nothing(self):
        # The source-root variable R is never navigated if unused.
        plan = Materialize(OrderBy(
            GetDescendants(
                GetDescendants(Source("src", "R"), "R", "r.x", "X"),
                "X", "_", "V"),
            ["V"]))
        trees = _tree()
        docs = {u: CountingDocument(MaterializedDocument(t))
                for u, t in trees.items()}
        lazy = build_lazy_plan(plan, docs)
        binding = lazy.first_binding()
        forced = sum(d.total for d in docs.values())
        # Touch only $V values: far cheaper than draining $R (the
        # whole document per binding).
        while binding is not None:
            lazy.v_fetch(lazy.attribute(binding, "V"))
            binding = lazy.next_binding(binding)
        total = sum(d.total for d in docs.values())
        assert total - forced < 40

    def test_empty_input(self):
        plan = Materialize(GetDescendants(Source("src", "R"), "R",
                                          "none", "X"))
        docs = {"src": MaterializedDocument(Tree("src", [elem("a")]))}
        lazy = build_lazy_plan(plan, docs)
        assert lazy.first_binding() is None


class TestHybridOptimizer:
    def test_rule_wraps_orderby(self):
        plan = OrderBy(_chain(), ["V"])
        optimized, trace = optimize(plan, hybrid=True)
        assert "materialize-unbrowsable" in trace.applied
        assert isinstance(optimized, Materialize)

    def test_rule_wraps_difference(self):
        left = Project(_chain(), ["V"])
        plan = Difference(left, left)
        optimized, trace = optimize(plan, hybrid=True)
        assert isinstance(optimized, Materialize)

    def test_no_double_wrapping(self):
        plan = Materialize(OrderBy(_chain(), ["V"]))
        optimized, _ = optimize(plan, hybrid=True)
        count = sum(1 for n in walk_plan(optimized)
                    if isinstance(n, Materialize))
        assert count == 1

    def test_disabled_by_default(self):
        plan = OrderBy(_chain(), ["V"])
        optimized, trace = optimize(plan)
        assert "materialize-unbrowsable" not in trace.applied

    def test_browsable_plans_untouched(self):
        plan = _chain()
        optimized, trace = optimize(plan, hybrid=True)
        assert not any(isinstance(n, Materialize)
                       for n in walk_plan(optimized))


class TestHybridMediator:
    def _mediator(self, hybrid):
        med = MIXMediator(EngineConfig(hybrid=hybrid))
        for url, tree in homes_and_schools(10).items():
            med.register_source(url, MaterializedDocument(tree))
        return med

    def test_same_answers(self):
        plain = self._mediator(False).prepare(ORDERED_QUERY)
        hybrid = self._mediator(True).prepare(ORDERED_QUERY)
        assert plain.materialize() == hybrid.materialize()

    def test_first_browse_not_worse(self):
        plain = self._mediator(False)
        plain.prepare(ORDERED_QUERY).materialize()
        hybrid = self._mediator(True)
        hybrid.prepare(ORDERED_QUERY).materialize()
        assert hybrid.total_source_navigations() <= \
            plain.total_source_navigations()

    def test_rebrowse_is_free(self):
        med = self._mediator(True)
        result = med.prepare(ORDERED_QUERY)
        result.materialize()
        after_first = med.total_source_navigations()
        result.materialize()
        assert med.total_source_navigations() == after_first
