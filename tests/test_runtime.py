"""The runtime spine: EngineConfig, CacheManager, Tracer,
ExecutionContext, and the mediator-facing surfaces built on them
(constructor contract, optimizer safety net, aggregated stats)."""

import pytest

from repro.algebra import GetDescendants, Source
from repro.mediator import MediatorWarning, MIXMediator
from repro.runtime import (
    MISS,
    CacheManager,
    CacheStats,
    ConfigError,
    EngineConfig,
    ExecutionContext,
    Tracer,
)
from repro.wrappers import XMLFileWrapper
from repro.xtree import to_xml

from .fixtures import expected_fig4_answer

HOMES_XML = """
<homes>
  <home><addr>La Jolla</addr><zip>91220</zip></home>
  <home><addr>El Cajon</addr><zip>91223</zip></home>
</homes>"""

SCHOOLS_XML = """
<schools>
  <school><dir>Smith</dir><zip>91220</zip></school>
  <school><dir>Bar</dir><zip>91220</zip></school>
  <school><dir>Hart</dir><zip>91223</zip></school>
</schools>"""

FIG4_QUERY = """
CONSTRUCT <answer>
            <med_home> $H $S {$S} </med_home> {$H}
          </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
"""


def example2_mediator(config=None):
    med = MIXMediator(config)
    med.register_wrapper("homesSrc",
                         XMLFileWrapper("homesSrc", HOMES_XML))
    med.register_wrapper("schoolsSrc",
                         XMLFileWrapper("schoolsSrc", SCHOOLS_XML))
    return med


# ----------------------------------------------------------------------
# EngineConfig
# ----------------------------------------------------------------------

class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.optimize_plans and config.cache_enabled
        assert not config.use_sigma and not config.hybrid
        assert config.cache_budget is None
        assert config.chunk_size == 10

    def test_frozen(self):
        with pytest.raises(Exception):
            EngineConfig().cache_enabled = False

    def test_replace_returns_new_validated_instance(self):
        base = EngineConfig()
        variant = base.replace(cache_budget=4, use_sigma=True)
        assert variant.cache_budget == 4 and variant.use_sigma
        assert base.cache_budget is None  # original untouched
        with pytest.raises(ConfigError):
            base.replace(cache_budget=-1)

    @pytest.mark.parametrize("bad", [
        {"cache_budget": -5}, {"chunk_size": 0}, {"depth": 0},
        {"prefetch": -1}, {"latency_ms": -1.0}, {"ms_per_kb": -0.5},
    ])
    def test_validation(self, bad):
        with pytest.raises(ConfigError):
            EngineConfig(**bad)

    def test_as_dict_round_trips(self):
        config = EngineConfig(cache_budget=7, hybrid=True)
        assert EngineConfig(**config.as_dict()) == config


# ----------------------------------------------------------------------
# CacheManager
# ----------------------------------------------------------------------

class TestCacheManager:
    def test_hit_miss_counters(self):
        caches = CacheManager()
        memo = caches.cache("m")
        assert memo.get("a") is MISS
        memo.put("a", 1)
        assert memo.get("a") == 1
        assert memo.stats.hits == 1 and memo.stats.misses == 1
        assert memo.stats.hit_rate == 0.5

    def test_miss_sentinel_distinguishes_cached_none(self):
        memo = CacheManager().cache("m")
        memo.put("k", None)
        assert memo.get("k") is None
        assert memo.get("other") is MISS

    def test_budget_evicts_lru_across_caches(self):
        caches = CacheManager(budget=2)
        a, b = caches.cache("a"), caches.cache("b")
        a.put(1, "x")
        b.put(1, "y")
        assert a.get(1) == "x"      # refresh a's entry
        b.put(2, "z")               # evicts b:1, the global LRU
        assert b.get(1) is MISS
        assert a.get(1) == "x" and b.get(2) == "z"
        assert caches.evictions == 1
        assert caches.memo_entries <= 2

    def test_state_caches_pinned_and_unbudgeted(self):
        caches = CacheManager(budget=1)
        state = caches.cache("s", kind="state")
        memo = caches.cache("m")
        for i in range(5):
            state.put(i, i)
        memo.put("only", 1)
        assert caches.memo_entries == 1
        assert caches.state_entries == 5
        assert all(state.get(i) == i for i in range(5))
        assert state.stats.evictions == 0

    def test_disabled_memo_is_full_bypass_but_state_works(self):
        caches = CacheManager(enabled=False)
        memo = caches.cache("m")
        state = caches.cache("s", kind="state")
        memo.put("k", 1)
        assert memo.get("k") is MISS is memo.peek("k")
        assert memo.stats.lookups == 0  # bypass is uncounted
        state.put("k", 2)
        assert state.get("k") == 2

    def test_peek_is_stats_silent(self):
        memo = CacheManager().cache("m")
        memo.put("k", 1)
        assert memo.peek("k") == 1 and memo.peek("nope") is MISS
        assert memo.stats.lookups == 0

    def test_report_aggregates_by_name(self):
        caches = CacheManager()
        first, second = caches.cache("join.inner"), caches.cache("join.inner")
        first.put(1, "a")
        second.put(2, "b")
        second.get(2)
        report = caches.report()
        assert report["join.inner"].entries == 2
        assert report["join.inner"].hits == 1
        assert caches.totals().entries == 2
        assert set(caches.as_dict()) >= {"enabled", "budget", "caches",
                                         "memo_entries", "evictions"}

    def test_stats_merge(self):
        merged = CacheStats(hits=1, misses=2).merge(
            CacheStats(hits=3, evictions=4))
        assert (merged.hits, merged.misses, merged.evictions) == (4, 2, 4)


# ----------------------------------------------------------------------
# Tracer + ExecutionContext
# ----------------------------------------------------------------------

class TestTracer:
    def test_idle_tracer_is_inactive(self):
        tracer = Tracer()
        assert not tracer.active
        tracer.emit("x", "y")       # no-op
        assert tracer.events == []

    def test_subscribe_and_record(self):
        tracer = Tracer(record=True)
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit("source", "down", source="homesSrc")
        assert seen[0].layer == "source"
        assert tracer.events[0].data == {"source": "homesSrc"}
        assert "source.down" in str(tracer.events[0])

    def test_span_emits_begin_end(self):
        tracer = Tracer(record=True)
        with tracer.span("mediator", "prepare"):
            pass
        assert [e.event for e in tracer.events] \
            == ["prepare.begin", "prepare.end"]

    def test_unsubscribe_stops_delivery(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit("x", "one")
        tracer.unsubscribe(seen.append)
        tracer.emit("x", "two")
        assert [e.event for e in seen] == ["one"]
        assert not tracer.active

    def test_unsubscribe_unknown_callback_raises(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="not subscribed"):
            tracer.unsubscribe(lambda event: None)

    def test_double_unsubscribe_raises(self):
        tracer = Tracer()
        callback = lambda event: None  # noqa: E731
        tracer.subscribe(callback)
        tracer.unsubscribe(callback)
        with pytest.raises(ValueError, match="not subscribed"):
            tracer.unsubscribe(callback)

    def test_reentrant_callback_may_emit(self):
        """A subscriber may navigate, which may emit again -- the
        tracer must not hold its lock across callbacks."""
        tracer = Tracer(record=True)

        def echo(event):
            if event.layer != "echo":
                tracer.emit("echo", event.event)

        tracer.subscribe(echo)
        tracer.emit("source", "down")
        assert [(e.layer, e.event) for e in tracer.events] \
            == [("source", "down"), ("echo", "down")]

    def test_concurrent_emitters_lose_no_events(self):
        import threading

        tracer = Tracer(record=True)
        seen = []
        tracer.subscribe(seen.append)
        n, per = 8, 200

        def emitter(index):
            for i in range(per):
                tracer.emit("worker", "tick", worker=index, i=i)

        threads = [threading.Thread(target=emitter, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(tracer.events) == n * per
        assert len(seen) == n * per

    def test_concurrent_subscribe_unsubscribe_during_emit(self):
        import threading

        tracer = Tracer(record=True)
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                callback = lambda event: None  # noqa: E731
                tracer.subscribe(callback)
                tracer.unsubscribe(callback)

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            for i in range(2000):
                tracer.emit("x", "tick", i=i)
        finally:
            stop.set()
            churner.join(timeout=30)
        assert len(tracer.events) == 2000


class TestExecutionContext:
    def test_create_with_overrides(self):
        ctx = ExecutionContext.create(cache_enabled=False, cache_budget=3)
        assert not ctx.config.cache_enabled
        assert ctx.caches.budget == 3 and not ctx.caches.enabled

    def test_stats_report_shape(self):
        ctx = ExecutionContext.create()
        report = ctx.stats_report()
        assert set(report) == {"config", "caches"}
        assert report["config"]["cache_enabled"] is True


# ----------------------------------------------------------------------
# Mediator integration
# ----------------------------------------------------------------------

class TestConstructorContract:
    def test_config_object_is_the_only_configuration_channel(self):
        med = MIXMediator(
            EngineConfig(cache_enabled=False, use_sigma=True))
        assert not med.config.cache_enabled and med.config.use_sigma
        assert not med.cache_enabled and med.use_sigma  # read views

    def test_legacy_positional_bool_rejected(self):
        # The pre-runtime MIXMediator(optimize_plans) signature (and
        # its deprecation shim) are gone: only an EngineConfig works.
        with pytest.raises(TypeError, match="EngineConfig"):
            MIXMediator(False)

    def test_legacy_kwargs_rejected(self):
        with pytest.raises(TypeError):
            MIXMediator(cache_enabled=False)
        with pytest.raises(TypeError):
            MIXMediator(chunk_size=5)


class TestOptimizerSafetyNet:
    def test_non_tupledestroy_rewrite_warns_and_falls_back(
            self, monkeypatch):
        bogus = GetDescendants(Source("homesSrc", "R"), "R", "x", "Y")
        monkeypatch.setattr("repro.mediator.mix.optimize",
                            lambda plan, hybrid=False: (bogus, None))
        med = example2_mediator()
        with pytest.warns(MediatorWarning, match="tupleDestroy"):
            result = med.prepare(FIG4_QUERY)
        # The rewrite was discarded: the initial plan evaluates.
        assert result.plan is result.initial_plan
        assert to_xml(result.materialize()) \
            == to_xml(expected_fig4_answer())

    def test_discard_is_traced(self, monkeypatch):
        bogus = GetDescendants(Source("homesSrc", "R"), "R", "x", "Y")
        monkeypatch.setattr("repro.mediator.mix.optimize",
                            lambda plan, hybrid=False: (bogus, None))
        tracer = Tracer(record=True)
        med = MIXMediator(tracer=tracer)
        med.register_wrapper("homesSrc",
                             XMLFileWrapper("homesSrc", HOMES_XML))
        med.register_wrapper("schoolsSrc",
                             XMLFileWrapper("schoolsSrc", SCHOOLS_XML))
        with pytest.warns(MediatorWarning):
            med.prepare(FIG4_QUERY)
        assert any(e.event == "optimizer.discarded_result"
                   for e in tracer.events)


class TestQueryResultStats:
    def test_aggregated_report(self):
        med = example2_mediator()
        result = med.prepare(FIG4_QUERY)
        result.materialize()
        stats = result.stats()
        assert set(stats) >= {"config", "caches", "source_navigations"}
        navigations = stats["source_navigations"]
        assert navigations["total"] > 0
        assert set(navigations["per_source"]) \
            == {"homesSrc", "schoolsSrc"}
        by_command = navigations["by_command"]
        assert by_command["total"] == navigations["total"]
        assert sum(v for k, v in by_command.items() if k != "total") \
            == navigations["total"]
        caches = stats["caches"]["caches"]
        assert "join.inner" in caches and "groupBy.G_prev" in caches
        assert caches["join.inner"]["hits"] > 0

    def test_meters_count_since_prepare(self):
        med = example2_mediator()
        first = med.prepare(FIG4_QUERY)
        first.materialize()
        spent = first.stats()["source_navigations"]["total"]
        assert spent > 0
        # A later query starts from a zero delta, not the session total.
        second = med.prepare(FIG4_QUERY)
        assert second.stats()["source_navigations"]["total"] == 0
        second.materialize()
        assert second.stats()["source_navigations"]["total"] == spent

    def test_remote_session_traffic_in_stats(self):
        med = example2_mediator()
        result = med.prepare(FIG4_QUERY)
        root, channel_stats = result.connect_remote(chunk_size=2)
        root.to_tree()
        stats = result.stats()
        assert stats["channels"]["messages"] == channel_stats.messages
        assert stats["channels"]["bytes_transferred"] > 0
        assert "remote#1" in stats["channels"]["per_channel"]

    def test_explain_includes_runtime_block(self):
        med = example2_mediator()
        result = med.prepare(FIG4_QUERY)
        result.materialize()
        text = result.explain()
        assert "runtime:" in text
        assert "source navigations:" in text
        assert "cache policy: on" in text

    def test_source_tracer_events(self):
        tracer = Tracer(record=True)
        med = MIXMediator(tracer=tracer)
        med.register_wrapper("homesSrc",
                             XMLFileWrapper("homesSrc", HOMES_XML))
        med.register_wrapper("schoolsSrc",
                             XMLFileWrapper("schoolsSrc", SCHOOLS_XML))
        med.prepare(FIG4_QUERY).materialize()
        layers = {e.layer for e in tracer.events}
        assert {"mediator", "source"} <= layers
        assert any(e.event == "prepare.begin" for e in tracer.events)
