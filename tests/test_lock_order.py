"""The concurrency analyzer and the runtime deadlock sanitizer.

Three layers under test, and the contract that binds them:

1. **Static** -- ``tools.lint.lockgraph`` finds lock-order cycles
   (L010), blocking calls under locks (L011), foreign callbacks under
   locks (L012) and interprocedural lock-consistency violations
   (L002) on small toy modules, including the ``_locked``-suffix
   blind spot the per-file L001 rule cannot see.
2. **Dynamic** -- ``repro.testing.lockcheck`` raises on the same
   hazards at runtime when armed, and stays entirely off the default
   path (proven in subprocesses).
3. **Agreement** -- every lock-order edge the armed sanitizer observes
   while driving a real mediator/server scenario is contained in the
   static graph computed from ``src/repro`` (dynamic is a subset of
   static), and the sanitizer's blocking-hold allowlist names only
   locks the static analyzer knows.
"""

from __future__ import annotations

import subprocess
import sys
import threading
import time
from pathlib import Path
from textwrap import dedent

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src" / "repro"
sys.path.insert(0, str(REPO_ROOT))

from tools.lint import lint_file  # noqa: E402
from tools.lint.lockgraph import analyze  # noqa: E402

from repro.runtime import locks as locks_mod  # noqa: E402
from repro.runtime.locks import make_lock, make_rlock  # noqa: E402
from repro.testing import lockcheck  # noqa: E402


def _toy(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.write_text(dedent(source))
    return path


def _codes(graph) -> list:
    return [f.code for f in graph.findings]


# ----------------------------------------------------------------------
# static: toy modules through the whole-program analyzer
# ----------------------------------------------------------------------

class TestStaticLockOrder:
    def test_abba_cycle_is_an_l010(self, tmp_path):
        path = _toy(tmp_path, "abba.py", """\
            from repro.runtime.locks import make_lock

            class Pair:
                def __init__(self):
                    self.a = make_lock("toy.a")
                    self.b = make_lock("toy.b")

                def ab(self):
                    with self.a:
                        with self.b:
                            pass

                def ba(self):
                    with self.b:
                        with self.a:
                            pass
            """)
        graph = analyze([path])
        assert ("toy.a", "toy.b") in graph.edge_pairs()
        assert ("toy.b", "toy.a") in graph.edge_pairs()
        assert "L010" in _codes(graph)
        assert any(set(c) == {"toy.a", "toy.b"} for c in graph.cycles())

    def test_consistent_order_is_clean(self, tmp_path):
        path = _toy(tmp_path, "ordered.py", """\
            from repro.runtime.locks import make_lock

            class Pair:
                def __init__(self):
                    self.a = make_lock("toy.a")
                    self.b = make_lock("toy.b")

                def one(self):
                    with self.a:
                        with self.b:
                            pass

                def two(self):
                    with self.a:
                        with self.b:
                            pass
            """)
        graph = analyze([path])
        assert graph.edge_pairs() == {("toy.a", "toy.b")}
        assert graph.cycles() == []
        assert "L010" not in _codes(graph)

    def test_blocking_call_under_lock_is_an_l011(self, tmp_path):
        path = _toy(tmp_path, "sleepy.py", """\
            import time

            from repro.runtime.locks import make_lock

            class Sleepy:
                def __init__(self):
                    self.guard = make_lock("toy.sleepy")

                def nap(self):
                    with self.guard:
                        time.sleep(0.01)
            """)
        graph = analyze([path])
        l011 = [f for f in graph.findings if f.code == "L011"]
        assert len(l011) == 1
        assert "time.sleep" in l011[0].message

    def test_transitive_blocking_call_is_found(self, tmp_path):
        """The sleep hides one call deep: only the interprocedural
        fixpoint can see it."""
        path = _toy(tmp_path, "deep.py", """\
            import time

            from repro.runtime.locks import make_lock

            def pause():
                time.sleep(0.01)

            class Sleepy:
                def __init__(self):
                    self.guard = make_lock("toy.deep")

                def nap(self):
                    with self.guard:
                        pause()
            """)
        graph = analyze([path])
        assert "L011" in _codes(graph)

    def test_callback_under_lock_is_an_l012(self, tmp_path):
        path = _toy(tmp_path, "notify.py", """\
            from repro.runtime.locks import make_lock

            class Notifier:
                def __init__(self):
                    self.guard = make_lock("toy.notifier")
                    self.callbacks = []

                def fire(self):
                    with self.guard:
                        for callback in self.callbacks:
                            callback(1)
            """)
        graph = analyze([path])
        assert "L012" in _codes(graph)

    def test_l002_catches_the_locked_suffix_blind_spot(self, tmp_path):
        """``forgot()`` calls ``_add_locked()`` without the class
        lock.  The per-file L001 rule exempts ``*_locked`` methods
        (the convention says the *caller* holds the lock), so it sees
        nothing here -- the interprocedural L002 rule closes exactly
        that hole."""
        path = _toy(tmp_path, "registry.py", """\
            from repro.runtime.locks import make_lock

            class Registry:
                def __init__(self):
                    self._lock = make_lock("toy.registry")
                    self._items = {}

                def _add_locked(self, key):
                    self._items[key] = True

                def add(self, key):
                    with self._lock:
                        self._add_locked(key)

                def forgot(self, key):
                    self._add_locked(key)
            """)
        assert [f for f in lint_file(path, {}) if f.code == "L001"] \
            == []
        l002 = [f for f in analyze([path]).findings
                if f.code == "L002"]
        assert len(l002) == 1
        assert "forgot" in l002[0].message

    def test_l002_respects_a_held_lock(self, tmp_path):
        path = _toy(tmp_path, "held.py", """\
            from repro.runtime.locks import make_lock

            class Registry:
                def __init__(self):
                    self._lock = make_lock("toy.held")
                    self._items = {}

                def _add_locked(self, key):
                    self._items[key] = True

                def add(self, key):
                    with self._lock:
                        self._add_locked(key)
            """)
        assert [f for f in analyze([path]).findings
                if f.code == "L002"] == []


# ----------------------------------------------------------------------
# static: the real tree
# ----------------------------------------------------------------------

class TestRepoGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        return analyze([SRC_ROOT])

    def test_src_tree_has_no_findings(self, graph):
        # suppressed sites are filtered by the CLI layer; the raw
        # graph must only contain findings with a justification
        # comment at the site
        from tools.lint import apply_suppressions
        remaining = []
        for finding in graph.findings:
            lines = Path(finding.path).read_text().splitlines()
            remaining.extend(apply_suppressions([finding], lines))
        assert remaining == []

    def test_src_tree_is_cycle_free(self, graph):
        assert graph.cycles() == []

    def test_every_lock_bearing_module_is_covered(self, graph):
        expected = set()
        for path in SRC_ROOT.rglob("*.py"):
            text = path.read_text()
            if "make_lock(" in text or "make_rlock(" in text:
                expected.add("repro." + ".".join(
                    path.relative_to(SRC_ROOT.parent)
                    .with_suffix("").parts[1:]))
        # the factory itself and the sanitizer are infrastructure,
        # not analyzed participants
        expected -= {"repro.runtime.locks",
                     "repro.testing.lockcheck"}
        covered = {decl.module for decl in graph.locks.values()}
        assert expected <= covered, expected - covered

    def test_blocking_allowlist_names_known_locks(self, graph):
        assert lockcheck.BLOCKING_HOLD_ALLOWED <= set(graph.locks)


# ----------------------------------------------------------------------
# dynamic: the armed sanitizer
# ----------------------------------------------------------------------

@pytest.fixture
def sanitizer():
    lockcheck.reset()
    lockcheck.arm()
    try:
        yield lockcheck
    finally:
        lockcheck.disarm()
        lockcheck.reset()


class TestRuntimeSanitizer:
    def test_cycle_formation_raises(self, sanitizer):
        a = make_lock("toy.dyn.a")
        b = make_lock("toy.dyn.b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(lockcheck.LockOrderError) as err:
                with a:
                    pass
        assert "toy.dyn" in str(err.value)

    def test_consistent_order_never_raises(self, sanitizer):
        a = make_lock("toy.dyn.c")
        b = make_lock("toy.dyn.d")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert ("toy.dyn.c", "toy.dyn.d") in lockcheck.observed_edges()

    def test_self_deadlock_raises(self, sanitizer):
        guard = make_lock("toy.dyn.self")
        with guard:
            with pytest.raises(lockcheck.LockOrderError):
                guard.acquire()

    def test_rlock_reentry_is_fine(self, sanitizer):
        guard = make_rlock("toy.dyn.re")
        with guard:
            with guard:
                pass

    def test_same_name_distinct_instances_nest(self, sanitizer):
        """Stacked components share one name (buffer over buffer);
        nesting them is not a self-deadlock and not an order edge."""
        outer = make_lock("toy.dyn.stack")
        inner = make_lock("toy.dyn.stack")
        with outer:
            with inner:
                pass
        assert ("toy.dyn.stack", "toy.dyn.stack") \
            not in lockcheck.observed_edges()

    def test_blocking_under_lock_raises(self, sanitizer):
        guard = make_lock("toy.dyn.block")
        with guard:
            with pytest.raises(lockcheck.BlockingCallUnderLock) as err:
                time.sleep(0.001)
        assert "toy.dyn.block" in str(err.value)

    def test_blocking_with_allowlisted_lock_passes(self, sanitizer):
        # "buffer.component" is in BLOCKING_HOLD_ALLOWED: demand
        # fills block under the open-tree lock by design
        guard = make_lock("buffer.component")
        with guard:
            time.sleep(0.001)

    def test_blocking_without_locks_passes(self, sanitizer):
        time.sleep(0.001)

    def test_disarm_restores_plain_locks(self):
        lockcheck.reset()
        lockcheck.arm()
        lockcheck.disarm()
        lock = make_lock("toy.dyn.plain")
        assert type(lock) is type(threading.Lock())
        with lock:
            time.sleep(0.001)  # guards removed with the factory

    def test_cross_thread_abba_is_caught_without_deadlocking(
            self, sanitizer):
        """The classic race: thread one takes a->b, thread two takes
        b->a.  The sanitizer turns the *potential* deadlock into a
        deterministic error on whichever thread completes the cycle,
        even if the timing never actually deadlocks."""
        a = make_lock("toy.dyn.t1")
        b = make_lock("toy.dyn.t2")
        failures = []

        def forward():
            with a:
                with b:
                    pass

        def backward():
            try:
                with b:
                    with a:
                        pass
            except lockcheck.LockOrderError as err:
                failures.append(err)

        one = threading.Thread(target=forward)
        one.start()
        one.join()
        two = threading.Thread(target=backward)
        two.start()
        two.join()
        assert len(failures) == 1


# ----------------------------------------------------------------------
# regressions for the bugs the analyzer found in the tree
# ----------------------------------------------------------------------

class TestFoundBugRegressions:
    def test_fragcache_observer_runs_outside_the_shard_lock(
            self, sanitizer):
        """fill_through used to invoke the observer while holding
        ``fragcache.shard``; a reentrant observer would deadlock."""
        from repro.buffer.holes import fragment_of_tree
        from repro.runtime.fragcache import FragmentStore
        from repro.xtree import elem

        store = FragmentStore(shards=2)
        held_during_observer = []

        def observer(outcome):
            held_during_observer.append(lockcheck.held_names())

        fragments = [fragment_of_tree(elem("home", "x"))]
        for _ in range(2):  # miss+produce, then hit
            store.fill_through(("src", "k"), 1, lambda: fragments,
                               observer=observer)
        assert held_during_observer  # observer did run
        for held in held_during_observer:
            assert not any(n.startswith("fragcache.") for n in held)

    def test_counting_document_publishes_outside_its_lock(
            self, sanitizer):
        """CountingDocument used to emit trace events while holding
        ``source.meter``; a subscriber touching the meter (stats
        collection does) would deadlock."""
        from repro.navigation.counting import CountingDocument
        from repro.navigation.materialized import MaterializedDocument
        from repro.runtime.context import Tracer
        from repro.xtree import elem

        held_during_emit = []
        tracer = Tracer()
        tracer.subscribe(
            lambda event: held_during_emit.append(
                lockcheck.held_names()))
        doc = CountingDocument(
            MaterializedDocument(elem("home", elem("addr", "a"))),
            name="homesSrc", tracer=tracer)
        pointer = doc.root()
        doc.down(pointer)
        assert held_during_emit  # events did flow
        for held in held_during_emit:
            assert "source.meter" not in held

    def test_prefilled_buffer_needs_no_lock_to_build(self, sanitizer):
        """BufferComponent.prefilled locked the buffer it was still
        building (closing a static cycle with the demand-fill path);
        the object is thread-confined until returned, so building it
        must take no lock at all."""
        from repro.buffer.component import BufferComponent
        from repro.xtree import elem

        buffer = BufferComponent.prefilled(
            elem("home", elem("addr", "a")))
        assert ("pushdown.document", "buffer.component") \
            not in lockcheck.observed_edges()
        root = buffer.root()
        assert buffer.fetch(root) == "home"


# ----------------------------------------------------------------------
# agreement: dynamic subset of static
# ----------------------------------------------------------------------

class TestAgreement:
    def test_observed_edges_are_contained_in_the_static_graph(
            self, sanitizer):
        """Drive a real client/server scenario under the armed
        sanitizer and check every observed lock-order edge exists in
        the static graph -- the CI job runs the same containment over
        the full suite via ``--assert-contains``."""
        from repro.mediator.mix import MIXMediator
        from repro.navigation.materialized import MaterializedDocument
        from repro.runtime.config import EngineConfig
        from tests.fixtures import homes_of_size

        mediator = MIXMediator(
            EngineConfig(batch_navigations=True, prefetch=4))
        mediator.register_source(
            "homesSrc",
            MaterializedDocument(homes_of_size(6)["homesSrc"]))
        result = mediator.prepare(
            "CONSTRUCT <answer> $H {$H} </answer> {} "
            "WHERE homesSrc homes.home $H")
        root, stats = result.connect_remote(chunk_size=2, depth=2)
        tags = [grandchild.tag
                for child in root.children()
                for grandchild in child.children()]
        assert tags

        observed = lockcheck.observed_edges()
        assert observed  # the scenario exercised nested locks
        static = analyze([SRC_ROOT]).edge_pairs()
        unexplained = {(src, dst) for src, dst in observed
                       if src != dst and (src, dst) not in static}
        assert unexplained == set()


# ----------------------------------------------------------------------
# the default path: no wrapper, no import, no overhead
# ----------------------------------------------------------------------

class TestDefaultPathUntouched:
    def test_default_locks_are_plain_and_lockcheck_never_imports(self):
        code = dedent("""\
            import sys
            import threading
            from repro.runtime.locks import make_lock, make_rlock

            lock = make_lock("toy.sub.plain")
            assert type(lock) is type(threading.Lock()), type(lock)
            rlock = make_rlock("toy.sub.re")
            assert type(rlock) is type(threading.RLock()), type(rlock)
            loaded = [m for m in sys.modules if "lockcheck" in m]
            assert loaded == [], loaded
            print("OK")
            """)
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"}
        result = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True, timeout=60)
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "OK"

    def test_env_var_arms_at_import(self):
        code = dedent("""\
            import sys
            from repro.runtime.locks import make_lock

            assert "repro.testing.lockcheck" in sys.modules
            from repro.testing import lockcheck
            assert lockcheck.armed()
            lock = make_lock("toy.sub.armed")
            assert type(lock).__name__ == "_SanitizedLock", type(lock)
            print("OK")
            """)
        env = {"PYTHONPATH": str(REPO_ROOT / "src"),
               "PATH": "/usr/bin",
               "REPRO_LOCK_SANITIZER": "1"}
        result = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True, timeout=60)
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "OK"


# ----------------------------------------------------------------------
# docs: PROTOCOLS.md stays in sync with the code
# ----------------------------------------------------------------------

class TestDocsSync:
    @pytest.fixture(scope="class")
    def section(self):
        text = (REPO_ROOT / "docs" / "PROTOCOLS.md").read_text()
        assert "## Concurrency discipline" in text
        part = text.split("## Concurrency discipline", 1)[1]
        return part.split("\n## ", 1)[0]

    def test_linter_codes_table_matches_registry(self, section):
        import re
        from tools.lint import CODES
        for code, info in CODES.items():
            row = "| `%s` | %s | `%s` |" % (code, info.severity,
                                            info.title)
            assert row in section, \
                "PROTOCOLS.md missing/outdated: %s" % row
        documented = set(re.findall(r"\| `([A-Z]\d{3})` \|", section))
        assert documented == set(CODES)

    def test_lock_registry_table_matches_static_graph(self, section):
        import re
        rows = re.findall(
            r"\| `([a-z][a-z0-9_.]+)` \| (R?Lock) \| `([a-z0-9_.]+)`",
            section)
        documented = {name: (kind, module)
                      for name, kind, module in rows}
        graph = analyze([SRC_ROOT])
        actual = {name: ("RLock" if decl.reentrant else "Lock",
                         decl.module)
                  for name, decl in graph.locks.items()}
        assert documented == actual

    def test_allowlist_is_documented(self, section):
        for name in lockcheck.BLOCKING_HOLD_ALLOWED:
            assert "`%s`" % name in section


# ----------------------------------------------------------------------
# CLI: scoping and the containment flag
# ----------------------------------------------------------------------

class TestCliScoping:
    def test_non_src_roots_get_hygiene_rules_only(self, tmp_path):
        """A bare except outside ``src/`` is still X100, but the
        lock rules (full-tree analysis) only run over the runtime."""
        from tools.lint import lint_file_hygiene
        path = _toy(tmp_path, "bench.py", """\
            def run():
                try:
                    pass
                except:
                    pass
            """)
        codes = [f.code for f in lint_file_hygiene(path)]
        assert codes == ["X100"]

    def test_lock_graph_dump_and_containment_roundtrip(self, tmp_path):
        """--lock-graph writes JSON + DOT; --assert-contains accepts
        a dump whose edges all exist and rejects one that invents an
        edge."""
        from tools.lint.cli import main

        graph_path = tmp_path / "lockgraph.json"
        rc = main(["--lock-graph", str(graph_path)])
        assert rc == 0
        assert graph_path.exists()
        assert graph_path.with_suffix(".dot").exists()

        good = tmp_path / "good.jsonl"
        good.write_text(
            '{"edges": [["buffer.component", "fragcache.shard"]]}\n')
        assert main(["--lock-graph", str(graph_path),
                     "--assert-contains", str(good)]) == 0

        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            '{"edges": [["fragcache.shard", "buffer.component"]]}\n')
        assert main(["--lock-graph", str(graph_path),
                     "--assert-contains", str(bad)]) != 0
