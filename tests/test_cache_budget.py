"""Cache-eviction equivalence: a bounded cache budget changes costs,
never answers.

Every evictable (memo) cache entry is re-derivable from the structured
node-ids of paper Fig. 5, so evicting at any time -- even with a budget
of a single entry -- must leave the materialized answer byte-identical
to the eager evaluator's.  These tests pin that invariant on the
Figure 4 plan and scaled variants, and check the budget actually binds
(evictions observed, live memo entries within budget).
"""

import pytest

from repro.algebra import Comparison, GetDescendants, Join, Source, Var
from repro.algebra.eager import evaluate
from repro.lazy import build_lazy_plan, build_virtual_document
from repro.navigation import MaterializedDocument, materialize
from repro.runtime import ExecutionContext
from repro.xtree import to_xml

from .fixtures import (
    expected_fig4_answer,
    fig4_plan,
    fig4_sources,
    homes_of_size,
)


def _materialize_with(plan, trees, **overrides):
    """Materialize the lazy plan under a configured context; returns
    (answer xml, context)."""
    context = ExecutionContext.create(**overrides)
    docs = {url: MaterializedDocument(t) for url, t in trees.items()}
    document = build_virtual_document(plan, docs, context)
    return to_xml(materialize(document)), context


def _eager_xml(plan, trees):
    return to_xml(evaluate(plan, trees))


CONFIGS = [
    {},                                     # unlimited caches
    {"cache_enabled": False},               # E7 ablation: no caches
    {"cache_budget": 1},                    # pathological budget
    {"cache_budget": 4},
    {"cache_budget": 0},                    # insert -> immediate evict
]
CONFIG_IDS = ["unlimited", "disabled", "budget-1", "budget-4",
              "budget-0"]


@pytest.mark.parametrize("overrides", CONFIGS, ids=CONFIG_IDS)
def test_fig4_answer_identical_under_any_cache_policy(overrides):
    plan, trees = fig4_plan(), fig4_sources()
    xml, _ = _materialize_with(plan, trees, **overrides)
    assert xml == _eager_xml(plan, trees)
    assert xml == to_xml(expected_fig4_answer())


@pytest.mark.parametrize("overrides", CONFIGS, ids=CONFIG_IDS)
@pytest.mark.parametrize("n_homes", [5, 12])
def test_scaled_workload_identical_under_any_cache_policy(
        overrides, n_homes):
    plan = fig4_plan()
    trees = homes_of_size(n_homes, schools_per_zip=2)
    xml, _ = _materialize_with(plan, trees, **overrides)
    assert xml == _eager_xml(plan, trees)


def test_tiny_budget_actually_evicts_and_stays_within_budget():
    plan, trees = fig4_plan(), fig4_sources()
    _, context = _materialize_with(plan, trees, cache_budget=1)
    assert context.caches.evictions > 0
    assert context.caches.memo_entries <= 1


def test_budget_bounds_full_e7_materialization():
    """The E7-style workload fully materialized under a small budget:
    live memo entries never exceed the budget, evictions happen, and
    the answer matches the unlimited run byte for byte."""
    plan = fig4_plan()
    trees = homes_of_size(12, schools_per_zip=3)
    budget = 8
    bounded, context = _materialize_with(plan, trees,
                                         cache_budget=budget)
    unlimited, _ = _materialize_with(plan, trees)
    assert bounded == unlimited
    assert context.caches.evictions > 0
    assert context.caches.memo_entries <= budget
    # State caches (groupBy's G_prev etc.) are exempt, not evicted.
    report = context.caches.report()
    assert report["groupBy.G_prev"].evictions == 0


def test_interleaved_rewalk_after_eviction():
    """Re-walking from retained node-ids after the cache under them
    was evicted must reproduce the identical binding chain."""
    left = GetDescendants(
        GetDescendants(Source("homesSrc", "root1"),
                       "root1", "homes.home", "H"),
        "H", "zip._", "V1")
    right = GetDescendants(
        GetDescendants(Source("schoolsSrc", "root2"),
                       "root2", "schools.school", "S"),
        "S", "zip._", "V2")
    plan = Join(left, right, Comparison(Var("V1"), "=", Var("V2")))
    trees = fig4_sources()
    context = ExecutionContext.create(cache_budget=1)
    docs = {url: MaterializedDocument(t) for url, t in trees.items()}
    lazy = build_lazy_plan(plan, docs, context)
    first = lazy.first_binding()
    chain1, b = [], first
    while b is not None:
        chain1.append(b)
        b = lazy.next_binding(b)
    assert context.caches.evictions > 0
    chain2, b = [], first
    while b is not None:
        chain2.append(b)
        b = lazy.next_binding(b)
    assert chain1 == chain2


def test_disabled_caches_report_no_activity():
    plan, trees = fig4_plan(), fig4_sources()
    _, context = _materialize_with(plan, trees, cache_enabled=False)
    totals = context.caches.totals()
    # Memo caches are bypasses when disabled; only state caches (the
    # groupBy registry, Materialize buffers) may record entries.
    assert context.caches.memo_entries == 0
    assert totals.evictions == 0
