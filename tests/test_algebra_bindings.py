"""Unit tests for binding lists and predicates."""

import pytest

from repro.algebra import (
    And,
    Binding,
    BindingList,
    Comparison,
    Const,
    Not,
    Or,
    TruePredicate,
    Var,
    compare_values,
    is_list_value,
    list_items,
    make_list_value,
    value_key,
    value_text,
)
from repro.xtree import elem, leaf


class TestBinding:
    def test_value_lookup(self):
        home = elem("home", elem("zip", "91220"))
        binding = Binding([("H", home)])
        assert binding.value("H") is home

    def test_missing_variable_raises(self):
        binding = Binding([("H", leaf("x"))])
        with pytest.raises(KeyError):
            binding.value("S")

    def test_extend_preserves_order_and_shares_values(self):
        home = elem("home")
        school = elem("school")
        binding = Binding([("H", home)]).extend("S", school)
        assert binding.variables == ["H", "S"]
        assert binding.value("H") is home
        assert binding.value("S") is school

    def test_extend_rejects_rebinding(self):
        binding = Binding([("H", leaf("x"))])
        with pytest.raises(ValueError):
            binding.extend("H", leaf("y"))

    def test_duplicate_variable_rejected(self):
        with pytest.raises(ValueError):
            Binding([("H", leaf("x")), ("H", leaf("y"))])

    def test_project(self):
        binding = Binding([("A", leaf("1")), ("B", leaf("2")),
                           ("C", leaf("3"))])
        assert binding.project(["C", "A"]).variables == ["C", "A"]

    def test_equality(self):
        assert Binding([("X", leaf("1"))]) == Binding([("X", leaf("1"))])
        assert Binding([("X", leaf("1"))]) != Binding([("X", leaf("2"))])


class TestBindingList:
    def test_schema_enforced(self):
        bl = BindingList([Binding([("X", leaf("1"))])])
        with pytest.raises(ValueError):
            bl.append(Binding([("Y", leaf("2"))]))

    def test_tree_encoding_round_trip(self):
        bl = BindingList([
            Binding([("X", elem("a", "1")), ("Y", leaf("y1"))]),
            Binding([("X", elem("a", "2")), ("Y", leaf("y2"))]),
        ])
        encoded = bl.to_tree()
        assert encoded.label == "bs"
        assert [c.label for c in encoded.children] == ["b", "b"]
        assert BindingList.from_tree(encoded) == bl

    def test_tree_encoding_shares_value_nodes(self):
        value = elem("a", "1")
        bl = BindingList([Binding([("X", value)])])
        assert bl.to_tree().child(0).child(0).child(0) is value

    def test_from_tree_rejects_malformed(self):
        with pytest.raises(ValueError):
            BindingList.from_tree(elem("nope"))
        with pytest.raises(ValueError):
            BindingList.from_tree(elem("bs", elem("x")))


class TestListValues:
    def test_make_and_inspect(self):
        items = (elem("s", "1"), elem("s", "2"))
        value = make_list_value(items)
        assert is_list_value(value)
        assert list_items(value) == items

    def test_non_list_is_singleton_of_itself(self):
        value = elem("home")
        assert list_items(value) == (value,)

    def test_value_key_structural(self):
        assert value_key(elem("a", "1")) == value_key(elem("a", "1"))
        assert value_key(elem("a", "1")) != value_key(elem("a", "2"))

    def test_value_text(self):
        assert value_text(leaf("91220")) == "91220"
        assert value_text(elem("zip", "91220")) == "91220"
        assert value_text(elem("home", elem("zip", "91220"),
                               elem("beds", "3"))) == "912203"


class TestPredicates:
    def _lookup(self, **values):
        return lambda var: values[var]

    def test_numeric_comparison(self):
        assert compare_values("10", "<", "9.5") is False
        assert compare_values("10", ">", "9.5") is True
        assert compare_values("10", "=", "10.0") is True

    def test_string_comparison_fallback(self):
        assert compare_values("abc", "<", "abd") is True
        assert compare_values("10", "=", "ten") is False

    def test_comparison_var_var(self):
        pred = Comparison(Var("V1"), "=", Var("V2"))
        assert pred.evaluate(self._lookup(V1="91220", V2="91220"))
        assert not pred.evaluate(self._lookup(V1="91220", V2="91223"))

    def test_comparison_var_const(self):
        pred = Comparison(Var("P"), "<=", Const(100))
        assert pred.evaluate(self._lookup(P="99"))
        assert not pred.evaluate(self._lookup(P="101"))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison(Var("X"), "~", Var("Y"))

    def test_boolean_connectives(self):
        p1 = Comparison(Var("A"), "=", Const("1"))
        p2 = Comparison(Var("B"), "=", Const("2"))
        look = self._lookup(A="1", B="3")
        assert And((p1, p2)).evaluate(look) is False
        assert Or((p1, p2)).evaluate(look) is True
        assert Not(p2).evaluate(look) is True
        assert TruePredicate().evaluate(look) is True

    def test_variables_collected(self):
        pred = And((Comparison(Var("A"), "=", Var("B")),
                    Comparison(Var("C"), "<", Const(1))))
        assert pred.variables() == {"A", "B", "C"}

    def test_holds_on_binding(self):
        binding = Binding([("V1", leaf("91220")),
                           ("V2", elem("zip", "91220"))])
        assert Comparison(Var("V1"), "=", Var("V2")).holds(binding)
