"""Property-based equivalence: lazy navigation == eager evaluation.

Random plans over random source trees, materialized through the
BindingsDocument adapter, must equal the eager evaluator's output tree
-- with operator caches on and off.  Also: partial client navigations
must touch no more source than necessary (laziness), and stale node-ids
must stay valid (statelessness).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    Comparison,
    Concatenate,
    Const,
    CreateElement,
    Difference,
    Distinct,
    GetDescendants,
    GroupBy,
    Join,
    OrderBy,
    Project,
    Select,
    Source,
    Union,
    Var,
    evaluate_bindings,
)
from repro.lazy import BindingsDocument, build_lazy_plan
from repro.navigation import (
    CountingDocument,
    MaterializedDocument,
    Navigation,
    materialize,
    run_navigation,
)
from repro.runtime import ExecutionContext
from repro.xtree import Tree, leaf

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_LABELS = ["a", "b", "c"]
_DATA = ["1", "2", "3"]

_source_tree = st.recursive(
    st.sampled_from(_DATA).map(leaf),
    lambda kids: st.builds(
        Tree, st.sampled_from(_LABELS), st.lists(kids, max_size=3)),
    max_leaves=10,
).map(lambda t: Tree("src", [t]))

_paths = st.sampled_from([
    "a", "b", "_", "a.b", "_._", "a|b", "_*.b", "a*", "(a|b)._?",
    "b+", "a._*",
])


@st.composite
def _plans(draw):
    """A random well-formed plan over source 'src'."""
    plan = GetDescendants(Source("src", "R"), "R",
                          draw(_paths), "X")
    variables = ["R", "X"]
    fresh = iter("YZUVW")

    joined = [False]

    for _ in range(draw(st.integers(0, 3))):
        kind = draw(st.sampled_from(
            ["getdesc", "select", "groupby", "concat", "create",
             "orderby", "distinct", "project", "join", "union",
             "difference"]))
        if kind == "join" and not joined[0]:
            joined[0] = True
            right = Project(
                GetDescendants(Source("src", "RR"), "RR",
                               draw(_paths), "J"), ["J"])
            plan = Join(plan, right, Comparison(
                Var(draw(st.sampled_from(variables[1:]))), "=",
                Var("J")))
            variables.append("J")
            continue
        if kind in ("union", "difference"):
            keep = draw(st.sampled_from(variables[1:]))
            left = Project(plan, [keep])
            other = Project(
                GetDescendants(Source("src", "R"), "R",
                               draw(_paths), keep), [keep])
            plan = (Union(left, other) if kind == "union"
                    else Difference(left, other))
            variables = ["R", keep]
            continue
        if kind == "join":
            continue
        if kind == "getdesc":
            out = next(fresh)
            plan = GetDescendants(
                plan, draw(st.sampled_from(variables[1:])),
                draw(_paths), out)
            variables.append(out)
        elif kind == "select":
            var = draw(st.sampled_from(variables[1:]))
            plan = Select(plan, Comparison(
                Var(var), draw(st.sampled_from(["=", "!=", "<"])),
                Const(draw(st.sampled_from(_DATA)))))
        elif kind == "groupby":
            key = draw(st.sampled_from(variables[1:]))
            agg = draw(st.sampled_from(variables[1:]))
            out = next(fresh)
            plan = GroupBy(plan, [key], [(agg, out)])
            variables = [key, out]
        elif kind == "concat":
            chosen = draw(st.lists(
                st.sampled_from(variables[1:] if len(variables) > 1
                                else variables),
                min_size=1, max_size=2))
            out = next(fresh)
            plan = Concatenate(plan, chosen, out)
            variables.append(out)
        elif kind == "create":
            content = draw(st.sampled_from(variables[1:]))
            out = next(fresh)
            plan = CreateElement(plan, "made", content, out)
            variables.append(out)
        elif kind == "orderby":
            plan = OrderBy(plan, [draw(st.sampled_from(variables[1:]))])
        elif kind == "distinct":
            keep = draw(st.sampled_from(variables[1:]))
            plan = Distinct(Project(plan, [keep]))
            variables = [keep]
        elif kind == "project":
            keep = draw(st.lists(st.sampled_from(variables[1:]),
                                 min_size=1, max_size=2, unique=True))
            plan = Project(plan, keep)
            variables = list(keep)
        if len(variables) < 2:
            variables = ["R"] + variables  # keep draw domains non-empty
    return plan


@settings(max_examples=150, deadline=None)
@given(tree=_source_tree, plan=_plans())
def test_lazy_equals_eager_with_cache(tree, plan):
    expected = evaluate_bindings(plan, {"src": tree}).to_tree()
    lazy = build_lazy_plan(plan, {"src": MaterializedDocument(tree)})
    assert materialize(BindingsDocument(lazy)) == expected


@settings(max_examples=75, deadline=None)
@given(tree=_source_tree, plan=_plans())
def test_lazy_equals_eager_without_cache(tree, plan):
    expected = evaluate_bindings(plan, {"src": tree}).to_tree()
    lazy = build_lazy_plan(plan, {"src": MaterializedDocument(tree)},
                           ExecutionContext.create(cache_enabled=False))
    assert materialize(BindingsDocument(lazy)) == expected


@settings(max_examples=75, deadline=None)
@given(tree=_source_tree, plan=_plans(), data=st.data())
def test_partial_navigation_agrees_with_materialized_answer(
        tree, plan, data):
    """Any client navigation on the virtual bs-tree returns exactly the
    labels the same navigation returns on the materialized answer."""
    commands = data.draw(st.lists(
        st.sampled_from(["d", "r", "f"]), max_size=12))
    nav = Navigation.parse(";".join(commands))

    eager_tree = evaluate_bindings(plan, {"src": tree}).to_tree()
    eager_doc = MaterializedDocument(eager_tree)
    expected = run_navigation(eager_doc, nav)

    lazy = build_lazy_plan(plan, {"src": MaterializedDocument(tree)})
    actual = run_navigation(BindingsDocument(lazy), nav)

    assert actual.labels == expected.labels
    # None-ness of pointers must coincide step by step.
    assert [p is None for p in actual.pointers] \
        == [p is None for p in expected.pointers]


@settings(max_examples=50, deadline=None)
@given(tree=_source_tree, plan=_plans())
def test_stale_node_ids_remain_valid(tree, plan):
    """Navigate everything, then re-issue navigation from the first
    binding id: results must be identical (ids encode associations)."""
    lazy = build_lazy_plan(plan, {"src": MaterializedDocument(tree)})
    first = lazy.first_binding()
    if first is None:
        return
    chain1 = []
    b = first
    while b is not None and len(chain1) < 20:
        chain1.append(b)
        b = lazy.next_binding(b)
    # Re-walk from the stale first id.
    chain2 = []
    b = first
    while b is not None and len(chain2) < 20:
        chain2.append(b)
        b = lazy.next_binding(b)
    assert chain1 == chain2


@settings(max_examples=50, deadline=None)
@given(tree=_source_tree)
def test_root_handle_is_free(tree):
    """Obtaining the bs root and first-variable structure must not
    navigate the source at all until values are touched."""
    counter = CountingDocument(MaterializedDocument(tree))
    plan = GetDescendants(Source("src", "R"), "R", "a.b", "X")
    lazy = build_lazy_plan(plan, {"src": counter})
    doc = BindingsDocument(lazy)
    root = doc.root()
    assert counter.total == 0
    assert doc.fetch(root) == "bs"
    assert counter.total == 0


class TestLaziness:
    """Quantified laziness on a structured example."""

    def _setup(self, n=50):
        kids = [Tree("a", [Tree("b", [leaf(str(i))])])
                for i in range(n)]
        tree = Tree("src", [Tree("r", kids)])
        counter = CountingDocument(MaterializedDocument(tree))
        plan = GetDescendants(
            GetDescendants(Source("src", "R"), "R", "r.a.b", "X"),
            "X", "_", "V")
        lazy = build_lazy_plan(plan, {"src": counter})
        return lazy, counter, n

    def test_first_binding_touches_prefix_only(self):
        lazy, counter, n = self._setup()
        lazy.first_binding()
        # Finding the first match requires a constant-size prefix.
        assert counter.total < 15

    def test_cost_scales_with_bindings_consumed(self):
        lazy, counter, n = self._setup()
        b = lazy.first_binding()
        cost_1 = counter.total
        for _ in range(9):
            b = lazy.next_binding(b)
        cost_10 = counter.total
        assert cost_10 < cost_1 * 30
        # Consuming 10 of 50 bindings must not have scanned everything:
        lazy2, counter2, _ = self._setup()
        materialize(BindingsDocument(lazy2))
        assert cost_10 < counter2.total / 2


@settings(max_examples=75, deadline=None)
@given(tree=_source_tree, plan=_plans())
def test_lazy_equals_eager_with_sigma(tree, plan):
    """The select(sigma) optimization must not change results."""
    expected = evaluate_bindings(plan, {"src": tree}).to_tree()
    lazy = build_lazy_plan(plan, {"src": MaterializedDocument(tree)},
                           ExecutionContext.create(use_sigma=True))
    assert materialize(BindingsDocument(lazy)) == expected


class TestSigmaBoundedness:
    """Example 1's remark: with select(sigma) in NC, the label-filter
    view becomes bounded browsable."""

    def _cost_of_first(self, n, use_sigma):
        kids = [Tree("miss", [leaf(str(i))]) for i in range(n - 1)]
        kids.append(Tree("hit", [leaf("x")]))
        tree = Tree("src", [Tree("r", kids)])
        counter = CountingDocument(MaterializedDocument(tree))
        plan = GetDescendants(
            GetDescendants(Source("src", "R"), "R", "r", "L"),
            "L", "hit", "X")
        lazy = build_lazy_plan(plan, {"src": counter},
                               ExecutionContext.create(use_sigma=use_sigma))
        lazy.first_binding()
        return counter.total

    def test_sigma_makes_late_hit_constant_cost(self):
        without_small = self._cost_of_first(8, use_sigma=False)
        without_large = self._cost_of_first(256, use_sigma=False)
        with_small = self._cost_of_first(8, use_sigma=True)
        with_large = self._cost_of_first(256, use_sigma=True)
        # Scanning grows with the source; sigma stays flat.
        assert without_large > without_small * 8
        assert with_large == with_small

    def test_sigma_cost_is_small_constant(self):
        assert self._cost_of_first(256, use_sigma=True) < 12


@settings(max_examples=60, deadline=None)
@given(tree=_source_tree, plan=_plans(),
       cache=st.booleans(), sigma=st.booleans())
def test_lazy_equals_eager_under_all_flag_combinations(
        tree, plan, cache, sigma):
    """cache x sigma: no configuration may change results."""
    expected = evaluate_bindings(plan, {"src": tree}).to_tree()
    lazy = build_lazy_plan(
        plan, {"src": MaterializedDocument(tree)},
        ExecutionContext.create(cache_enabled=cache, use_sigma=sigma))
    assert materialize(BindingsDocument(lazy)) == expected


@settings(max_examples=40, deadline=None)
@given(tree=_source_tree, plan=_plans(), data=st.data())
def test_interleaved_navigation_from_multiple_pointers(
        tree, plan, data):
    """Definition 1's key difference from cursors: navigation resumes
    from arbitrary previously issued pointers, interleaved."""
    lazy = build_lazy_plan(plan, {"src": MaterializedDocument(tree)})
    doc = BindingsDocument(lazy)
    eager_doc = MaterializedDocument(
        evaluate_bindings(plan, {"src": tree}).to_tree())

    pointers = [doc.root()]
    reference = [eager_doc.root()]
    for _ in range(data.draw(st.integers(0, 15))):
        index = data.draw(st.integers(0, len(pointers) - 1))
        command = data.draw(st.sampled_from(["d", "r", "f"]))
        if pointers[index] is None:
            continue
        if command == "f":
            assert doc.fetch(pointers[index]) == \
                eager_doc.fetch(reference[index])
            continue
        move = doc.down if command == "d" else doc.right
        ref_move = (eager_doc.down if command == "d"
                    else eager_doc.right)
        new_pointer = move(pointers[index])
        new_reference = ref_move(reference[index])
        assert (new_pointer is None) == (new_reference is None)
        if new_pointer is not None:
            pointers.append(new_pointer)
            reference.append(new_reference)
