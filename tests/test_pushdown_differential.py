"""Differential proof for source-native pushdown (PR 6).

The pushdown compiler's contract is *observational equivalence*: with
``EngineConfig(pushdown=True)`` every answer must be byte-identical to
the lazy navigation-driven reference run, only the source-side cost
may change.  This suite checks the contract three ways:

* the E4 workload (selective view over a relational source) and the
  E6 workload (Example 8's pair document under a groupBy plan),
* the full heterogeneous stack (XML + relational + OODB + web) on a
  three-way join,
* randomized plans (hypothesis, reusing the strategies of the lazy
  equivalence suite) against both the un-pushed run and the eager
  oracle,

and proves the *default* path is untouched: with ``pushdown`` off (the
default) no pushdown event is ever emitted, ``stats()`` has no
pushdown section, and the executed plan is the prepared plan itself --
the golden navigation traces of ``tests/golden/`` therefore keep
covering the default path byte-for-byte.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    Comparison,
    GetDescendants,
    GroupBy,
    Source,
    Var,
    evaluate_bindings,
)
from repro.bench import book_catalog
from repro.lazy import BindingsDocument, build_lazy_plan
from repro.mediator import MIXMediator
from repro.navigation import materialize
from repro.oodb import ObjectStore
from repro.pushdown.compiler import compile_pushdown
from repro.relational import Connection, Database
from repro.runtime import EngineConfig, ExecutionContext, Tracer
from repro.webstore import HttpSimulator, make_catalog_site
from repro.wrappers import (
    OODBLXPWrapper,
    RelationalLXPWrapper,
    WebLXPWrapper,
    XMLFileWrapper,
)
from repro.wrappers.base import buffered
from repro.xtree import Tree, elem, to_xml

from .test_lazy_equivalence import _plans, _source_tree

WALKS = int(os.environ.get("DIFF_WALKS", "25"))


# ----------------------------------------------------------------------
# Workload fixtures
# ----------------------------------------------------------------------

def _items_database(rows=200):
    """The E4 workload: a selective view over ``bigdb.items``."""
    db = Database("bigdb")
    table = db.create_table("items", [("name", "str"), ("qty", "int")])
    table.insert_many([("item%d" % i, i % 97) for i in range(rows)])
    return db


E4_QUERY = ("CONSTRUCT <hits> $N {$N} </hits> {} "
            "WHERE bigdb items._ $R AND $R name._ $N "
            "AND $R qty._ $Q AND $Q = 42")


def _e4_mediator(pushdown, tracer=None):
    med = MIXMediator(EngineConfig(pushdown=pushdown), tracer=tracer)
    med.register_wrapper(
        "bigdb", RelationalLXPWrapper(Connection(_items_database()),
                                      chunk_size=20))
    return med


# The E6 instance (Example 8's pair document) under its groupBy plan.
EXAMPLE8_DOC = Tree("bsrc", [Tree("pairs", [
    elem("p", elem("h", "home1"), elem("s", "school1")),
    elem("p", elem("h", "home1"), elem("s", "school2")),
    elem("p", elem("h", "home2"), elem("s", "school3")),
    elem("p", elem("h", "home1"), elem("s", "school4")),
    elem("p", elem("h", "home3"), elem("s", "school5")),
])])


def _e6_plan():
    base = GetDescendants(Source("bsrc", "root"), "root", "pairs.p",
                          "P")
    bindings = GetDescendants(GetDescendants(base, "P", "h", "H"),
                              "P", "s", "S")
    return GroupBy(bindings, ["H"], [("S", "LSs")])


def _full_stack_mediator(pushdown, tracer=None):
    """XML + relational + OODB + web, all four wrapper families."""
    med = MIXMediator(EngineConfig(pushdown=pushdown), tracer=tracer)
    med.register_wrapper("homesSrc", XMLFileWrapper("homesSrc", """
        <homes>
          <home><addr>La Jolla</addr><zip>91220</zip></home>
          <home><addr>El Cajon</addr><zip>91223</zip></home>
        </homes>"""))
    db = Database("schooldb")
    table = db.create_table("schools", [("dir", "str"), ("zip", "str")])
    table.insert_many([("Smith", "91220"), ("Bar", "91220"),
                       ("Hart", "91223")])
    med.register_wrapper("schooldb",
                         RelationalLXPWrapper(Connection(db),
                                              chunk_size=2))
    store = ObjectStore("inspections")
    store.define_class("Inspection", ["director", "grade"])
    store.create("Inspection", director="Smith", grade="A")
    store.create("Inspection", director="Hart", grade="B")
    med.register_wrapper("inspections", OODBLXPWrapper(store))
    books = book_catalog("amazon", 30, seed=5)
    site = make_catalog_site("amazon", books, page_size=10)
    med.register_wrapper("amazon",
                         WebLXPWrapper(HttpSimulator(site)))
    return med


THREE_WAY_QUERY = """
CONSTRUCT <report>
            <entry> $H $D $G {$G} </entry> {$H, $D}
          </report> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schooldb schools._ $S AND $S zip._ $V2 AND $S dir._ $D
  AND inspections Inspection.object $I AND $I director._ $D2
  AND $I grade $G AND $V1 = $V2 AND $D = $D2
"""

WEB_QUERY = ("CONSTRUCT <titles> $T {$T} </titles> {} "
             "WHERE amazon book.title._ $T")


# ----------------------------------------------------------------------
# E4 / E6 workloads: byte-identical answers, collapsed navigation
# ----------------------------------------------------------------------

class TestWorkloads:
    def test_e4_answers_byte_identical(self):
        off = _e4_mediator(False).prepare(E4_QUERY).materialize()
        on = _e4_mediator(True).prepare(E4_QUERY).materialize()
        assert to_xml(on) == to_xml(off)

    def test_e4_source_navigation_collapses(self):
        med_off = _e4_mediator(False)
        med_off.prepare(E4_QUERY).materialize()
        navs_off = med_off.total_source_navigations()
        med_on = _e4_mediator(True)
        result = med_on.prepare(E4_QUERY)
        result.materialize()
        navs_on = med_on.total_source_navigations()
        assert navs_off >= 10 * max(navs_on, 1)
        [decision] = result.pushdown_decisions
        assert decision.pushed and decision.url == "bigdb"
        assert "WHERE qty = 42" in decision.detail

    def test_e4_decisions_surface_in_stats_and_explain(self):
        result = _e4_mediator(True).prepare(E4_QUERY)
        report = result.stats()
        assert report["pushdown"]["pushed"] == 1
        [entry] = report["pushdown"]["decisions"]
        assert entry["url"] == "bigdb" and entry["pushed"]
        assert "pushed bigdb" in result.explain()

    def test_e6_plan_byte_identical(self):
        plan = _e6_plan()
        expected = evaluate_bindings(
            plan, {"bsrc": EXAMPLE8_DOC}).to_tree()
        for pushdown in (False, True):
            context = ExecutionContext.create(
                EngineConfig(pushdown=pushdown))
            # The wrapper wraps its document into the exported
            # document node itself, so hand it the root element:
            # the export is then exactly EXAMPLE8_DOC.
            wrapper = XMLFileWrapper("bsrc", EXAMPLE8_DOC.child(0))
            executed = plan
            if pushdown:
                executed, decisions = compile_pushdown(
                    plan, {"bsrc": wrapper}, context)
                assert any(d.pushed for d in decisions)
            lazy = build_lazy_plan(executed, {"bsrc": buffered(wrapper)},
                                   context)
            try:
                assert materialize(BindingsDocument(lazy)) == expected
            finally:
                context.close()


# ----------------------------------------------------------------------
# The heterogeneous stack: every wrapper family negotiates
# ----------------------------------------------------------------------

class TestFullStack:
    def test_three_way_join_byte_identical(self):
        off = _full_stack_mediator(False).prepare(
            THREE_WAY_QUERY).materialize()
        on_result = _full_stack_mediator(True).prepare(THREE_WAY_QUERY)
        assert to_xml(on_result.materialize()) == to_xml(off)
        pushed = {d.url for d in on_result.pushdown_decisions
                  if d.pushed}
        # All three chain-rooted sources of the join pushed natively.
        assert {"homesSrc", "schooldb", "inspections"} <= pushed

    def test_web_listing_byte_identical(self):
        off = _full_stack_mediator(False).prepare(
            WEB_QUERY).materialize()
        on_result = _full_stack_mediator(True).prepare(WEB_QUERY)
        assert to_xml(on_result.materialize()) == to_xml(off)
        [decision] = on_result.pushdown_decisions
        assert decision.pushed and decision.url == "amazon"

    def test_web_page_dialogue_collapses(self):
        med_off = _full_stack_mediator(False)
        med_off.prepare(WEB_QUERY).materialize()
        navs_off = med_off.total_source_navigations()
        med_on = _full_stack_mediator(True)
        med_on.prepare(WEB_QUERY).materialize()
        navs_on = med_on.total_source_navigations()
        assert navs_off >= 10 * max(navs_on, 1)


# ----------------------------------------------------------------------
# Randomized plans: pushdown-on == pushdown-off == eager oracle
# ----------------------------------------------------------------------

def _materialized(plan, tree, pushdown):
    context = ExecutionContext.create(EngineConfig(pushdown=pushdown))
    # ``tree`` is Tree("src", [element]); the wrapper adds the
    # document node itself, so its export equals ``tree`` exactly.
    wrapper = XMLFileWrapper("src", tree.child(0))
    executed = plan
    if pushdown:
        executed, _ = compile_pushdown(plan, {"src": wrapper}, context)
    lazy = build_lazy_plan(executed, {"src": buffered(wrapper)},
                           context)
    try:
        return materialize(BindingsDocument(lazy))
    finally:
        context.close()


@settings(max_examples=WALKS, deadline=None)
@given(tree=_source_tree, plan=_plans())
def test_random_plans_pushdown_is_observationally_silent(tree, plan):
    oracle = evaluate_bindings(plan, {"src": tree}).to_tree()
    off = _materialized(plan, tree, pushdown=False)
    on = _materialized(plan, tree, pushdown=True)
    assert off == oracle
    assert on == oracle


# ----------------------------------------------------------------------
# The default path is untouched
# ----------------------------------------------------------------------

class TestDefaultPathUnchanged:
    def test_pushdown_defaults_off(self):
        assert EngineConfig().pushdown is False

    def test_no_pushdown_events_or_stats_by_default(self):
        tracer = Tracer(record=True)
        med = _full_stack_mediator(False, tracer=tracer)
        result = med.prepare(THREE_WAY_QUERY)
        result.materialize()
        assert all(e.layer != "pushdown" for e in tracer.events)
        assert "pushdown" not in result.stats()
        assert "pushdown:" not in result.explain()
        assert result.pushdown_decisions == ()

    def test_executed_plan_is_prepared_plan_by_default(self):
        result = _e4_mediator(False).prepare(E4_QUERY)
        assert result.executed_plan is result.plan
