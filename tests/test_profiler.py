"""Tests for the empirical browsability profiler.

Acceptance anchor: on the paper's three canonical views (Example 1 /
E2: concatenation, label filter, reorder) the profiler's sweep verdict
must agree with both the meter-based empirical classification and the
static plan analyzer.
"""

import pytest

from repro.algebra import (
    GetDescendants,
    OrderBy,
    Project,
    Source,
    Union,
)
from repro.lazy import BindingsDocument, build_lazy_plan
from repro.mediator import MIXMediator
from repro.navigation import (
    Browsability,
    MaterializedDocument,
    Navigation,
    NavigationProfile,
    classify,
    expected_verdict,
    profile_classify,
    profiled_cost,
)
from repro.rewriter import classify_plan
from repro.runtime import EngineConfig, Tracer
from repro.testing import FakeClock
from repro.xtree import Tree, elem

from .fixtures import fig4_plan, homes_source, schools_source


# -- the three E2 views (Example 1) ------------------------------------

def _concat_plan():
    left = Project(GetDescendants(Source("src0", "R1"), "R1", "_", "X"),
                   ["X"])
    right = Project(GetDescendants(Source("src1", "R2"), "R2", "_", "X"),
                    ["X"])
    return Union(left, right)


def _filter_plan():
    return Project(GetDescendants(Source("src0", "R1"), "R1", "hit",
                                  "X"), ["X"])


def _sort_plan():
    base = GetDescendants(
        GetDescendants(Source("src0", "R1"), "R1", "_", "X"),
        "X", "_", "V")
    return OrderBy(Project(base, ["X", "V"]), ["V"])


def _view_factory(plan):
    def factory(source_docs):
        documents = {"src%d" % i: doc
                     for i, doc in enumerate(source_docs)}
        return BindingsDocument(build_lazy_plan(plan, documents))

    return factory


def _early(n):
    kids = [elem("hit", "000")] + [elem("miss", "%03d" % i)
                                   for i in range(n - 1)]
    return [Tree("src", kids), Tree("src", kids)]


def _late(n):
    kids = [elem("miss", "%03d" % i) for i in range(n - 1)]
    kids.append(elem("hit", "000"))
    return [Tree("src", kids), Tree("src", kids)]


NAV = Navigation.parse("d;f;d@1;f;d@2;f")

CASES = [
    ("q_conc", _concat_plan, Browsability.BOUNDED),
    ("q_sigma", _filter_plan, Browsability.BROWSABLE),
    ("q_sort", _sort_plan, Browsability.UNBROWSABLE),
]


class TestProfileClassify:
    @pytest.mark.parametrize("name,builder,expected", CASES,
                             ids=[c[0] for c in CASES])
    def test_sweep_matches_static_and_empirical(self, name, builder,
                                                expected):
        report = profile_classify(_view_factory(builder()),
                                  _early, _late, NAV)
        assert report.classification is expected, report.summary()
        assert report.classification is classify_plan(builder())
        assert expected_verdict(report.classification) \
            == expected_verdict(expected)

    @pytest.mark.parametrize("name,builder,expected", CASES,
                             ids=[c[0] for c in CASES])
    def test_trace_cost_equals_meter_cost(self, name, builder,
                                          expected):
        # The sweep's cost curves must be identical to the
        # meter-based classifier's: same views, same families, same
        # navigation, cost read off the trace instead of the meters.
        metered = classify(_view_factory(builder()), _early, _late,
                           NAV)
        traced = profile_classify(_view_factory(builder()),
                                  _early, _late, NAV)
        assert traced.early.costs == metered.early.costs
        assert traced.late.costs == metered.late.costs

    def test_verdict_mapping(self):
        assert expected_verdict(Browsability.BOUNDED) == "bounded"
        assert expected_verdict(Browsability.BROWSABLE) == "growing"
        assert expected_verdict(Browsability.UNBROWSABLE) \
            == "unbounded-suspect"

    def test_profiled_cost_counts_source_commands(self):
        cost = profiled_cost(_view_factory(_filter_plan()),
                             _early(8), NAV)
        assert cost > 0

    def test_fig4_join_view_matches_static_classification(self):
        """Acceptance: on the Fig. 5/9/10 join view (the fig4 plan)
        the profiler's verdict agrees with the static classifier --
        finding the first ``med_home`` is cheap when the join partner
        sits early in the schools list and data-dependent when it
        sits late, i.e. browsable."""
        from repro.lazy import build_virtual_document

        def view(source_docs):
            docs = {"homesSrc": source_docs[0],
                    "schoolsSrc": source_docs[1]}
            return build_virtual_document(fig4_plan(),
                                          lambda url: docs[url])

        def family(match_pos):
            def make(n):
                homes = Tree("homesSrc", [Tree("homes", [
                    elem("home", elem("addr", "a0"),
                         elem("zip", "Z"))])])
                fillers = [elem("school", elem("dir", "d%d" % i),
                                elem("zip", "X%d" % i))
                           for i in range(n - 1)]
                hit = elem("school", elem("dir", "hit"),
                           elem("zip", "Z"))
                kids = ([hit] + fillers if match_pos == "early"
                        else fillers + [hit])
                return [homes,
                        Tree("schoolsSrc", [Tree("schools", kids)])]
            return make

        nav = Navigation.parse("d;f")
        report = profile_classify(view, family("early"),
                                  family("late"), nav)
        static = classify_plan(fig4_plan())
        assert report.classification is static
        assert report.classification is Browsability.BROWSABLE
        assert expected_verdict(report.classification) == "growing"


class TestNavigationProfile:
    def _observed_run(self, fanout_workers=0):
        tracer = Tracer(record=True, clock=FakeClock())
        config = EngineConfig(observe_operators=True,
                              fanout_workers=fanout_workers)
        med = MIXMediator(config, tracer=tracer)
        med.register_source("homesSrc",
                            MaterializedDocument(homes_source()))
        med.register_source("schoolsSrc",
                            MaterializedDocument(schools_source()))
        result = med.prepare(fig4_plan())
        result.materialize()
        return med, tracer

    def test_from_events_fig4(self):
        med, tracer = self._observed_run()
        profile = NavigationProfile.from_events(tracer.events)
        assert profile.orphan_spans == 0
        assert profile.client_navigations > 0
        assert profile.source_commands \
            == med.total_source_navigations()
        assert len(profile.per_navigation) \
            == profile.client_navigations
        assert sum(profile.per_navigation) == profile.source_commands
        assert profile.amplification > 0
        # the plan's operators show up under their minted names
        assert any(name.startswith("Join#")
                   for name in profile.operators)
        join = next(p for name, p in profile.operators.items()
                    if name.startswith("Join#"))
        assert join.calls > 0
        assert join.source_commands > 0

    def test_profile_connected_under_fanout(self):
        med, tracer = self._observed_run(fanout_workers=2)
        profile = NavigationProfile.from_events(tracer.events)
        assert profile.orphan_spans == 0
        assert profile.source_commands \
            == med.total_source_navigations()

    def test_summary_renders(self):
        _, tracer = self._observed_run()
        profile = NavigationProfile.from_events(tracer.events)
        text = profile.summary()
        assert "client navigations:" in text
        assert "verdict:" in text
        assert "per-operator:" in text

    def test_heuristic_verdicts(self):
        flat = NavigationProfile(client_navigations=5,
                                 per_navigation=[2, 2, 2, 2, 2],
                                 source_commands=10)
        assert flat.verdict() == "bounded"
        spike = NavigationProfile(client_navigations=4,
                                  per_navigation=[1, 1, 500, 1],
                                  source_commands=503)
        assert spike.verdict() == "unbounded-suspect"
        ramp = NavigationProfile(client_navigations=5,
                                 per_navigation=[2, 4, 6, 8, 10],
                                 source_commands=30)
        assert ramp.verdict() == "growing"
        empty = NavigationProfile()
        assert empty.verdict() == "bounded"


class TestQueryResultProfile:
    def _mediator(self):
        med = MIXMediator(tracer=Tracer(clock=FakeClock()))
        med.register_source("homesSrc",
                            MaterializedDocument(homes_source()))
        med.register_source("schoolsSrc",
                            MaterializedDocument(schools_source()))
        return med

    def test_profile_method(self):
        med = self._mediator()
        result = med.prepare(fig4_plan())
        profile = result.profile()
        assert profile.client_navigations > 0
        assert profile.source_commands > 0
        assert profile.orphan_spans == 0

    def test_profile_does_not_disturb_the_query(self):
        med = self._mediator()
        result = med.prepare(fig4_plan())
        result.profile()
        # the original document still answers correctly
        from .fixtures import expected_fig4_answer
        assert result.materialize() == expected_fig4_answer()

    def test_explain_analyze_appends_profile(self):
        med = self._mediator()
        result = med.prepare(fig4_plan())
        plain = result.explain()
        analyzed = result.explain(analyze=True)
        assert "browsability profile (observed)" not in plain
        assert "browsability profile (observed):" in analyzed
        assert "amplification:" in analyzed
        assert "verdict:" in analyzed
