"""Tests for the source wrappers (relational, web, OODB, XML file)."""

import pytest

from repro.buffer import (
    BufferComponent,
    FragElem,
    FragHole,
    LXPProtocolError,
    validate_fill_reply,
)
from repro.navigation import materialize
from repro.oodb import ObjectStore
from repro.relational import Connection, Database
from repro.webstore import HttpSimulator, make_catalog_site
from repro.wrappers import (
    OODBLXPWrapper,
    RelationalLXPWrapper,
    WebLXPWrapper,
    XMLFileWrapper,
    buffered,
    buffered_counting,
    document_node,
)
from repro.xtree import Tree, elem


@pytest.fixture
def homes_db():
    db = Database("homesdb")
    table = db.create_table("homes", [("addr", "str"), ("zip", "int")])
    table.insert_many([("A St", 91220), ("B St", 91221),
                       ("C St", 91222), ("D St", 91223),
                       ("E St", 91224)])
    return db


class TestRelationalWrapper:
    def test_paper_hole_id_scheme(self, homes_db):
        wrapper = RelationalLXPWrapper(Connection(homes_db),
                                       chunk_size=2)
        assert wrapper.get_root() == FragHole("homesdb")
        (db_elem,) = wrapper.fill("homesdb")
        assert db_elem.label == "homesdb"
        (table_elem,) = db_elem.children
        assert table_elem.label == "homes"
        assert table_elem.children == (FragHole("homesdb.homes"),)

    def test_table_level_chunks(self, homes_db):
        wrapper = RelationalLXPWrapper(Connection(homesdb := homes_db),
                                       chunk_size=2)
        reply = wrapper.fill("homesdb.homes")
        assert [f.label for f in reply[:-1]] == ["row1", "row2"]
        assert reply[-1] == FragHole("homesdb.homes.2")

    def test_row_level_continuation(self, homes_db):
        wrapper = RelationalLXPWrapper(Connection(homes_db),
                                       chunk_size=2)
        wrapper.fill("homesdb.homes")
        reply = wrapper.fill("homesdb.homes.2")
        assert [f.label for f in reply[:-1]] == ["row3", "row4"]
        reply = wrapper.fill("homesdb.homes.4")
        assert [f.label for f in reply] == ["row5"]  # no trailing hole

    def test_rows_ship_complete_tuples(self, homes_db):
        wrapper = RelationalLXPWrapper(Connection(homes_db),
                                       chunk_size=1)
        row = wrapper.fill("homesdb.homes")[0]
        assert [a.label for a in row.children] == ["addr", "zip"]
        assert row.children[0].children[0].label == "A St"

    def test_continuing_fill_reuses_cursor(self, homes_db):
        conn = Connection(homes_db)
        wrapper = RelationalLXPWrapper(conn, chunk_size=2)
        wrapper.fill("homesdb.homes")
        wrapper.fill("homesdb.homes.2")
        wrapper.fill("homesdb.homes.4")
        # One SELECT served all three forward fills.
        assert conn.statements_executed == 1

    def test_random_access_reopens_cursor(self, homes_db):
        conn = Connection(homes_db)
        wrapper = RelationalLXPWrapper(conn, chunk_size=2)
        wrapper.fill("homesdb.homes.4")
        wrapper.fill("homesdb.homes")
        assert conn.statements_executed == 2

    def test_full_view_through_buffer(self, homes_db):
        doc = buffered(RelationalLXPWrapper(Connection(homes_db),
                                            chunk_size=2))
        tree = materialize(doc)
        assert tree.label == "homesdb"
        rows = tree.child(0).children
        assert len(rows) == 5
        assert rows[4].find_child("addr").text() == "E St"

    def test_foreign_hole_rejected(self, homes_db):
        wrapper = RelationalLXPWrapper(Connection(homes_db))
        with pytest.raises(LXPProtocolError):
            wrapper.fill("otherdb.t")

    def test_replies_validate(self, homes_db):
        wrapper = RelationalLXPWrapper(Connection(homes_db),
                                       chunk_size=2)
        validate_fill_reply(wrapper.fill("homesdb"))
        validate_fill_reply(wrapper.fill("homesdb.homes"))


class TestWebWrapper:
    def _site(self, n=25, page_size=10):
        items = [elem("book", elem("title", "B%d" % i))
                 for i in range(n)]
        return HttpSimulator(make_catalog_site("amazon", items,
                                               page_size=page_size))

    def test_root_is_whole_listing(self):
        http = self._site()
        doc = buffered(WebLXPWrapper(http))
        tree = materialize(doc)
        assert tree.label == "amazon"
        assert len(tree.children) == 25
        assert http.stats.requests == 3

    def test_pages_fetched_on_demand(self):
        http = self._site()
        doc = buffered(WebLXPWrapper(http))
        node = doc.down(doc.root())
        for _ in range(9):
            node = doc.right(node)
        assert http.stats.requests == 1  # still inside page one
        doc.right(node)
        assert http.stats.requests == 2  # stepped onto page two

    def test_next_links_not_exported(self):
        http = self._site(n=15, page_size=10)
        tree = materialize(buffered(WebLXPWrapper(http)))
        assert all(c.label == "book" for c in tree.children)

    def test_replies_validate(self):
        http = self._site()
        wrapper = WebLXPWrapper(http)
        reply = wrapper.fill(wrapper.get_root().hole_id)
        validate_fill_reply(reply)

    def test_bad_hole_rejected(self):
        wrapper = WebLXPWrapper(self._site())
        with pytest.raises(LXPProtocolError):
            wrapper.fill(("nope", "x", False))


class TestOODBWrapper:
    def _store(self):
        store = ObjectStore("uni")
        store.define_class("Dept", ["name"])
        store.define_class("Emp", ["name", "dept", "skills"])
        cs = store.create("Dept", name="CS")
        store.create("Emp", name="Ann", dept=cs, skills=["db", "ir"])
        store.create("Emp", name="Bob", dept=cs)
        return store

    def test_export_shape(self):
        tree = materialize(buffered(OODBLXPWrapper(self._store())))
        assert tree.label == "uni"
        assert [c.label for c in tree.children] == ["Dept", "Emp"]
        ann = tree.child(1).child(0)
        assert ann.label == "object"
        assert ann.find_child("name").text() == "Ann"

    def test_references_become_ref_oids(self):
        tree = materialize(buffered(OODBLXPWrapper(self._store())))
        ann = tree.child(1).child(0)
        ref = ann.find_child("dept").child(0)
        assert ref.label == "ref"
        assert ref.text().startswith("uni:dept")

    def test_list_attributes_fan_out(self):
        tree = materialize(buffered(OODBLXPWrapper(self._store())))
        ann = tree.child(1).child(0)
        skills = ann.find_child("skills")
        assert [c.label for c in skills.children] == ["db", "ir"]

    def test_missing_attribute_is_empty_element(self):
        tree = materialize(buffered(OODBLXPWrapper(self._store())))
        bob = tree.child(1).child(1)
        assert bob.find_child("skills").is_leaf

    def test_extent_chunking(self):
        store = ObjectStore("big")
        store.define_class("Item", ["n"])
        for i in range(7):
            store.create("Item", n=str(i))
        wrapper = OODBLXPWrapper(store, chunk_size=3)
        reply = wrapper.fill(("extent", "Item", 0))
        assert len(reply) == 4  # 3 objects + hole
        assert reply[-1] == FragHole(("extent", "Item", 3))
        tree = materialize(buffered(OODBLXPWrapper(store,
                                                   chunk_size=3)))
        assert len(tree.child(0).children) == 7


class TestXMLFileWrapper:
    def test_parses_and_wraps_in_document_node(self):
        wrapper = XMLFileWrapper(
            "homesSrc", "<homes><home><zip>1</zip></home></homes>")
        tree = materialize(buffered(wrapper))
        assert tree.label == "homesSrc"
        assert tree.child(0).label == "homes"

    def test_accepts_parsed_tree(self):
        doc = elem("r", elem("a", "1"))
        tree = materialize(buffered(XMLFileWrapper("s", doc)))
        assert tree == document_node("s", doc)

    def test_buffered_counting_wires_a_meter(self):
        meter = buffered_counting(
            XMLFileWrapper("s", "<r><a>1</a></r>"), name="s")
        materialize(meter)
        assert meter.total > 0
        assert meter.name == "s"


class TestRelationalQueryWrapper:
    """Example 5 / Figure 6: the wrapper over a translated SQL query."""

    def _wrapper(self, homes_db, sql=None, chunk=2):
        from repro.wrappers import RelationalQueryWrapper
        sql = sql or "SELECT addr, zip FROM homes"
        return RelationalQueryWrapper(Connection(homes_db), sql,
                                      chunk_size=chunk)

    def test_figure6_shape(self, homes_db):
        tree = materialize(buffered(self._wrapper(homes_db)))
        assert tree.label == "view"
        assert all(t.label == "tuple" for t in tree.children)
        assert [a.label for a in tree.child(0).children] == ["addr",
                                                             "zip"]

    def test_query_result_not_base_table(self, homes_db):
        wrapper = self._wrapper(
            homes_db, "SELECT addr FROM homes WHERE zip = 91220")
        tree = materialize(buffered(wrapper))
        assert len(tree.children) == 1
        assert tree.child(0).find_child("addr").text() == "A St"

    def test_tuple_is_the_navigation_quantum(self, homes_db):
        """Example 5: after a tuple ships, attribute navigation never
        reaches the database."""
        conn = Connection(homes_db)
        from repro.wrappers import RelationalQueryWrapper
        wrapper = RelationalQueryWrapper(
            conn, "SELECT * FROM homes", chunk_size=1)
        doc = buffered(wrapper)
        first_tuple = doc.down(doc.root())
        statements = conn.statements_executed
        attr = doc.down(first_tuple)
        doc.fetch(attr)
        doc.fetch(doc.down(attr))
        doc.fetch(doc.right(attr))
        assert conn.statements_executed == statements

    def test_forward_fills_reuse_the_cursor(self, homes_db):
        conn = Connection(homes_db)
        from repro.wrappers import RelationalQueryWrapper
        wrapper = RelationalQueryWrapper(
            conn, "SELECT * FROM homes", chunk_size=2)
        materialize(buffered(wrapper))
        assert conn.statements_executed == 1

    def test_chunking_with_trailing_hole(self, homes_db):
        wrapper = self._wrapper(homes_db, chunk=2)
        (view,) = wrapper.fill(("view",))
        assert isinstance(view.children[-1], FragHole)
        more = wrapper.fill(view.children[-1].hole_id)
        assert [f.label for f in more if isinstance(f, FragElem)]

    def test_order_by_query_is_served_in_order(self, homes_db):
        wrapper = self._wrapper(
            homes_db, "SELECT addr FROM homes ORDER BY addr DESC",
            chunk=10)
        tree = materialize(buffered(wrapper))
        addresses = [t.find_child("addr").text() for t in tree.children]
        assert addresses == sorted(addresses, reverse=True)

    def test_bad_hole_rejected(self, homes_db):
        with pytest.raises(LXPProtocolError):
            self._wrapper(homes_db).fill(("bogus",))
