"""Navigation-trace conformance: golden Tracer event sequences.

The central quantity of the paper is *which source navigations a
client navigation triggers* (navigational complexity, Definition 2).
These tests replay three canonical walkthroughs and compare the full
Tracer event stream against checked-in golden files, so any operator
change that silently alters the navigation pattern fails loudly:

* ``fig5``  -- the running example (Fig. 4/5): a client materializes
  the whole virtual ``answer`` over the homes/schools sources; the
  golden trace is the exact source-command sequence.
* ``fig9``  -- the laziness walkthrough (Fig. 9): the client touches
  only the root handle and the first ``med_home``; the golden trace
  proves the constant-size prefix property.
* ``fig10`` -- the mediator/client split (Fig. 10 / Section 5): a
  remote forward scan, traced at the channel layer -- once with the
  plain one-fill-per-round-trip protocol and once with batched
  navigation (LXP pipelining), locking the batched framing down to
  the exact round-trip sequence.

Regenerate after an *intentional* change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_trace_conformance.py
"""

import os
import pathlib

import pytest

from repro.mediator import MIXMediator
from repro.navigation import MaterializedDocument
from repro.runtime import EngineConfig, Tracer

from .fixtures import fig4_plan, homes_source, schools_source

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
REGEN = os.environ.get("REGEN_GOLDEN") == "1"


def _assert_matches_golden(name: str, lines):
    """Compare ``lines`` against tests/golden/<name>.trace."""
    golden_path = GOLDEN_DIR / (name + ".trace")
    text = "\n".join(lines) + "\n"
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(text)
        return
    if not golden_path.exists():
        pytest.fail("golden file %s missing -- run with REGEN_GOLDEN=1"
                    % golden_path)
    expected = golden_path.read_text().splitlines()
    assert lines == expected, (
        "navigation trace diverged from %s -- if the change is "
        "intentional, regenerate with REGEN_GOLDEN=1" % golden_path.name)


def _event_lines(tracer, layer=None):
    events = tracer.events
    if layer is not None:
        events = [e for e in events if e.layer == layer]
    return [str(e) for e in events]


def _running_example(tracer):
    med = MIXMediator(tracer=tracer)
    med.register_source("homesSrc",
                        MaterializedDocument(homes_source()))
    med.register_source("schoolsSrc",
                        MaterializedDocument(schools_source()))
    return med


class TestRunningExampleTraces:
    def test_fig5_full_materialization_trace(self):
        tracer = Tracer(record=True)
        med = _running_example(tracer)
        result = med.prepare(fig4_plan())
        result.materialize()
        _assert_matches_golden(
            "fig5_running_example",
            _event_lines(tracer, layer="source"))

    def test_fig9_partial_exploration_trace(self):
        tracer = Tracer(record=True)
        med = _running_example(tracer)
        result = med.prepare(fig4_plan())
        root = result.root
        assert root.tag == "answer"
        first = root.first_child()
        assert first.tag == "med_home"
        home = first.first_child()
        assert home.tag == "home"
        _assert_matches_golden(
            "fig9_partial_prefix",
            _event_lines(tracer, layer="source"))

    def test_fig9_prefix_is_strictly_shorter_than_fig5(self):
        """The partial walk must cost a strict prefix of the full
        walk's budget -- the laziness claim behind Figure 9."""
        full, partial = [], []
        for record in (full, partial):
            tracer = Tracer(record=True)
            med = _running_example(tracer)
            result = med.prepare(fig4_plan())
            if record is full:
                result.materialize()
            else:
                result.root.first_child().first_child()
            record.extend(_event_lines(tracer, layer="source"))
        assert len(partial) < len(full) / 2


class TestRemoteChannelTraces:
    def _scan_remote(self, config):
        tracer = Tracer(record=True)
        med = MIXMediator(config, tracer=tracer)
        med.register_source("homesSrc",
                            MaterializedDocument(homes_source()))
        med.register_source("schoolsSrc",
                            MaterializedDocument(schools_source()))
        result = med.prepare(fig4_plan())
        root, stats = result.connect_remote(chunk_size=2, depth=2)
        labels = [[grandchild.tag for grandchild in child.children()]
                  for child in root.children()]
        return tracer, stats, labels

    def test_fig10_plain_round_trip_trace(self):
        tracer, stats, labels = self._scan_remote(EngineConfig())
        assert stats.messages == stats.commands
        _assert_matches_golden(
            "fig10_remote_plain",
            _event_lines(tracer, layer="channel"))

    def test_fig10_batched_round_trip_trace(self):
        config = EngineConfig(batch_navigations=True, prefetch=4)
        tracer, stats, labels = self._scan_remote(config)
        assert stats.messages < stats.commands
        _assert_matches_golden(
            "fig10_remote_batched",
            _event_lines(tracer, layer="channel"))

    def test_batched_scan_sees_identical_answer(self):
        _, plain_stats, plain = self._scan_remote(EngineConfig())
        _, batched_stats, batched = self._scan_remote(
            EngineConfig(batch_navigations=True, prefetch=4))
        assert plain == batched
        assert batched_stats.messages < plain_stats.messages


class TestFragmentCacheTraces:
    """The cross-session fragment cache's event stream, locked down:
    a cold session (decision, misses, stores, the completed-view
    harvest) followed by a warm session (decision, whole-view
    adoption, not a single fill)."""

    XML = ("<homes>"
           + "".join("<home><addr>a%d</addr><price>p%d</price>"
                     "</home>" % (i, i) for i in range(4))
           + "</homes>")
    QUERY = ("CONSTRUCT <hits> $A {$A} </hits> {} "
             "WHERE homesSrc homes.home.addr._ $A")

    def test_cold_then_warm_fragcache_trace(self):
        from repro.runtime.fragcache import reset_shared_store
        from repro.wrappers import XMLFileWrapper

        reset_shared_store()
        try:
            tracer = Tracer(record=True)
            for _ in range(2):  # cold, then warm over the same store
                med = MIXMediator(EngineConfig(fragment_cache=True),
                                  tracer=tracer)
                med.register_wrapper(
                    "homesSrc",
                    XMLFileWrapper("homesSrc", self.XML,
                                   chunk_size=2))
                med.prepare(self.QUERY).materialize()
            _assert_matches_golden(
                "fragcache_cold_warm",
                _event_lines(tracer, layer="fragcache"))
        finally:
            reset_shared_store()
