"""Cross-process trace propagation over LXP (the PR 9 tentpole).

The claim under test: a client session whose tracer is armed stamps
``(trace_id, parent_span_id, sampled)`` onto every request frame, the
daemon adopts it as the causal parent of its ``server.request``
spans, and :func:`~repro.runtime.observability.merge_traces` over the
two JSONL exports reconstructs ONE forest in which every piece of
server work hangs under the client navigation that caused it --
zero orphans, zero contract violations, and fill counts that
reconcile exactly between :class:`~repro.client.remote.ChannelStats`
and :class:`~repro.server.daemon.ServerStats`.

Equally load-bearing: the *default* path (idle tracer) ships no
envelope at all -- frames are byte-identical to a traceless build and
the ``uuid`` module is never even imported (proven in a subprocess,
PR 6/8 style).

The merged stream is locked down as a golden file
(``tests/golden/cross_process_merged.jsonl``); regenerate after an
intentional change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_trace_propagation.py
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import subprocess
import sys
import threading

import pytest

from repro.bench.workloads import homes_and_schools
from repro.mediator.mix import MIXMediator
from repro.navigation.materialized import MaterializedDocument
from repro.runtime.config import EngineConfig
from repro.runtime.context import ExecutionContext, Tracer
from repro.runtime.observability import (
    build_span_tree,
    contract_violations,
    load_jsonl,
    merge_traces,
    sample_trace,
)
from repro.server import MediatorServer, connect
from repro.server.wire import (
    TRACE_KEY,
    decode_trace_context,
    encode_trace_context,
    recv_frame,
    send_frame,
)
from repro.testing.faults import FakeClock

from .test_server_sessions import QUERY, wait_until

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN = GOLDEN_DIR / "cross_process_merged.jsonl"
REGEN = os.environ.get("REGEN_GOLDEN") == "1"


def _make_traced_server(n_homes=3):
    """A daemon whose mediator records a deterministic trace."""
    clock = FakeClock()
    tracer = Tracer(record=True, clock=clock)
    config = EngineConfig(serve_port=0)
    mediator = MIXMediator(config, tracer=tracer, clock=clock)
    tree = homes_and_schools(n_homes)["homesSrc"]
    mediator.register_source("homesSrc", MaterializedDocument(tree))
    server = MediatorServer(mediator, clock=clock)
    host, port = server.start()
    return server, host, port, tracer


# ----------------------------------------------------------------------
# the wire envelope
# ----------------------------------------------------------------------

class TestWireEnvelope:
    def test_roundtrip(self):
        frame = {"op": "fill", "hole": 3,
                 TRACE_KEY: encode_trace_context("t-1", 12, True)}
        context = decode_trace_context(frame)
        assert context == {"id": "t-1", "parent": 12, "sampled": True}
        assert TRACE_KEY not in frame  # popped in place

    def test_parent_may_be_none(self):
        frame = {TRACE_KEY: encode_trace_context("t-1", None, False)}
        context = decode_trace_context(frame)
        assert context == {"id": "t-1", "parent": None,
                           "sampled": False}

    def test_absent_context_is_none(self):
        assert decode_trace_context({"op": "fill"}) is None

    @pytest.mark.parametrize("bad", [
        "not-a-dict",
        {"parent": 1, "sampled": True},            # no id
        {"id": "", "parent": 1, "sampled": True},  # empty id
        {"id": 7, "parent": 1, "sampled": True},   # non-string id
        {"id": "t", "parent": "x", "sampled": True},
        {"id": "t", "parent": True, "sampled": True},  # bool parent
        {"id": "t", "parent": 1, "sampled": "yes"},
    ])
    def test_malformed_contexts_are_dropped_not_fatal(self, bad):
        """Tolerant decoding: observability never kills a session."""
        frame = {"op": "fill", TRACE_KEY: bad}
        assert decode_trace_context(frame) is None
        assert TRACE_KEY not in frame

    def test_sampled_defaults_true(self):
        frame = {TRACE_KEY: {"id": "t-1", "parent": None}}
        context = decode_trace_context(frame)
        assert context is not None and context["sampled"] is True


# ----------------------------------------------------------------------
# deterministic sampling
# ----------------------------------------------------------------------

class TestSampling:
    def test_rate_bounds(self):
        assert sample_trace("anything", 1.0) is True
        assert sample_trace("anything", 0.0) is False

    def test_deterministic_per_trace_id(self):
        """The same id gets the same verdict everywhere -- that is
        what lets one decision govern both processes."""
        for trace_id in ("t-%d" % i for i in range(50)):
            first = sample_trace(trace_id, 0.3)
            assert all(sample_trace(trace_id, 0.3) == first
                       for _ in range(3))

    def test_rate_is_roughly_honored(self):
        verdicts = [sample_trace("trace-%d" % i, 0.2)
                    for i in range(2000)]
        fraction = sum(verdicts) / len(verdicts)
        assert 0.1 < fraction < 0.3

    def test_monotone_in_rate(self):
        """A trace sampled at rate r stays sampled at any r' > r."""
        for i in range(100):
            trace_id = "mono-%d" % i
            if sample_trace(trace_id, 0.1):
                assert sample_trace(trace_id, 0.5)
                assert sample_trace(trace_id, 0.9)

    def test_sampled_out_tracer_goes_quiet(self):
        tracer = Tracer(record=True, trace_id="t-x")
        assert tracer.configured and tracer.active
        tracer.sampled = False
        assert tracer.configured and not tracer.active
        tracer.emit("trace", "sample", rate=0.0)
        tracer.emit("source", "d")
        with tracer.span("client", "down"):
            pass
        assert tracer.events == []

    def test_tracer_sample_applies_hash_verdict(self):
        tracer = Tracer(record=True, trace_id="t-verdict")
        verdict = tracer.sample(0.25)
        assert verdict == sample_trace("t-verdict", 0.25)
        assert tracer.sampled is verdict


# ----------------------------------------------------------------------
# the default path ships nothing
# ----------------------------------------------------------------------

class TestDefaultPathUnchanged:
    def test_untraced_channel_frames_carry_no_envelope(self):
        """With an idle tracer the request frames are byte-identical
        to a traceless build: no 'trace' key, ever."""
        from repro.server.client import SocketChannel

        left, right = socket.socketpair()
        seen = []

        def echo():
            right.settimeout(5.0)
            while True:
                frame = recv_frame(right)
                if frame is None or frame.get("op") == "close":
                    return
                seen.append(frame)
                send_frame(right, {"ok": True, "fragments": []})

        thread = threading.Thread(target=echo, daemon=True)
        thread.start()
        try:
            channel = SocketChannel(left, root_wire_id=1,
                                    timeout_ms=5000.0)
            channel.fill(1)
            channel.fill(1)
        finally:
            left.close()
            thread.join(5.0)
        assert len(seen) == 2
        for frame in seen:
            assert TRACE_KEY not in frame
            assert sorted(frame) == ["hole", "op"]

    def test_traced_channel_frames_carry_envelope(self):
        server, host, port, _ = _make_traced_server()
        try:
            tracer = Tracer(record=True, clock=FakeClock(),
                            trace_id="t-envelope")
            context = ExecutionContext(EngineConfig(), tracer=tracer)
            with connect(host, port, QUERY,
                         context=context) as session:
                session.root.first_child()
            adopted = [e for e in server.tracer.events
                       if e.layer == "trace" and e.event == "adopt"]
            assert len(adopted) == 1
            assert adopted[0].data["trace_id"] == "t-envelope"
            assert adopted[0].data["sampled"] is True
        finally:
            server.drain()

    def test_default_run_never_imports_uuid(self):
        """Subprocess proof (PR 6/8 style): a full remote session on
        a default config leaves ``uuid`` unimported -- the lazy
        import inside ``ensure_trace_id`` is the only way in."""
        script = r"""
import sys
from repro.bench.workloads import homes_and_schools
from repro.mediator.mix import MIXMediator
from repro.navigation.materialized import MaterializedDocument
from repro.runtime.config import EngineConfig
from repro.server import MediatorServer, connect

QUERY = '''
CONSTRUCT <result> <home> $A {$A} </home> {$H} </result> {}
WHERE homesSrc homes.home $H AND $H addr._ $A
'''
mediator = MIXMediator(EngineConfig(serve_port=0))
tree = homes_and_schools(3)["homesSrc"]
mediator.register_source("homesSrc", MaterializedDocument(tree))
server = MediatorServer(mediator)
host, port = server.start()
try:
    with connect(host, port, QUERY) as session:
        session.root.to_tree()
finally:
    server.drain()
assert "uuid" not in sys.modules, "default path imported uuid"
print("NO-UUID-OK")
"""
        env = dict(os.environ)
        src = str(pathlib.Path(__file__).parent.parent / "src")
        env["PYTHONPATH"] = src
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True,
                              timeout=120, env=env)
        assert proc.returncode == 0, proc.stderr
        assert "NO-UUID-OK" in proc.stdout


# ----------------------------------------------------------------------
# the merged cross-process forest
# ----------------------------------------------------------------------

def _traced_remote_run():
    """One fully traced remote session; returns everything both
    sides observed."""
    server, host, port, server_tracer = _make_traced_server()
    try:
        client_tracer = Tracer(record=True, clock=FakeClock(),
                               trace_id="t-golden")
        context = ExecutionContext(EngineConfig(),
                                   tracer=client_tracer)
        with connect(host, port, QUERY, context=context) as session:
            answer = session.root.to_tree()
            channel_stats = session.stats.snapshot()
        wait_until(lambda: server.active_sessions == 0,
                   message="session teardown")
        server_stats = server.stats.snapshot()
        server_events = list(server_tracer.events)
    finally:
        server.drain()
    return (answer, channel_stats, server_stats,
            list(client_tracer.events), server_events)


def _normalized_merge(client_events, server_events):
    merged = merge_traces(client_events, server_events)
    for record in merged:
        # The only nondeterministic payload: the ephemeral port.
        if record.layer == "server" and record.event == "listen":
            record.data["port"] = 0
    return merged


class TestCrossProcessForest:
    def test_merged_exports_form_one_rooted_forest(self):
        (answer, channel_stats, server_stats,
         client_events, server_events) = _traced_remote_run()
        assert answer.label == "result"

        merged = _normalized_merge(client_events, server_events)
        forest = build_span_tree(merged)

        # The tentpole acceptance: zero orphans, zero violations.
        assert forest.orphans == []
        assert contract_violations(merged) == []
        assert forest.roots, "no spans reconstructed at all"

        # Every adopted server.request span sits under the client
        # span that issued the request.
        adopted = [node for node in forest.spans.values()
                   if node.layer == "server"
                   and node.name == "request"
                   and "client_parent" in node.data]
        assert adopted, "no server.request span adopted the context"
        client_ids = {event.span_id for event in client_events
                      if event.span_id is not None}
        for node in adopted:
            assert node.parent_id in client_ids
            assert node.data["trace_id"] == "t-golden"

    def test_fill_counts_reconcile_exactly(self):
        (_, channel_stats, server_stats,
         client_events, server_events) = _traced_remote_run()

        merged = _normalized_merge(client_events, server_events)
        forest = build_span_tree(merged)
        fill_spans = [node for node in forest.spans.values()
                      if node.layer == "server"
                      and node.name == "request"
                      and node.data.get("op") == "fill"]
        round_trips = [event for event in client_events
                       if event.layer == "channel"
                       and event.event == "round_trip"]

        # ChannelStats <-> ServerStats <-> the merged trace, all
        # telling the same story.
        assert channel_stats["messages"] == server_stats["fills"]
        assert len(fill_spans) == server_stats["fills"]
        assert len(round_trips) == channel_stats["messages"]
        assert server_stats["requests"] == (
            server_stats["fills"] + 2)  # + open + close
        assert server_stats["sessions_opened"] == 1

    def test_merged_stream_matches_golden(self):
        (_, _, _, client_events,
         server_events) = _traced_remote_run()
        merged = _normalized_merge(client_events, server_events)
        lines = [json.dumps(record.to_dict(), sort_keys=True)
                 for record in merged]
        text = "\n".join(lines) + "\n"
        if REGEN:
            GOLDEN_DIR.mkdir(exist_ok=True)
            GOLDEN.write_text(text)
            return
        if not GOLDEN.exists():
            pytest.fail("golden file %s missing -- run with "
                        "REGEN_GOLDEN=1" % GOLDEN)
        assert text.splitlines() == GOLDEN.read_text().splitlines(), (
            "merged cross-process trace diverged from %s -- if "
            "intentional, regenerate with REGEN_GOLDEN=1"
            % GOLDEN.name)

    def test_golden_file_reloads_into_the_same_forest(self):
        """The checked-in golden is itself a valid export: loading
        it back yields a rooted forest with no violations."""
        if not GOLDEN.exists():
            pytest.skip("golden not generated yet")
        records = load_jsonl(str(GOLDEN))
        assert records, "golden export is empty"
        forest = build_span_tree(records)
        assert forest.orphans == []
        assert contract_violations(records) == []

    def test_sampled_out_trace_records_nothing_on_either_side(self):
        """rate=0.0 forces sampled=False: the client sends the
        envelope with the verdict, and the *server* suppresses its
        spans too -- one decision, both processes."""
        server, host, port, server_tracer = _make_traced_server()
        try:
            baseline = len(server_tracer.events)
            client_tracer = Tracer(record=True, clock=FakeClock(),
                                   trace_id="t-dark")
            context = ExecutionContext(
                EngineConfig(trace_sample_rate=0.0),
                tracer=client_tracer)
            with connect(host, port, QUERY,
                         context=context) as session:
                session.root.first_child()
            wait_until(lambda: server.active_sessions == 0,
                       message="session teardown")
            assert client_tracer.sampled is False
            # Client side went quiet after the verdict.
            assert [e for e in client_tracer.events
                    if e.layer == "channel"] == []
            # Server side: no server.request span carries this trace.
            new = server_tracer.events[baseline:]
            assert [e for e in new
                    if e.data.get("trace_id") == "t-dark"] == []
        finally:
            server.drain()


class TestTraceMergeCLI:
    def test_repro_trace_merge_verb(self, tmp_path, capsys):
        from repro.cli import main
        from repro.runtime.observability import export_jsonl

        (_, _, _, client_events,
         server_events) = _traced_remote_run()
        client_path = tmp_path / "client.jsonl"
        server_path = tmp_path / "server.jsonl"
        export_jsonl(client_events, str(client_path))
        export_jsonl(server_events, str(server_path))
        out_path = tmp_path / "merged.jsonl"

        code = main(["trace", "merge", str(client_path),
                     str(server_path), "-o", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace merge:" in out
        assert "orphans" not in out

        records = load_jsonl(str(out_path))
        assert build_span_tree(records).orphans == []

    def test_merge_exits_nonzero_on_orphans(self, tmp_path, capsys):
        from repro.cli import main

        orphan = {"layer": "server", "event": "request.begin",
                  "data": {}, "span_id": 5, "parent_id": 99,
                  "ts_ms": 0.0, "thread": 1}
        ended = dict(orphan, event="request.end")
        server_path = tmp_path / "server.jsonl"
        server_path.write_text(json.dumps(orphan) + "\n"
                               + json.dumps(ended) + "\n")
        client_path = tmp_path / "client.jsonl"
        client_path.write_text("")
        code = main(["trace", "merge", str(client_path),
                     str(server_path)])
        assert code == 1
        assert "orphans" in capsys.readouterr().out
