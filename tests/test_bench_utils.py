"""Tests for the workload generators and measurement utilities."""

import pytest

from repro.bench import (
    HOMES_SCHOOLS_QUERY,
    Timer,
    allbooks_plan,
    book_catalog,
    browse_first_k,
    depth_first_prefix,
    format_table,
    homes_and_schools,
    two_bookstores,
)
from repro.client import open_virtual_document
from repro.mediator import MIXMediator
from repro.navigation import MaterializedDocument
from repro.xtree import tree_size


class TestHomesAndSchools:
    def test_shapes(self):
        sources = homes_and_schools(10, schools_per_zip=3)
        homes = sources["homesSrc"].child(0)
        schools = sources["schoolsSrc"].child(0)
        assert len(homes.children) == 10
        assert len(schools.children) == 30
        assert all(h.label == "home" for h in homes.children)

    def test_zip_distribution(self):
        sources = homes_and_schools(10, zips=2)
        homes = sources["homesSrc"].child(0)
        zips = {h.find_child("zip").text() for h in homes.children}
        assert zips == {"91000", "91001"}

    def test_deterministic(self):
        a = homes_and_schools(5, seed=3)
        b = homes_and_schools(5, seed=3)
        assert a["homesSrc"] == b["homesSrc"]
        c = homes_and_schools(5, seed=4)
        assert a["homesSrc"] != c["homesSrc"]

    def test_query_runs_over_generated_data(self):
        med = MIXMediator()
        for url, tree in homes_and_schools(6).items():
            med.register_source(url, MaterializedDocument(tree))
        answer = med.prepare(HOMES_SCHOOLS_QUERY).materialize()
        assert len(answer.children) == 6  # every home has schools


class TestBookCatalogs:
    def test_catalog_shape(self):
        books = book_catalog("amazon", 12, seed=1)
        assert len(books) == 12
        first = books[0]
        assert [c.label for c in first.children] == [
            "title", "author", "price", "isbn"]

    def test_prices_in_range(self):
        books = book_catalog("x", 50, seed=2, price_low=5,
                             price_high=9)
        prices = [int(b.find_child("price").text()) for b in books]
        assert all(5 <= p <= 9 for p in prices)

    def test_deterministic_across_processes(self):
        # No builtin hash(): same seed, same catalog, always.
        a = book_catalog("amazon", 5, seed=7)
        b = book_catalog("amazon", 5, seed=7)
        assert a == b

    def test_two_bookstores_overlap(self):
        amazon, bn = two_bookstores(20, overlap=0.5)
        amazon_isbns = {b.find_child("isbn").text() for b in amazon}
        bn_isbns = {b.find_child("isbn").text() for b in bn}
        assert len(amazon_isbns & bn_isbns) == 10

    def test_allbooks_plan_validates(self):
        plan = allbooks_plan("a", "b")
        plan.validate()
        assert plan.var is not None


class TestMeasureUtilities:
    def _root(self, n=5):
        from repro.xtree import Tree, elem
        tree = Tree("hits", [elem("book", elem("t", str(i)))
                             for i in range(n)])
        return open_virtual_document(MaterializedDocument(tree))

    def test_browse_first_k_counts(self):
        assert browse_first_k(self._root(5), 3) == 3
        assert browse_first_k(self._root(2), 10) == 2

    def test_browse_first_k_callback(self):
        seen = []
        browse_first_k(self._root(4), 2,
                       per_result=lambda b: seen.append(b.tag))
        assert seen == ["book", "book"]

    def test_depth_first_prefix(self):
        from repro.xtree import Tree, elem
        tree = Tree("r", [elem("a", "1"), elem("b", "2")])
        doc = MaterializedDocument(tree)
        assert depth_first_prefix(doc, 3) == 3
        assert depth_first_prefix(doc, 100) == tree_size(tree)

    def test_timer(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.ms >= 0.0

    def test_format_table_alignment(self):
        table = format_table(["name", "n"], [["alpha", 1],
                                             ["b", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        # numeric cells right-aligned under their column
        assert lines[2].rstrip().endswith("1")
        assert lines[3].rstrip().endswith("22")

    def test_format_table_floats(self):
        table = format_table(["x"], [[1.23456]])
        assert "1.23" in table
