"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.xtree import parse_xml

QUERY = ("CONSTRUCT <answer><med_home> $H $S {$S} </med_home> {$H}"
         "</answer> {} "
         "WHERE homesSrc homes.home $H AND $H zip._ $V1 "
         "AND schoolsSrc schools.school $S AND $S zip._ $V2 "
         "AND $V1 = $V2")


@pytest.fixture
def source_files(tmp_path):
    homes = tmp_path / "homes.xml"
    homes.write_text(
        "<homes><home><addr>La Jolla</addr><zip>91220</zip></home>"
        "<home><addr>El Cajon</addr><zip>91223</zip></home></homes>")
    schools = tmp_path / "schools.xml"
    schools.write_text(
        "<schools><school><dir>Smith</dir><zip>91220</zip></school>"
        "<school><dir>Hart</dir><zip>91223</zip></school></schools>")
    return {"homesSrc": str(homes), "schoolsSrc": str(schools)}


def _query_argv(source_files, *extra):
    argv = ["query"]
    for name, path in source_files.items():
        argv += ["-s", "%s=%s" % (name, path)]
    argv += ["-q", QUERY]
    argv += list(extra)
    return argv


class TestQueryCommand:
    def test_prints_answer_document(self, source_files, capsys):
        assert main(_query_argv(source_files)) == 0
        out = capsys.readouterr().out.strip()
        answer = parse_xml(out)
        assert answer.label == "answer"
        assert len(answer.children) == 2

    def test_eager_matches_lazy(self, source_files, capsys):
        main(_query_argv(source_files))
        lazy_out = parse_xml(capsys.readouterr().out)
        main(_query_argv(source_files, "--eager"))
        eager_out = parse_xml(capsys.readouterr().out)
        assert lazy_out == eager_out

    def test_stats_go_to_stderr(self, source_files, capsys):
        main(_query_argv(source_files, "--stats"))
        captured = capsys.readouterr()
        assert "source navigations" in captured.err
        assert "homesSrc" in captured.err

    def test_query_from_file(self, source_files, tmp_path, capsys):
        query_file = tmp_path / "q.xmas"
        query_file.write_text(QUERY)
        argv = ["query"]
        for name, path in source_files.items():
            argv += ["-s", "%s=%s" % (name, path)]
        argv += ["-f", str(query_file)]
        assert main(argv) == 0
        assert parse_xml(capsys.readouterr().out).label == "answer"

    def test_bad_source_spec(self, source_files):
        with pytest.raises(SystemExit):
            main(["query", "-s", "nonsense", "-q", QUERY])

    def test_pretty_output(self, source_files, capsys):
        main(_query_argv(source_files, "--pretty"))
        out = capsys.readouterr().out
        assert "\n  <med_home>" in out


class TestResilienceFlags:
    def test_retries_flags_accepted_on_healthy_run(self, source_files,
                                                   capsys):
        assert main(_query_argv(source_files, "--retries", "3",
                                "--retry-deadline", "1000",
                                "--stats")) == 0
        captured = capsys.readouterr()
        answer = parse_xml(captured.out)
        assert len(answer.children) == 2
        assert "resilience" in captured.err
        assert "retries=0" in captured.err

    def test_degrade_flag_accepted(self, source_files, capsys):
        assert main(_query_argv(source_files, "--degrade")) == 0
        answer = parse_xml(capsys.readouterr().out)
        assert answer.label == "answer"

    def test_concurrency_flags_leave_answer_unchanged(self,
                                                      source_files,
                                                      capsys):
        main(_query_argv(source_files))
        baseline = parse_xml(capsys.readouterr().out)
        for extra in (["--batch-navigations", "--prefetch", "4"],
                      ["--prefetch-workers", "2", "--prefetch", "2"],
                      ["--fanout-workers", "2"]):
            assert main(_query_argv(source_files, *extra)) == 0
            assert parse_xml(capsys.readouterr().out) == baseline


class TestPlanCommand:
    def test_shows_plan_and_class(self, capsys):
        assert main(["plan", "-q", QUERY]) == 0
        out = capsys.readouterr().out
        assert "tupleDestroy" in out
        assert "join[$V1 = $V2]" in out
        assert "browsability:" in out

    def test_shows_rewrites_when_applicable(self, capsys):
        selective = QUERY + " AND $V1 = 91220"
        main(["plan", "-q", selective])
        out = capsys.readouterr().out
        assert "rewritten plan" in out


class TestClassifyCommand:
    def test_per_node_report(self, capsys):
        assert main(["classify", "-q",
                     "CONSTRUCT <a> $X {$X} </a> {} "
                     "WHERE src r.hit $X ORDER BY $X"]) == 0
        out = capsys.readouterr().out
        assert "unbrowsable" in out
        assert "orderBy" in out

    def test_sigma_flag_changes_class(self, capsys):
        query = ("CONSTRUCT <a> $X {$X} </a> {} WHERE src hit $X")
        main(["classify", "-q", query])
        without = capsys.readouterr().out
        main(["classify", "-q", query, "--sigma"])
        with_sigma = capsys.readouterr().out

        def line_of(text, fragment):
            return next(l for l in text.splitlines() if fragment in l)

        # groupBy keeps the plan root browsable either way, but sigma
        # upgrades the label extraction itself.
        assert "bounded" not in line_of(without, "getDescendants")
        assert "bounded" in line_of(with_sigma, "getDescendants")


class TestObservabilityFlags:
    def test_trace_out_jsonl(self, source_files, tmp_path, capsys):
        import json
        trace = tmp_path / "trace.jsonl"
        assert main(_query_argv(source_files, "--trace-out",
                                str(trace))) == 0
        captured = capsys.readouterr()
        assert parse_xml(captured.out).label == "answer"
        assert "trace:" in captured.err
        lines = trace.read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        assert any(e["event"].endswith(".begin") for e in events)
        assert any(e["layer"] == "source" for e in events)

    def test_trace_out_chrome(self, source_files, tmp_path, capsys):
        import json
        trace = tmp_path / "trace.json"
        assert main(_query_argv(source_files, "--trace-out",
                                str(trace), "--trace-format",
                                "chrome")) == 0
        capsys.readouterr()
        payload = json.loads(trace.read_text())
        assert {e["ph"] for e in payload["traceEvents"]} \
            <= {"B", "E", "i"}

    def test_metrics_out_prometheus(self, source_files, tmp_path,
                                    capsys):
        metrics = tmp_path / "metrics.prom"
        assert main(_query_argv(source_files, "--metrics-out",
                                str(metrics))) == 0
        capsys.readouterr()
        text = metrics.read_text()
        assert "# TYPE repro_source_navigations_total counter" in text
        assert 'source="homesSrc"' in text

    def test_answer_unchanged_under_observation(self, source_files,
                                                tmp_path, capsys):
        main(_query_argv(source_files))
        baseline = parse_xml(capsys.readouterr().out)
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.prom"
        main(_query_argv(source_files, "--trace-out", str(trace),
                         "--metrics-out", str(metrics)))
        assert parse_xml(capsys.readouterr().out) == baseline


class TestProfileCommand:
    def test_profile_subcommand(self, source_files, capsys):
        argv = ["profile"]
        for name, path in source_files.items():
            argv += ["-s", "%s=%s" % (name, path)]
        argv += ["-q", QUERY]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "browsability profile (observed):" in out
        assert "client navigations:" in out
        assert "verdict:" in out
        assert "Join#1" in out
