"""Tests for the observability layer: causal spans, the metrics
registry, the exporters, and cross-thread span propagation.

The acceptance anchor: one client ``fetch`` on the Fig. 9 join view
must yield a span tree whose leaf events reconcile *exactly* with the
``CountingDocument`` meters and the channel stats -- the trace is a
faithful, not approximate, account of the navigation cascade.
"""

import io
import json
import threading

import pytest

from repro.mediator import MIXMediator
from repro.navigation import MaterializedDocument, materialize
from repro.runtime import (
    EngineConfig,
    ExecutionContext,
    MetricsRegistry,
    TraceEvent,
    Tracer,
    build_span_tree,
    export_chrome_trace,
    export_jsonl,
    export_prometheus,
)
from repro.testing import FakeClock
from repro.wrappers import XMLFileWrapper, buffered

from .fixtures import fig4_plan, homes_source, schools_source

HOMES_XML = ("<homes>"
             "<home><addr>La Jolla</addr><zip>91220</zip></home>"
             "<home><addr>El Cajon</addr><zip>91223</zip></home>"
             "</homes>")
SCHOOLS_XML = ("<schools>"
               "<school><dir>Smith</dir><zip>91220</zip></school>"
               "<school><dir>Bar</dir><zip>91220</zip></school>"
               "<school><dir>Hart</dir><zip>91223</zip></school>"
               "</schools>")


class TestTracerSpans:
    def test_span_mints_ids_and_links_parents(self):
        tracer = Tracer(record=True, clock=FakeClock())
        with tracer.span("client", "fetch"):
            with tracer.span("operator", "v_fetch", op="Join#1"):
                tracer.emit("source", "f", source="homesSrc")
        begin_outer, begin_inner, point, end_inner, end_outer = \
            tracer.events
        assert begin_outer.event == "fetch.begin"
        assert begin_outer.parent_id is None
        assert begin_inner.parent_id == begin_outer.span_id
        assert point.parent_id == begin_inner.span_id
        assert end_inner.span_id == begin_inner.span_id
        assert end_outer.span_id == begin_outer.span_id

    def test_span_timestamps_come_from_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(record=True, clock=clock)
        with tracer.span("client", "down"):
            clock.sleep_ms(7)
        begin, end = tracer.events
        assert begin.ts_ms == 0.0
        assert end.ts_ms == 7.0
        forest = build_span_tree(tracer.events)
        (root,) = forest.roots
        assert root.duration_ms == 7.0

    def test_inactive_tracer_emits_nothing(self):
        tracer = Tracer()
        with tracer.span("client", "down"):
            tracer.emit("source", "d")
        assert tracer.events == []
        assert tracer.current_span() is None

    def test_capture_attach_connects_worker_thread(self):
        tracer = Tracer(record=True, clock=FakeClock())
        results = []

        def worker(parent):
            with tracer.attach(parent):
                with tracer.span("buffer", "prefetch_fill"):
                    tracer.emit("source", "f")
            results.append(tracer.current_span())

        with tracer.span("client", "fetch"):
            parent = tracer.capture()
            thread = threading.Thread(target=worker, args=(parent,))
            thread.start()
            thread.join()
        forest = build_span_tree(tracer.events)
        assert forest.orphans == []
        (root,) = forest.roots
        (child,) = root.children
        assert (child.layer, child.name) == ("buffer", "prefetch_fill")
        assert child.thread != root.thread
        assert len(child.leaf_events("source")) == 1
        # the worker's stack is clean after detaching
        assert results == [None]

    def test_attach_none_is_noop(self):
        tracer = Tracer(record=True)
        with tracer.attach(None):
            tracer.emit("source", "d")
        assert tracer.events[0].parent_id is None


class TestSubscribed:
    """Satellite: the leak-proof subscription context manager."""

    def test_subscribed_sees_events_then_detaches(self):
        tracer = Tracer()
        seen = []
        with tracer.subscribed(seen.append):
            assert tracer.active
            tracer.emit("source", "d")
        assert not tracer.active
        tracer.emit("source", "r")  # dropped: no subscribers
        assert [e.event for e in seen] == ["d"]

    def test_subscribed_detaches_on_exception(self):
        tracer = Tracer()
        seen = []
        with pytest.raises(RuntimeError):
            with tracer.subscribed(seen.append):
                raise RuntimeError("boom")
        assert not tracer.active
        # ... and the strict unsubscribe check confirms it is gone:
        with pytest.raises(ValueError):
            tracer.unsubscribe(seen.append)


class TestTraceEventStr:
    """Satellite: non-sortable mixed-type data keys (Python 3.9)."""

    def test_mixed_type_keys_render(self):
        event = TraceEvent("buffer", "fill", {1: "a", "b": 2})
        assert str(event) == "buffer.fill 1='a' b=2"

    def test_string_keys_sort_as_before(self):
        event = TraceEvent("source", "d", {"b": 1, "a": 2})
        assert str(event) == "source.d a=2 b=1"

    def test_to_dict_is_stable_and_json_ready(self):
        event = TraceEvent("source", "d", {1: "a"}, span_id=3,
                           parent_id=2, ts_ms=1.5, thread=9)
        payload = event.to_dict()
        assert payload == {
            "layer": "source", "event": "d", "data": {"1": "a"},
            "span_id": 3, "parent_id": 2, "ts_ms": 1.5, "thread": 9,
        }
        json.dumps(payload)  # must not raise


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("navs").inc(source="a")
        registry.counter("navs").inc(3, source="a")
        registry.gauge("depth").set(7)
        hist = registry.histogram("bytes", buckets=(10, 100))
        hist.observe(5)
        hist.observe(50)
        hist.observe(5000)
        assert registry.counter("navs").value(source="a") == 4
        assert registry.gauge("depth").value() == 7
        snap = registry.snapshot()
        assert snap["navs"]["type"] == "counter"
        assert snap["bytes"]["type"] == "histogram"

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("navs").inc(100, source="a")
        registry.histogram("bytes").observe(9)
        assert registry.counter("navs").value(source="a") == 0
        assert registry.snapshot()["navs"]["series"] == {}

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("source_navigations_total").inc(
            2, source="homesSrc", command="d")
        registry.histogram("channel_message_bytes",
                           buckets=(64, 256)).observe(100)
        text = registry.to_prometheus()
        assert '# TYPE repro_source_navigations_total counter' in text
        assert ('repro_source_navigations_total{command="d",'
                'source="homesSrc"} 2' in text)
        # cumulative buckets + +Inf
        assert 'le="64"} 0' in text
        assert 'le="256"} 1' in text
        assert 'le="+Inf"} 1' in text
        assert 'repro_channel_message_bytes_sum 100' in text
        assert 'repro_channel_message_bytes_count 1' in text

    def test_export_prometheus_to_sink(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        sink = io.StringIO()
        export_prometheus(registry, sink)
        assert "repro_c 1" in sink.getvalue()


class TestExporters:
    def _traced(self):
        tracer = Tracer(record=True, clock=FakeClock())
        with tracer.span("client", "fetch"):
            tracer.emit("source", "f", source="homesSrc")
        return tracer.events

    def test_jsonl_round_trip(self):
        events = self._traced()
        sink = io.StringIO()
        written = export_jsonl(events, sink)
        assert written == len(events)
        lines = sink.getvalue().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed == [e.to_dict() for e in events]

    def test_jsonl_stringifies_unserializable_data(self):
        events = [TraceEvent("source", "d", {"obj": object()})]
        sink = io.StringIO()
        export_jsonl(events, sink)
        json.loads(sink.getvalue())  # still valid JSON

    def test_chrome_trace_shape(self):
        events = self._traced()
        sink = io.StringIO()
        written = export_chrome_trace(events, sink)
        payload = json.loads(sink.getvalue())
        assert payload["displayTimeUnit"] == "ms"
        phases = [e["ph"] for e in payload["traceEvents"]]
        assert phases == ["B", "i", "E"]
        assert written == 3
        begin = payload["traceEvents"][0]
        assert begin["name"] == "client.fetch"
        assert begin["pid"] == 1 and begin["tid"] == 1

    def test_exporters_write_files(self, tmp_path):
        events = self._traced()
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        export_jsonl(events, str(jsonl))
        export_chrome_trace(events, str(chrome))
        assert len(jsonl.read_text().splitlines()) == len(events)
        json.loads(chrome.read_text())


class TestContextMetricsIntegration:
    def test_stats_report_includes_metrics_when_enabled(self):
        config = EngineConfig(metrics_enabled=True)
        context = ExecutionContext(config)
        context.metrics.counter("x").inc()
        report = context.stats_report()
        assert "metrics" in report
        assert report["metrics"]["x"]["series"] == {"": 1}

    def test_stats_report_omits_metrics_when_disabled(self):
        context = ExecutionContext(EngineConfig())
        assert "metrics" not in context.stats_report()

    def test_mediator_source_metrics(self):
        config = EngineConfig(metrics_enabled=True)
        med = MIXMediator(config)
        med.register_source(
            "homesSrc", MaterializedDocument(homes_source()))
        doc = med._documents["homesSrc"]
        doc.fetch(doc.root())
        doc.down(doc.root())
        counter = med.runtime.metrics.counter(
            "source_navigations_total")
        assert counter.value(source="homesSrc", command="f") == 1
        assert counter.value(source="homesSrc", command="d") == 1


def _observed_mediator(config=None, clock=None):
    tracer = Tracer(record=True, clock=clock or FakeClock())
    med = MIXMediator(config or EngineConfig(observe_operators=True),
                      tracer=tracer)
    med.register_source("homesSrc",
                        MaterializedDocument(homes_source()))
    med.register_source("schoolsSrc",
                        MaterializedDocument(schools_source()))
    return med, tracer


class TestSpanTreePropagation:
    """Satellite: one connected span tree across thread boundaries."""

    def test_local_materialize_yields_connected_forest(self):
        med, tracer = _observed_mediator()
        result = med.prepare(fig4_plan())
        result.materialize()
        forest = build_span_tree(tracer.events)
        assert forest.orphans == []
        assert forest.roots, "no spans at all"
        # every root is a client navigation; operators nest below
        assert {root.layer for root in forest.roots} == {"client"}
        layers = {node.layer for root in forest.roots
                  for node in root.walk()}
        assert "operator" in layers
        # every source command is accounted to some client span
        in_tree = len(forest.events("source"))
        assert in_tree == med.total_source_navigations()

    def test_fanout_join_produces_single_connected_tree(self):
        config = EngineConfig(observe_operators=True,
                              fanout_workers=2)
        med, tracer = _observed_mediator(config)
        result = med.prepare(fig4_plan())
        result.materialize()
        forest = build_span_tree(tracer.events)
        assert forest.orphans == []
        threads = {e.thread for e in tracer.events}
        assert len(threads) > 1, "fan-out never left the main thread"
        # all source commands connected despite the thread hops
        assert len(forest.events("source")) \
            == med.total_source_navigations()

    def test_async_prefetch_scan_stays_connected(self):
        tracer = Tracer(record=True, clock=FakeClock())
        source = MaterializedDocument(schools_source())
        from repro.client.remote import NavigableLXPServer
        server = NavigableLXPServer(source, chunk_size=1, depth=2)
        buffer = buffered(server, prefetch=2, workers=2,
                          tracer=tracer, name="schoolsSrc")
        materialize(buffer)
        buffer.close()
        forest = build_span_tree(tracer.events)
        assert forest.orphans == []
        spans = [s for s in forest.spans.values()
                 if s.layer == "buffer"]
        names = {s.name for s in spans}
        assert "fill" in names
        # prefetch fills happened on worker threads, demand fills on
        # the client thread -- and both reconstruct into one forest
        if "prefetch_fill" in names:
            prefetch_threads = {s.thread for s in spans
                                if s.name == "prefetch_fill"}
            demand_threads = {s.thread for s in spans
                              if s.name == "fill"}
            assert prefetch_threads.isdisjoint(demand_threads)

    def test_deterministic_under_fake_clock(self):
        def run():
            med, tracer = _observed_mediator()
            med.prepare(fig4_plan()).materialize()
            return [(e.layer, e.event, e.span_id, e.parent_id, e.ts_ms)
                    for e in tracer.events]

        assert run() == run()


class TestFig9Reconciliation:
    """Acceptance: leaf spans reconcile exactly with the meters."""

    def _remote_session(self):
        tracer = Tracer(record=True, clock=FakeClock())
        config = EngineConfig(observe_operators=True,
                              metrics_enabled=True)
        med = MIXMediator(config, tracer=tracer)
        med.register_source("homesSrc",
                            MaterializedDocument(homes_source()))
        med.register_source("schoolsSrc",
                            MaterializedDocument(schools_source()))
        result = med.prepare(fig4_plan())
        root, channel_stats = result.connect_remote()
        return med, tracer, root, channel_stats

    def test_one_fetch_reconciles_with_meters_and_channel(self):
        med, tracer, root, channel_stats = self._remote_session()
        first = root.first_child()   # descend to the first med_home
        assert first.tag == "med_home"
        forest = build_span_tree(tracer.events)
        assert forest.orphans == []
        # Every source command -- including the ones the connection's
        # root fill provoked -- is a leaf event of the span forest;
        # the counts reconcile exactly with the meters.
        source_events = forest.events("source")
        assert len(source_events) == med.total_source_navigations()
        assert len(source_events) > 0
        # ... and per source, event counts match each meter.
        for name, meter in med.meters.items():
            per_source = [e for e in source_events
                          if e.data.get("source") == name]
            assert len(per_source) == meter.total
        # Channel round trips reconcile with the channel stats.  The
        # connection handshake (get_root) happens outside any span and
        # is legitimately stray; every navigation-driven round trip is
        # in-tree.
        round_trips = forest.events("channel") + [
            e for e in forest.stray_events if e.layer == "channel"]
        assert len(round_trips) == channel_stats.messages
        assert sum(e.data["bytes"] for e in round_trips) \
            == channel_stats.bytes_transferred
        # The metrics registry saw the same traffic.
        counter = med.runtime.metrics.counter(
            "channel_round_trips_total")
        assert sum(counter.series().values()) == channel_stats.messages

    def test_source_metrics_match_meters(self):
        med, tracer, root, channel_stats = self._remote_session()
        for child in root.children():
            child.to_tree()          # navigate the whole answer
        counter = med.runtime.metrics.counter(
            "source_navigations_total")
        for name, meter in med.meters.items():
            counted = sum(
                counter.value(source=name, command=command)
                for command in ("d", "r", "f", "select"))
            assert counted == meter.total
            assert meter.total > 0


class TestObservabilityOffIsIdentical:
    """With observability disabled (the defaults), navigation counts
    must be byte-identical to the un-instrumented engine."""

    def _navigation_counts(self, config):
        med = MIXMediator(config)
        med.register_wrapper("homesSrc",
                             XMLFileWrapper("homesSrc", HOMES_XML))
        med.register_wrapper("schoolsSrc",
                             XMLFileWrapper("schoolsSrc", SCHOOLS_XML))
        result = med.prepare(fig4_plan())
        result.materialize()
        return {name: meter.counters.as_dict()
                for name, meter in med.meters.items()}

    def test_observed_run_navigates_identically(self):
        plain = self._navigation_counts(EngineConfig())
        observed_med_counts = None
        tracer = Tracer(record=True, clock=FakeClock())
        med = MIXMediator(EngineConfig(observe_operators=True,
                                       metrics_enabled=True),
                          tracer=tracer)
        med.register_wrapper("homesSrc",
                             XMLFileWrapper("homesSrc", HOMES_XML))
        med.register_wrapper("schoolsSrc",
                             XMLFileWrapper("schoolsSrc", SCHOOLS_XML))
        med.prepare(fig4_plan()).materialize()
        observed = {name: meter.counters.as_dict()
                    for name, meter in med.meters.items()}
        assert observed == plain
