"""Tests for the XMAS front-end: parser, translation, composition."""

import pytest

from repro.algebra import (
    Concatenate,
    CreateElement,
    GetDescendants,
    GroupBy,
    Join,
    Select,
    Source,
    TupleDestroy,
    evaluate,
    evaluate_bindings,
    walk_plan,
)
from repro.xmas import (
    ComparisonCondition,
    ElementTemplate,
    LiteralContent,
    PathCondition,
    VarUse,
    XMASSyntaxError,
    XMASTranslationError,
    inline_views,
    parse_xmas,
    translate,
)
from repro.xtree import Tree, elem

from .fixtures import expected_fig4_answer, fig4_sources

FIG3_QUERY = """
CONSTRUCT <answer>
  <med_home> $H $S {$S} </med_home> {$H}   % one med_home per $H
</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
"""


class TestParser:
    def test_fig3_structure(self):
        query = parse_xmas(FIG3_QUERY)
        assert query.head.tag == "answer"
        assert query.head.group == []
        (med_home,) = query.head.children
        assert isinstance(med_home, ElementTemplate)
        assert med_home.group == ["H"]
        h_use, s_use = med_home.children
        assert h_use == VarUse("H", None)
        assert s_use == VarUse("S", ["S"])
        assert len(query.conditions) == 5
        assert query.source_names() == ["homesSrc", "schoolsSrc"]

    def test_comments_stripped(self):
        query = parse_xmas(
            "CONSTRUCT <a> $X {$X} </a> {} % comment\n"
            "WHERE src x $X  % another\n")
        assert query.head.tag == "a"

    def test_path_condition_forms(self):
        query = parse_xmas(
            "CONSTRUCT <a> $Y {$Y} </a> {} "
            "WHERE src homes.home $X AND $X zip._ $Y")
        first, second = query.conditions
        assert isinstance(first, PathCondition) and first.base == "src"
        assert second.base == ("var", "X")
        assert str(second.path) == "zip._"

    def test_comparison_forms(self):
        query = parse_xmas(
            "CONSTRUCT <a> $X {$X} </a> {} "
            "WHERE src p $X AND $X = $Y AND $X < 100 AND $X != 'abc'")
        comps = [c for c in query.conditions
                 if isinstance(c, ComparisonCondition)]
        assert comps[0].right == ("var", "Y")
        assert comps[1].right == "100"
        assert comps[2].right == "abc"

    def test_literal_content(self):
        query = parse_xmas(
            'CONSTRUCT <a> "hello" $X {$X} </a> {} WHERE src p $X')
        assert query.head.children[0] == LiteralContent("hello")

    def test_keywords_case_insensitive(self):
        query = parse_xmas(
            "construct <a> $X {$X} </a> {} where src p $X and $X = 1")
        assert len(query.conditions) == 2

    def test_wildcard_and_star_paths(self):
        query = parse_xmas(
            "CONSTRUCT <a> $X {$X} </a> {} WHERE src _*.book $X")
        assert str(query.conditions[0].path) == "_*.book"

    @pytest.mark.parametrize("bad", [
        "",
        "WHERE src p $X",
        "CONSTRUCT <a> $X </a> WHERE src p $X",      # missing marker
        "CONSTRUCT <a> $X {$X} </b> {} WHERE src p $X",  # mismatch
        "CONSTRUCT <a> $X {$X} </a> {} WHERE",
        "CONSTRUCT <a> $X {$X} </a> {} WHERE src p $X garbage end",
        "CONSTRUCT <a> $X {$X} </a> {} WHERE src ..bad $X",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(XMASSyntaxError):
            parse_xmas(bad)


class TestTranslation:
    def test_fig3_reproduces_fig4_operators(self):
        plan = translate(parse_xmas(FIG3_QUERY))
        kinds = [type(n).__name__ for n in walk_plan(plan)]
        # The Figure 4 stack, modulo the harmless unary concatenate at
        # the answer level.
        assert kinds.count("Join") == 1
        assert kinds.count("GroupBy") == 2
        assert kinds.count("CreateElement") == 2
        assert kinds.count("GetDescendants") == 4
        assert kinds.count("Source") == 2

    def test_fig3_answer(self):
        plan = translate(parse_xmas(FIG3_QUERY))
        assert evaluate(plan, fig4_sources()) == expected_fig4_answer()

    def test_join_predicate_placed_on_join(self):
        plan = translate(parse_xmas(FIG3_QUERY))
        joins = [n for n in walk_plan(plan) if isinstance(n, Join)]
        assert "$V1 = $V2" in str(joins[0].predicate)

    def test_same_source_comparison_becomes_select(self):
        query = parse_xmas(
            "CONSTRUCT <a> $H {$H} </a> {} "
            "WHERE homesSrc homes.home $H AND $H zip._ $V AND $V = 91220")
        plan = translate(query)
        assert any(isinstance(n, Select) for n in walk_plan(plan))
        assert not any(isinstance(n, Join) for n in walk_plan(plan))

    def test_unjoined_sources_become_product(self):
        query = parse_xmas(
            "CONSTRUCT <a> $H {$H} $S {$S} </a> {} "
            "WHERE homesSrc homes.home $H AND schoolsSrc schools.school $S")
        plan = translate(query)
        joins = [n for n in walk_plan(plan) if isinstance(n, Join)]
        assert len(joins) == 1
        assert str(joins[0].predicate) == "true"

    def test_literal_content_constructed(self):
        query = parse_xmas(
            'CONSTRUCT <a> "label:" $X {$X} </a> {} '
            "WHERE homesSrc homes.home $X")
        answer = evaluate(translate(query), fig4_sources())
        assert answer.child(0).label == "label:"

    def test_source_url_mapping(self):
        query = parse_xmas(
            "CONSTRUCT <a> $X {$X} </a> {} WHERE homes p $X")
        plan = translate(query, source_urls={"homes": "rdb://homesdb"})
        sources = [n for n in walk_plan(plan) if isinstance(n, Source)]
        assert sources[0].url == "rdb://homesdb"

    def test_empty_result_constructs_empty_answer(self):
        query = parse_xmas(
            "CONSTRUCT <a> $X {$X} </a> {} WHERE homesSrc nope $X")
        answer = evaluate(translate(query), fig4_sources())
        assert answer == elem("a")

    def test_head_unbound_variable_rejected(self):
        query = parse_xmas(
            "CONSTRUCT <a> $Q {$Q} </a> {} WHERE homesSrc homes.home $H")
        with pytest.raises(XMASTranslationError):
            translate(query)

    def test_rebinding_rejected(self):
        query = parse_xmas(
            "CONSTRUCT <a> $X {$X} </a> {} "
            "WHERE homesSrc homes.home $X AND schoolsSrc s $X")
        with pytest.raises(XMASTranslationError):
            translate(query)

    def test_unbound_path_base_rejected(self):
        query = parse_xmas(
            "CONSTRUCT <a> $X {$X} </a> {} WHERE $Q zip._ $X")
        with pytest.raises(XMASTranslationError):
            translate(query)

    def test_plain_var_must_be_key(self):
        query = parse_xmas(
            "CONSTRUCT <a> $V </a> {} WHERE homesSrc homes.home $V")
        with pytest.raises(XMASTranslationError) as err:
            translate(query)
        assert "group key" in str(err.value)

    def test_mixing_marked_var_and_nested_element_rejected(self):
        query = parse_xmas(
            "CONSTRUCT <a> $X {$X} <b> $Y </b> {$Y} </a> {} "
            "WHERE homesSrc homes.home $X AND schoolsSrc s $Y")
        with pytest.raises(XMASTranslationError):
            translate(query)

    def test_non_self_marker_rejected(self):
        query = parse_xmas(
            "CONSTRUCT <a> $X {$Y} </a> {} "
            "WHERE homesSrc homes.home $X AND $X zip._ $Y")
        with pytest.raises(XMASTranslationError):
            translate(query)

    def test_three_level_nesting(self):
        query = parse_xmas("""
            CONSTRUCT <top>
                        <mid> $H <leafs> $V {$V} </leafs> {$V} </mid> {$H}
                      </top> {}
            WHERE homesSrc homes.home $H AND $H zip._ $V
        """)
        answer = evaluate(translate(query), fig4_sources())
        assert answer.label == "top"
        first_mid = answer.child(0)
        assert first_mid.label == "mid"
        assert first_mid.child(0).label == "home"
        assert first_mid.child(1).label == "leafs"


class TestComposition:
    def _view(self):
        return translate(parse_xmas(
            "CONSTRUCT <zips> $V {$V} </zips> {} "
            "WHERE homesSrc homes.home $H AND $H zip._ $V"))

    def test_inline_view_into_query(self):
        view = self._view()
        query = translate(parse_xmas(
            "CONSTRUCT <out> $Z {$Z} </out> {} WHERE zipview _ $Z"))
        composed = inline_views(query, {"zipview": view})
        # No source named zipview survives.
        urls = [n.url for n in walk_plan(composed)
                if isinstance(n, Source)]
        assert urls == ["homesSrc"]
        answer = evaluate(composed, fig4_sources())
        assert [c.label for c in answer.children] == ["91220", "91223"]

    def test_composition_equals_two_phase_evaluation(self):
        view = self._view()
        query = translate(parse_xmas(
            "CONSTRUCT <out> $Z {$Z} </out> {} WHERE zipview _ $Z"))
        composed = inline_views(query, {"zipview": view})
        # Reference: evaluate the view, then the query over its answer.
        view_answer = evaluate(view, fig4_sources())
        direct = evaluate(query, {"zipview": view_answer})
        assert evaluate(composed, fig4_sources()) == direct

    def test_views_over_views(self):
        base = self._view()
        middle = translate(parse_xmas(
            "CONSTRUCT <mid> $Z {$Z} </mid> {} WHERE base _ $Z"))
        top = translate(parse_xmas(
            "CONSTRUCT <top> $M {$M} </top> {} WHERE middle _ $M"))
        composed = inline_views(top, {"base": base, "middle": middle})
        answer = evaluate(composed, fig4_sources())
        assert answer.label == "top"
        assert len(answer.children) == 2
