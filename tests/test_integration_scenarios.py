"""System-level integration scenarios: the full stack exercised in
combination -- wrappers + buffers + views + optimizer + hybrid +
sigma + remote clients in single flows."""

import pytest

from repro.bench import allbooks_plan, book_catalog, two_bookstores
from repro.client import connect_remote
from repro.client.bbq import BBQSession
from repro.mediator import MIXMediator
from repro.navigation import MaterializedDocument
from repro.oodb import ObjectStore
from repro.relational import Connection, Database
from repro.runtime import EngineConfig
from repro.webstore import HttpSimulator, make_catalog_site
from repro.wrappers import (
    OODBLXPWrapper,
    RelationalLXPWrapper,
    RelationalQueryWrapper,
    WebLXPWrapper,
    XMLFileWrapper,
)
from repro.xtree import Tree, elem


def _full_stack_mediator(**overrides) -> MIXMediator:
    """XML + relational + OODB + web sources, all wrapped and
    buffered, plus an integrated view."""
    med = MIXMediator(EngineConfig(**overrides))

    med.register_wrapper("homesSrc", XMLFileWrapper("homesSrc", """
        <homes>
          <home><addr>La Jolla</addr><zip>91220</zip></home>
          <home><addr>El Cajon</addr><zip>91223</zip></home>
        </homes>"""))

    db = Database("schooldb")
    table = db.create_table("schools", [("dir", "str"), ("zip", "str")])
    table.insert_many([("Smith", "91220"), ("Bar", "91220"),
                       ("Hart", "91223")])
    med.register_wrapper("schooldb",
                         RelationalLXPWrapper(Connection(db),
                                              chunk_size=2))

    store = ObjectStore("inspections")
    store.define_class("Inspection", ["director", "grade"])
    store.create("Inspection", director="Smith", grade="A")
    store.create("Inspection", director="Hart", grade="B")
    med.register_wrapper("inspections", OODBLXPWrapper(store))

    books = book_catalog("amazon", 30, seed=5)
    site = make_catalog_site("amazon", books, page_size=10)
    med.register_wrapper("amazon",
                         WebLXPWrapper(HttpSimulator(site)))
    return med


THREE_WAY_QUERY = """
CONSTRUCT <report>
            <entry> $H $D $G {$G} </entry> {$H, $D}
          </report> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schooldb schools._ $S AND $S zip._ $V2 AND $S dir._ $D
  AND inspections Inspection.object $I AND $I director._ $D2
  AND $I grade $G AND $V1 = $V2 AND $D = $D2
"""


class TestFullStack:
    @pytest.mark.parametrize("options", [
        {},
        {"optimize_plans": False},
        {"cache_enabled": False},
        {"use_sigma": True},
        {"hybrid": True},
        {"use_sigma": True, "hybrid": True},
    ], ids=["default", "no-opt", "no-cache", "sigma", "hybrid",
            "sigma+hybrid"])
    def test_three_source_join_all_configurations(self, options):
        med = _full_stack_mediator(**options)
        answer = med.prepare(THREE_WAY_QUERY).materialize()
        entries = answer.children
        # Bar has no inspection record, so only Smith and Hart appear.
        assert len(entries) == 2
        directors = sorted(e.child(1).text() for e in entries)
        assert directors == ["Hart", "Smith"]

    def test_all_configurations_agree(self):
        reference = None
        for options in ({}, {"use_sigma": True}, {"hybrid": True},
                        {"cache_enabled": False}):
            answer = _full_stack_mediator(**options).prepare(
                THREE_WAY_QUERY).materialize()
            if reference is None:
                reference = answer
            assert answer == reference
        eager = _full_stack_mediator().query_eager(THREE_WAY_QUERY)
        assert eager == reference

    def test_partial_browse_cheaper_than_full(self):
        # On this tiny dataset per-navigation overhead dominates any
        # eager comparison (that trade-off is E3's subject); here we
        # pin the structural property: browsing one entry costs
        # strictly less than browsing the whole answer.
        lazy_med = _full_stack_mediator()
        result = lazy_med.prepare(THREE_WAY_QUERY)
        result.root.first_child().to_tree()  # one entry only
        partial = lazy_med.total_source_navigations()
        result.materialize()
        assert partial < lazy_med.total_source_navigations()


class TestViewTower:
    """Views over views over heterogeneous sources, browsed remotely."""

    def _mediator(self):
        amazon, bn = two_bookstores(40, overlap=0.5)
        med = MIXMediator()
        med.register_wrapper(
            "amazonSrc",
            XMLFileWrapper("amazonSrc", Tree("catalog", amazon)))

        db = Database("bndb")
        table = db.create_table(
            "books", [("title", "str"), ("author", "str"),
                      ("price", "int"), ("isbn", "str")])
        for book in bn:
            table.insert((book.find_child("title").text(),
                          book.find_child("author").text(),
                          int(book.find_child("price").text()),
                          book.find_child("isbn").text()))
        med.register_wrapper(
            "bnSrc", RelationalLXPWrapper(Connection(db),
                                          chunk_size=10))
        med.register_view(
            "bnbooks",
            "CONSTRUCT <shelf> <book> $T $A $P $I </book> "
            "{$T, $A, $P, $I} </shelf> {} "
            "WHERE bnSrc books._ $R AND $R title $T AND $R author $A "
            "AND $R price $P AND $R isbn $I")
        med.register_view("allbooks",
                          allbooks_plan("amazonSrc", "bnbooks"))
        med.register_view(
            "cheap",
            "CONSTRUCT <cheap> $B {$B} </cheap> {} "
            "WHERE allbooks book $B AND $B price._ $P AND $P < 25")
        return med

    def test_three_level_view_tower(self):
        med = self._mediator()
        answer = med.prepare(
            "CONSTRUCT <out> $B {$B} </out> {} WHERE cheap book $B"
        ).materialize()
        assert answer.label == "out"
        assert all(int(b.find_child("price").text()) < 25
                   for b in answer.children)
        assert len(answer.children) > 0

    def test_view_tower_browsed_remotely(self):
        med = self._mediator()
        result = med.prepare(
            "CONSTRUCT <out> $B {$B} </out> {} WHERE cheap book $B")
        local_answer = result.materialize()

        med2 = self._mediator()
        result2 = med2.prepare(
            "CONSTRUCT <out> $B {$B} </out> {} WHERE cheap book $B")
        root, stats = connect_remote(result2.document, chunk_size=5,
                                     depth=4)
        assert root.to_tree() == local_answer
        assert stats.messages > 0

    def test_bbq_session_over_the_tower(self):
        session = BBQSession(self._mediator())
        session.execute("query CONSTRUCT <out> $B {$B} </out> {} "
                        "WHERE cheap book $B")
        listing = session.execute("ls")
        assert "<book>" in listing
        session.execute("cd 0")
        assert session.execute("pwd") == "/out/book"
        schema = session.execute("schema")
        assert "<!ELEMENT out (book*)>" in schema


class TestQueryResultWrapperIntegration:
    def test_pushdown_wrapper_in_a_join(self):
        """A RelationalQueryWrapper result joined against XML."""
        db = Database("salesdb")
        table = db.create_table("sales",
                                [("region", "str"), ("total", "int")])
        table.insert_many([("north", 10), ("south", 250),
                           ("east", 400), ("west", 5)])
        med = MIXMediator()
        med.register_wrapper(
            "bigsales",
            RelationalQueryWrapper(
                Connection(db),
                "SELECT region, total FROM sales WHERE total >= 100 "
                "ORDER BY total DESC",
                chunk_size=2))
        med.register_wrapper("regions", XMLFileWrapper("regions", """
            <regions>
              <region><name>east</name><manager>Kim</manager></region>
              <region><name>south</name><manager>Lee</manager></region>
              <region><name>north</name><manager>Ann</manager></region>
            </regions>"""))
        answer = med.prepare("""
            CONSTRUCT <out>
                        <hit> $R $M </hit> {$R, $M}
                      </out> {}
            WHERE bigsales tuple $T AND $T region._ $R
              AND regions regions.region $X AND $X name._ $N
              AND $X manager $M AND $R = $N
        """).materialize()
        managers = [h.child(1).text() for h in answer.children]
        assert sorted(managers) == ["Kim", "Lee"]
