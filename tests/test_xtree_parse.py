"""Unit tests for the XML parser and serializer."""

import pytest

from repro.xtree import (
    XMLParseError,
    elem,
    parse_fragment,
    parse_xml,
    to_xml,
)


class TestBasicParsing:
    def test_single_empty_element(self):
        assert parse_xml("<a/>").sexpr() == "a"

    def test_empty_element_with_close_tag(self):
        assert parse_xml("<a></a>").sexpr() == "a"

    def test_text_content(self):
        assert parse_xml("<zip>91220</zip>").sexpr() == "zip[91220]"

    def test_nested_elements(self):
        doc = parse_xml("<home><addr>La Jolla</addr><zip>91220</zip></home>")
        assert doc.sexpr() == "home[addr[La Jolla], zip[91220]]"

    def test_sibling_order_preserved(self):
        doc = parse_xml("<r><b/><a/><c/></r>")
        assert [c.label for c in doc.children] == ["b", "a", "c"]

    def test_mixed_content(self):
        doc = parse_xml("<p>hello <b>world</b> bye</p>")
        assert [c.label for c in doc.children] == ["hello", "b", "bye"]

    def test_whitespace_only_text_dropped_by_default(self):
        doc = parse_xml("<r>\n  <a/>\n  <b/>\n</r>")
        assert [c.label for c in doc.children] == ["a", "b"]

    def test_keep_whitespace(self):
        doc = parse_xml("<r> <a/> </r>", keep_whitespace=True)
        assert [c.label for c in doc.children] == [" ", "a", " "]


class TestAttributes:
    def test_attributes_become_leading_children(self):
        doc = parse_xml('<home zip="91220" beds="3"><addr/></home>')
        assert [c.label for c in doc.children] == ["@zip", "@beds", "addr"]
        assert doc.find_child("@zip").text() == "91220"

    def test_attributes_discarded_when_disabled(self):
        doc = parse_xml('<home zip="91220"/>', keep_attributes=False)
        assert doc.is_leaf

    def test_single_quoted_attribute(self):
        doc = parse_xml("<a x='1'/>")
        assert doc.find_child("@x").text() == "1"

    def test_empty_attribute_value(self):
        doc = parse_xml('<a x=""/>')
        assert doc.find_child("@x").is_leaf


class TestEntitiesAndSections:
    def test_predefined_entities(self):
        doc = parse_xml("<a>&lt;&gt;&amp;&quot;&apos;</a>")
        assert doc.child(0).label == "<>&\"'"

    def test_character_references(self):
        doc = parse_xml("<a>&#65;&#x42;</a>")
        assert doc.child(0).label == "AB"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a>&nosuch;</a>")

    def test_cdata_is_literal(self):
        doc = parse_xml("<a><![CDATA[<not&parsed>]]></a>")
        assert doc.child(0).label == "<not&parsed>"

    def test_comments_skipped(self):
        doc = parse_xml("<!-- head --><a><!-- inner --><b/></a>")
        assert doc.sexpr() == "a[b]"

    def test_xml_declaration_and_doctype_skipped(self):
        doc = parse_xml('<?xml version="1.0"?><!DOCTYPE a><a/>')
        assert doc.sexpr() == "a"


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "no markup",
        "<a>",
        "<a></b>",
        "<a><b></a></b>",
        "<a/><b/>",
        "<a x=1/>",
        "<a><!-- unterminated</a>",
    ])
    def test_malformed_documents_raise(self, bad):
        with pytest.raises(XMLParseError):
            parse_xml(bad)

    def test_error_carries_position(self):
        with pytest.raises(XMLParseError) as err:
            parse_xml("<a></b>")
        assert err.value.position is not None


class TestSerialization:
    def test_leaf_content(self):
        assert to_xml(parse_xml("<zip>91220</zip>")) == "<zip>91220</zip>"

    def test_empty_element_self_closes(self):
        assert to_xml(parse_xml("<a></a>")) == "<a/>"

    def test_attributes_round_trip(self):
        xml = '<home beds="3"><addr>12 Main St</addr></home>'
        assert to_xml(parse_xml(xml)) == xml

    def test_name_like_text_round_trips_at_tree_level(self):
        # A name-like text leaf is indistinguishable from an empty
        # element in the T = D | D[T*] model (the paper makes the same
        # identification), so only tree-level round-trip is guaranteed.
        xml = "<addr>X</addr>"
        tree = parse_xml(xml)
        assert parse_xml(to_xml(tree)) == tree

    def test_escaping_in_text(self):
        tree = elem("a", "x<y&z")
        assert to_xml(tree) == "<a>x&lt;y&amp;z</a>"
        assert parse_xml(to_xml(tree)) == tree

    def test_escaping_in_attribute(self):
        tree = parse_xml('<a x="&quot;q&quot;"/>')
        assert parse_xml(to_xml(tree)) == tree

    def test_round_trip_nested(self):
        xml = ("<homes><home><addr>La Jolla</addr><zip>91220</zip></home>"
               "<home><zip>91223</zip></home></homes>")
        assert to_xml(parse_xml(xml)) == xml

    def test_pretty_print_contains_indentation(self):
        doc = parse_xml("<r><a><b>1</b></a></r>")
        pretty = to_xml(doc, pretty=True)
        assert "\n  <a>" in pretty
        assert parse_xml(pretty) == doc


class TestFragments:
    def test_fragment_list(self):
        trees = parse_fragment("<a/><b>1</b>text")
        assert [t.sexpr() for t in trees] == ["a", "b[1]", "text"]

    def test_empty_fragment(self):
        assert parse_fragment("   ") == []

    def test_fragment_with_comments(self):
        trees = parse_fragment("<!-- c --><a/><!-- d -->")
        assert [t.label for t in trees] == ["a"]
