"""Invalidation proof for the cross-session fragment cache (PR 8).

Cached fragments are tagged with the *source snapshot version* they
were filled at, and the contract is strict: **no stale fragment is
ever grafted**.  The suite churns a :class:`~repro.testing.
VersionedLXPServer` through snapshot epochs and checks:

* a warm session after ``advance()`` answers from the *new* snapshot
  (byte-identical to a cache-off run over it), never the cached old
  one, and the invalidation counters tick,
* a session *straddling* an epoch boundary terminates and behaves
  exactly like the cache-off run under the same interleaving (every
  individual fill is version-exact; the cache adds no new anomaly),
* a stored *whole view* from an old epoch is never adopted,
* the epoch sweep drops every entry of the churned view in one pass,
* a fill that fails under injected faults (FakeClock-driven retries,
  the resilience layer sitting *above* the caching seam) stores
  nothing, and the retry that succeeds populates the store once.
"""

import pytest

from repro.mediator import MIXMediator
from repro.runtime import EngineConfig
from repro.runtime.fragcache import (
    FragmentStore,
    fragment_cached,
    reset_shared_store,
    shared_store,
)
from repro.testing import (
    FailureSchedule,
    FakeClock,
    FlakyLXPServer,
    VersionedLXPServer,
)
from repro.xtree import Tree, to_xml


@pytest.fixture(autouse=True)
def _fresh_shared_store():
    reset_shared_store()
    yield
    reset_shared_store()


def _snapshot(version, homes=6):
    """Same shape every epoch, epoch-stamped leaf data."""
    return Tree("homes", [
        Tree("home", [Tree("addr", [Tree("a%d.%d" % (version, i))]),
                      Tree("price", [Tree("p%d.%d" % (version, i))])])
        for i in range(homes)])


QUERY = ("CONSTRUCT <hits> $A {$A} </hits> {} "
         "WHERE vs home.addr._ $A")


def _mediator_over(server, fragment_cache=True, tracer=None):
    med = MIXMediator(EngineConfig(fragment_cache=fragment_cache),
                      tracer=tracer)
    med.register_wrapper("vs", server)
    return med


def _answer(server, fragment_cache=True):
    med = _mediator_over(server, fragment_cache)
    return to_xml(med.prepare(QUERY).materialize())


# ----------------------------------------------------------------------
# Warm session after churn: new snapshot, never the cached old one
# ----------------------------------------------------------------------

class TestChurn:
    def test_advance_invalidates_and_serves_new_snapshot(self):
        churn = VersionedLXPServer([_snapshot(0), _snapshot(1)],
                                   chunk_size=2)
        v0 = _answer(churn)
        oracle_v0 = _answer(
            VersionedLXPServer([_snapshot(0)], chunk_size=2),
            fragment_cache=False)
        assert v0 == oracle_v0

        churn.advance()
        v1 = _answer(churn)
        oracle_v1 = _answer(
            VersionedLXPServer([_snapshot(1)], chunk_size=2),
            fragment_cache=False)
        assert v1 == oracle_v1
        assert v1 != v0  # the leaf data really churned
        assert shared_store().stats.snapshot()["invalidations"] >= 1

    def test_stale_whole_view_is_never_adopted(self):
        churn = VersionedLXPServer([_snapshot(0), _snapshot(1)],
                                   chunk_size=2)
        _answer(churn)  # harvests the complete v0 view
        store = shared_store()
        assert store.stats.snapshot()["view_stores"] >= 1

        churn.advance()
        med = _mediator_over(churn)
        # registration at v1 must not have adopted the v0 view: the
        # warm query re-fills from the live source
        fills_before = churn.stats.fills
        v1 = to_xml(med.prepare(QUERY).materialize())
        assert churn.stats.fills > fills_before
        oracle_v1 = _answer(
            VersionedLXPServer([_snapshot(1)], chunk_size=2),
            fragment_cache=False)
        assert v1 == oracle_v1
        assert store.stats.snapshot()["view_adoptions"] == 0

    def test_counters_tick_exactly_for_dropped_entries(self):
        store = FragmentStore(shards=2)
        for key in ("k1", "k2", "k3"):
            store.fill_through(("vs", key), 0, lambda: [])
        assert store.entry_count() == 3
        dropped = store.sweep("vs", 1)
        assert dropped == 3
        assert store.entry_count() == 0
        assert store.stats.snapshot()["invalidations"] == 3

    def test_sweep_spares_other_views(self):
        store = FragmentStore(shards=2)
        store.fill_through(("vs", "k"), 0, lambda: [])
        store.fill_through(("other", "k"), 0, lambda: [])
        assert store.sweep("vs", 1) == 1
        assert store.entry_count() == 1
        # the surviving entry still hits
        store.fill_through(("other", "k"), 0, lambda: [])
        assert store.stats.snapshot()["hits"] == 1


# ----------------------------------------------------------------------
# Epoch-straddling session: terminates, no stale graft, no anomaly
# ----------------------------------------------------------------------

class TestEpochStraddle:
    def _drain_with_advance_after(self, server, advance_at, churn):
        """Walk the whole export, calling ``churn.advance()`` after
        the ``advance_at``-th fill -- a deterministic interleaving."""
        from repro.buffer.lxp import reply_holes
        replies = []
        fills = 0
        frontier = [server.get_root().hole_id]
        while frontier:
            hole = frontier.pop(0)
            reply = server.fill(hole)
            fills += 1
            if fills == advance_at:
                churn.advance()
            replies.append((hole, reply))
            frontier.extend(reply_holes(reply))
        return replies

    def test_straddling_session_matches_cache_off(self):
        for advance_at in (1, 2, 3):
            cached_churn = VersionedLXPServer(
                [_snapshot(0), _snapshot(1)], chunk_size=2)
            store = FragmentStore(shards=4)
            cached, _, decision = fragment_cached(
                "vs", cached_churn, store=store)
            assert decision.cached
            got = self._drain_with_advance_after(
                cached, advance_at, cached_churn)

            plain_churn = VersionedLXPServer(
                [_snapshot(0), _snapshot(1)], chunk_size=2)
            want = self._drain_with_advance_after(
                plain_churn, advance_at, plain_churn)
            assert got == want, "advance_at=%d" % advance_at

    def test_straddle_then_warm_serves_only_new_epoch(self):
        churn = VersionedLXPServer([_snapshot(0), _snapshot(1)],
                                   chunk_size=2)
        store = FragmentStore(shards=4)
        cached, _, _ = fragment_cached("vs", churn, store=store)
        self._drain_with_advance_after(cached, 2, churn)
        # everything left in the store is tagged with epoch 1: a
        # fresh session hits only entries the straddler filled at v1
        warm_inner = VersionedLXPServer([_snapshot(0), _snapshot(1)],
                                        chunk_size=2)
        warm_inner.advance()
        warm, _, _ = fragment_cached("vs", warm_inner, store=store)
        from repro.buffer.lxp import reply_holes
        frontier = [warm.get_root().hole_id]
        while frontier:
            hole = frontier.pop(0)
            reply = warm.fill(hole)
            direct = warm_inner.fill(hole)
            assert reply == direct  # never a v0 fragment
            frontier.extend(reply_holes(reply))


# ----------------------------------------------------------------------
# Interplay with resilience: failed fills store nothing
# ----------------------------------------------------------------------

class TestResilienceInterplay:
    def test_failed_fill_stores_nothing_retry_populates_once(self):
        schedule = FailureSchedule.first(1)
        flaky = FlakyLXPServer(
            VersionedLXPServer([_snapshot(0)], chunk_size=2),
            schedule)
        clock = FakeClock()
        med = MIXMediator(
            EngineConfig(fragment_cache=True, retry_max_attempts=3),
            clock=clock)
        med.register_wrapper("vs", flaky)
        answer = to_xml(med.prepare(QUERY).materialize())
        oracle = _answer(
            VersionedLXPServer([_snapshot(0)], chunk_size=2),
            fragment_cache=False)
        assert answer == oracle
        assert schedule.failures == 1
        counters = shared_store().stats.snapshot()
        # the failed attempt counted neither hit nor miss; the retry
        # stored the entry exactly once
        assert counters["misses"] == counters["stores"]

    def test_degraded_placeholder_is_never_cached(self):
        """A permanently dead source degrades to <mix:error>; with
        the caching seam *below* resilience the placeholder must not
        poison the store for a later healthy session."""
        dead = FlakyLXPServer(
            VersionedLXPServer([_snapshot(0)], chunk_size=2),
            FailureSchedule.always())
        med = MIXMediator(
            EngineConfig(fragment_cache=True, retry_max_attempts=1,
                         on_source_failure="degrade"),
            clock=FakeClock())
        med.register_wrapper("vs", dead)
        degraded = to_xml(med.prepare(QUERY).materialize())
        assert "mix:error" in degraded or degraded == "<hits/>"
        assert shared_store().stats.snapshot()["stores"] == 0

        healthy = VersionedLXPServer([_snapshot(0)], chunk_size=2)
        answer = _answer(healthy)
        oracle = _answer(
            VersionedLXPServer([_snapshot(0)], chunk_size=2),
            fragment_cache=False)
        assert answer == oracle


# ----------------------------------------------------------------------
# The versioned harness itself
# ----------------------------------------------------------------------

class TestVersionedHarness:
    def test_versions_and_exhaustion(self):
        churn = VersionedLXPServer([_snapshot(0), _snapshot(1)])
        assert churn.snapshot_version() == 0
        assert churn.advance() == 1
        with pytest.raises(IndexError):
            churn.advance()
        with pytest.raises(ValueError):
            VersionedLXPServer([])

    def test_shared_stats_span_snapshots(self):
        churn = VersionedLXPServer([_snapshot(0), _snapshot(1)],
                                   chunk_size=2)
        churn.fill(churn.get_root().hole_id)
        churn.advance()
        churn.fill(churn.get_root().hole_id)
        assert churn.stats.fills == 2
