"""Prometheus text-exposition conformance for the metrics export.

The daemon's always-on telemetry is scraped as text
(``repro status --prometheus``, the ``mix:status`` reply's
``prometheus`` key, and the CI smoke-scrape), so the exporter must
produce *valid* exposition format, not merely plausible-looking
lines: HELP before TYPE, cumulative histogram buckets with a
terminal ``+Inf`` equal to the count series, and correct escaping in
label values and help text.
"""

from __future__ import annotations

import io
import re

import pytest

from repro.runtime.observability import (
    MetricsRegistry,
    export_prometheus,
)


def _export(registry):
    return export_prometheus(registry, io.StringIO())


def _lines(registry):
    return _export(registry).splitlines()


class TestMetaLines:
    def test_help_precedes_type_which_precedes_samples(self):
        registry = MetricsRegistry()
        registry.counter("requests_total",
                         help_text="Requests served.").inc(op="fill")
        lines = _lines(registry)
        assert lines[0] == ("# HELP repro_requests_total "
                            "Requests served.")
        assert lines[1] == "# TYPE repro_requests_total counter"
        assert lines[2] == 'repro_requests_total{op="fill"} 1'

    def test_help_first_writer_wins(self):
        registry = MetricsRegistry()
        registry.counter("hits", help_text="The first help.")
        registry.counter("hits", help_text="A later rewrite.")
        registry.counter("hits").inc()
        text = _export(registry)
        assert "# HELP repro_hits The first help." in text
        assert "A later rewrite" not in text

    def test_no_help_means_no_help_line(self):
        registry = MetricsRegistry()
        registry.counter("bare").inc()
        lines = _lines(registry)
        assert lines[0] == "# TYPE repro_bare counter"
        assert not any(line.startswith("# HELP") for line in lines)

    def test_type_lines_name_the_instrument_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(4.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        text = _export(registry)
        assert "# TYPE repro_c counter" in text
        assert "# TYPE repro_g gauge" in text
        assert "# TYPE repro_h histogram" in text

    def test_metric_names_are_sanitized_and_prefixed(self):
        registry = MetricsRegistry()
        registry.counter("weird.name-here").inc()
        assert "repro_weird_name_here 1" in _export(registry)

    def test_every_sample_line_parses(self):
        """Every non-comment line must match the exposition grammar:
        name{labels} value."""
        registry = MetricsRegistry()
        registry.counter("a", help_text="A.").inc(op="x")
        registry.gauge("b").set(2.25, kind="y")
        registry.histogram("c", buckets=(1, 10)).observe(3, op="z")
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? '
            r'[-+]?([0-9.]+(e[-+]?[0-9]+)?|Inf|NaN)$')
        for line in _lines(registry):
            if line.startswith("#"):
                continue
            assert sample.match(line), "unparseable line: %r" % line


class TestHistogramExport:
    def test_buckets_are_cumulative_with_terminal_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_ms", buckets=(1.0, 5.0, 25.0))
        for value in (0.5, 0.7, 3.0, 24.0, 100.0, 7000.0):
            hist.observe(value)
        text = _export(registry)
        assert 'repro_lat_ms_bucket{le="1"} 2' in text
        assert 'repro_lat_ms_bucket{le="5"} 3' in text
        assert 'repro_lat_ms_bucket{le="25"} 4' in text
        assert 'repro_lat_ms_bucket{le="+Inf"} 6' in text
        assert "repro_lat_ms_count 6" in text
        assert "repro_lat_ms_sum 7128.2" in text

    def test_inf_bucket_equals_count_per_label_set(self):
        registry = MetricsRegistry()
        hist = registry.histogram("ms", buckets=(1.0, 10.0))
        for op, values in (("open", (0.5, 2.0)),
                           ("fill", (0.1, 5.0, 50.0))):
            for value in values:
                hist.observe(value, op=op)
        text = _export(registry)
        for op, expected in (("open", 2), ("fill", 3)):
            inf = re.search(
                r'repro_ms_bucket\{op="%s",le="\+Inf"\} (\d+)' % op,
                text)
            count = re.search(
                r'repro_ms_count\{op="%s"\} (\d+)' % op, text)
            assert inf and count
            assert int(inf.group(1)) == expected
            assert int(count.group(1)) == expected

    def test_bucket_counts_never_decrease(self):
        registry = MetricsRegistry()
        hist = registry.histogram("v", buckets=(1, 2, 4, 8, 16))
        for value in (0.5, 3, 3, 9, 100, 0.1, 17):
            hist.observe(value)
        counts = [int(m.group(1)) for m in re.finditer(
            r'repro_v_bucket\{le="[^"]+"\} (\d+)',
            _export(registry))]
        assert len(counts) == 6
        assert counts == sorted(counts)

    def test_le_label_is_appended_after_user_labels(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.5, op="x")
        assert 'repro_h_bucket{op="x",le="1"} 1' in _export(registry)


class TestEscaping:
    def test_label_values_escape_quote_backslash_newline(self):
        registry = MetricsRegistry()
        registry.counter("errs").inc(
            reason='path "C:\\tmp"\nline2')
        text = _export(registry)
        assert ('repro_errs{reason='
                '"path \\"C:\\\\tmp\\"\\nline2"} 1') in text

    def test_help_escapes_backslash_and_newline_only(self):
        registry = MetricsRegistry()
        registry.counter(
            "doc", help_text='uses "quotes", a \\ and\na newline'
        ).inc()
        text = _export(registry)
        assert ('# HELP repro_doc uses "quotes", a \\\\ and\\n'
                'a newline') in text

    def test_escaped_output_stays_single_line(self):
        registry = MetricsRegistry()
        registry.counter("multi", help_text="a\nb").inc(detail="c\nd")
        for line in _lines(registry):
            assert "\n" not in line  # splitlines already guarantees
        assert len(_lines(registry)) == 3


class TestRegistryDiscipline:
    def test_kind_collision_is_a_type_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_disabled_registry_exports_no_samples(self):
        """A disabled registry still registers instruments (the TYPE
        line renders) but writes record nothing."""
        registry = MetricsRegistry(enabled=False)
        registry.counter("quiet").inc()
        assert [line for line in _lines(registry)
                if not line.startswith("#")] == []

    def test_integral_floats_render_without_decimal_point(self):
        registry = MetricsRegistry()
        registry.gauge("whole").set(3.0)
        registry.gauge("frac").set(3.5)
        text = _export(registry)
        assert "repro_whole 3\n" in text
        assert "repro_frac 3.5" in text
