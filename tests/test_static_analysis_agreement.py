"""Agreement between the static analyzer and the empirical profiler.

The contract (documented in PROTOCOLS.md, "Static diagnostics"): the
static verdict is never more *optimistic* than what the navigation
profiler measures.  A plan the profiler observes to be unbrowsable
must be called unbrowsable (or worse -- there is nothing worse)
statically; a plan statically called bounded must profile bounded.
Conservatism the other way (static "browsable" for an empirically
bounded mutant) is allowed.

Exercised on the three canonical Example 1 views and on randomized
mutants built by wrapping their roots in extra operators.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    Distinct,
    GetDescendants,
    GroupBy,
    Materialize,
    OrderBy,
    Project,
    Select,
    TruePredicate,
)
from repro.analysis import analyze_plan
from repro.navigation import (
    Browsability,
    browsability_order,
    profile_classify,
)
from repro.rewriter import classify_plan

from .test_profiler import (
    NAV,
    _concat_plan,
    _early,
    _filter_plan,
    _late,
    _sort_plan,
    _view_factory,
)

# -- mutation vocabulary ----------------------------------------------
#
# Every wrapper maps a plan with an "X" column to another plan with an
# "X" column, so wrappers compose in any order and the navigation
# profiler can walk the result exactly like the base view.

_WRAPPERS = {
    "select-true": lambda p: Select(p, TruePredicate()),
    "distinct": lambda p: Distinct(p),
    "order-by": lambda p: OrderBy(p, ["X"]),
    "materialize": lambda p: Materialize(p),
    "project": lambda p: Project(p, ["X"]),
    "keyless-group": lambda p: Project(
        GetDescendants(GroupBy(p, [], [("X", "LX")]),
                       "LX", "_", "X"), ["X"]),
}

_BASES = {
    "q_conc": _concat_plan,
    "q_sigma": _filter_plan,
    "q_sort": _sort_plan,
}


def _mutant(base_name, wrapper_names):
    plan = _BASES[base_name]()
    for name in wrapper_names:
        plan = _WRAPPERS[name](plan)
    return plan


def _assert_not_more_optimistic(plan):
    static = classify_plan(plan)
    empirical = profile_classify(_view_factory(plan),
                                 _early, _late, NAV).classification
    assert browsability_order(static) \
        >= browsability_order(empirical), \
        "static %s is more optimistic than measured %s" \
        % (static, empirical)
    # The analyzer's verdict string is the same classification.
    assert analyze_plan(plan).verdict == str(static)
    return static, empirical


class TestCanonicalAgreement:
    @pytest.mark.parametrize("name", sorted(_BASES))
    def test_static_never_more_optimistic(self, name):
        _assert_not_more_optimistic(_BASES[name]())

    def test_canonical_views_agree_exactly(self):
        # On the paper's own views the two sides coincide, not merely
        # order: the soundness bound is tight where it matters.
        for name, expected in [
                ("q_conc", Browsability.BOUNDED),
                ("q_sigma", Browsability.BROWSABLE),
                ("q_sort", Browsability.UNBROWSABLE)]:
            static, empirical = _assert_not_more_optimistic(
                _BASES[name]())
            assert static is expected
            assert empirical is expected


class TestMutantAgreement:
    @pytest.mark.parametrize("wrapper", sorted(_WRAPPERS))
    @pytest.mark.parametrize("base", sorted(_BASES))
    def test_single_wrapper(self, base, wrapper):
        _assert_not_more_optimistic(_mutant(base, [wrapper]))

    @settings(max_examples=25, deadline=None)
    @given(base=st.sampled_from(sorted(_BASES)),
           wrappers=st.lists(st.sampled_from(sorted(_WRAPPERS)),
                             max_size=3))
    def test_random_wrapper_stacks(self, base, wrappers):
        _assert_not_more_optimistic(_mutant(base, wrappers))

    def test_materialized_sort_profiles_bounded_statically_unbrowsable(
            self):
        # The canonical conservative gap: Materialize over the reorder
        # view re-browses for free (empirically bounded after the
        # eager first touch is amortized away by the sweep's fixed
        # navigation), while the static side must keep calling the
        # subtree unbrowsable.  Only the direction of the gap is
        # asserted -- the inequality, never equality.
        plan = Materialize(_sort_plan())
        static, _empirical = _assert_not_more_optimistic(plan)
        assert static is Browsability.UNBROWSABLE
