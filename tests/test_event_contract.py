"""The event-name contract: code, docs, and goldens must agree.

``EVENT_NAMES`` in :mod:`repro.runtime.observability` is the stable
contract for every span and event name the tower may emit.  Three
parties depend on it:

* the golden navigation traces under ``tests/golden/*.trace`` compare
  rendered event names verbatim;
* ``docs/PROTOCOLS.md`` documents the span taxonomy table;
* external trace consumers (Perfetto, the JSONL dumps) key off
  ``layer.name``.

These tests assert that live emissions stay inside the contract, that
the checked-in goldens only use contracted names, and that the
documentation lists every contracted name -- so a rename cannot land
silently in any of the three places.

The Chrome-trace golden is regenerated like the navigation traces::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_event_contract.py
"""

import io
import json
import os
import pathlib
import re

import pytest

from repro.mediator import MIXMediator
from repro.navigation import MaterializedDocument
from repro.runtime import (
    EVENT_NAMES,
    EngineConfig,
    Tracer,
    contract_violations,
    export_chrome_trace,
)
from repro.testing import FakeClock

from .fixtures import fig4_plan, homes_source, schools_source

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
REGEN = os.environ.get("REGEN_GOLDEN") == "1"
PROTOCOLS = pathlib.Path(__file__).parent.parent \
    / "docs" / "PROTOCOLS.md"


def _observed_fig4_events(full=True):
    """An observed remote run of the Fig. 4 plan: client spans,
    operator spans, buffer fills, channel round trips, source
    commands, mediator events.  ``full=False`` touches only the root
    handle and the first ``med_home`` (the Fig. 9 partial prefix) --
    small enough to check in as the Chrome-trace golden."""
    tracer = Tracer(record=True, clock=FakeClock())
    config = EngineConfig(observe_operators=True)
    med = MIXMediator(config, tracer=tracer)
    med.register_source("homesSrc",
                        MaterializedDocument(homes_source()))
    med.register_source("schoolsSrc",
                        MaterializedDocument(schools_source()))
    result = med.prepare(fig4_plan())
    root, _ = result.connect_remote(chunk_size=1, depth=1)
    if full:
        for child in root.children():
            child.to_tree()
    else:
        assert root.first_child().tag == "med_home"
    return tracer.events


class TestLiveEmissions:
    def test_full_stack_run_conforms(self):
        events = _observed_fig4_events()
        assert contract_violations(events) == []
        # the run exercises every layer of the contract except
        # resilience (no faults injected here)
        layers = {e.layer for e in events}
        assert {"client", "operator", "buffer", "mediator",
                "channel", "source"} <= layers

    def test_resilience_layer_conforms(self):
        from repro.runtime import RetryPolicy, ResilientCaller
        from repro.testing import FailureSchedule
        tracer = Tracer(record=True, clock=FakeClock())
        schedule = FailureSchedule([True, False])
        calls = []

        def flaky():
            calls.append(1)
            error = schedule.next_failure()
            if error is not None:
                raise error
            return "ok"

        caller = ResilientCaller(
            "s", RetryPolicy(max_attempts=3, base_delay_ms=1),
            clock=FakeClock(), tracer=tracer)
        assert caller.call(flaky) == "ok"
        resilience_events = [e for e in tracer.events
                             if e.layer == "resilience"]
        assert resilience_events, "no resilience events emitted"
        assert contract_violations(resilience_events) == []

    def test_fragcache_layer_conforms(self):
        """A cold+warm fragment-cache run emits only contracted
        ``fragcache.*`` names, and hits every outcome event."""
        from repro.runtime.fragcache import reset_shared_store
        from repro.wrappers import XMLFileWrapper

        xml = ("<homes>"
               + "".join("<home><addr>a%d</addr><price>p%d</price>"
                         "</home>" % (i, i) for i in range(6))
               + "</homes>")
        query = ("CONSTRUCT <hits> $A {$A} </hits> {} "
                 "WHERE homesSrc homes.home.addr._ $A")
        reset_shared_store()
        try:
            tracer = Tracer(record=True, clock=FakeClock())
            for _ in range(2):  # cold then warm
                med = MIXMediator(EngineConfig(fragment_cache=True),
                                  tracer=tracer)
                med.register_wrapper(
                    "homesSrc",
                    XMLFileWrapper("homesSrc", xml, chunk_size=2))
                med.prepare(query).materialize()
            fragcache_events = [e for e in tracer.events
                                if e.layer == "fragcache"]
            assert fragcache_events, "no fragcache events emitted"
            assert contract_violations(fragcache_events) == []
            names = {e.event for e in fragcache_events}
            assert {"decision", "miss", "store", "complete",
                    "adopt", "fill.begin", "fill.end"} <= names
        finally:
            reset_shared_store()

    def test_violation_detection_works(self):
        tracer = Tracer(record=True)
        tracer.emit("source", "teleport")
        tracer.emit("warp", "d")
        assert contract_violations(tracer.events) \
            == ["source.teleport", "warp.d"]


class TestGoldenTraces:
    def test_goldens_use_only_contracted_names(self):
        traces = sorted(GOLDEN_DIR.glob("*.trace"))
        assert traces, "no golden traces found"
        pattern = re.compile(r"^([a-z_]+)\.([a-z_.]+)(?:\s|$)")
        for path in traces:
            for line in path.read_text().splitlines():
                match = pattern.match(line)
                assert match, "unparseable golden line %r in %s" \
                    % (line, path.name)
                layer, event = match.groups()

                class _Shim:
                    pass

                shim = _Shim()
                shim.layer, shim.event = layer, event
                assert contract_violations([shim]) == [], (
                    "golden %s uses uncontracted event %s.%s"
                    % (path.name, layer, event))

    def test_chrome_trace_golden(self):
        """One canonical Chrome trace_event artifact, checked in: the
        Fig. 4 remote session under a fake clock.  Guards the exporter
        format (Perfetto-loadable) and the span taxonomy at once."""
        events = _observed_fig4_events(full=False)
        sink = io.StringIO()
        export_chrome_trace(events, sink)
        text = sink.getvalue()
        golden_path = GOLDEN_DIR / "fig4_remote.chrome-trace.json"
        if REGEN:
            golden_path.write_text(text)
            return
        if not golden_path.exists():
            pytest.fail("golden %s missing -- run with REGEN_GOLDEN=1"
                        % golden_path)
        assert text == golden_path.read_text(), (
            "Chrome trace diverged from the golden -- if intentional, "
            "regenerate with REGEN_GOLDEN=1")
        payload = json.loads(text)
        names = {e["name"] for e in payload["traceEvents"]
                 if e["ph"] in ("B", "E")}
        contracted = {"%s.%s" % (layer, span)
                      for layer, spans in EVENT_NAMES["spans"].items()
                      for span in spans}
        assert names <= contracted


class TestDocumentation:
    def test_protocols_documents_every_contracted_name(self):
        text = PROTOCOLS.read_text()
        assert "## Observability" in text
        for layer, spans in EVENT_NAMES["spans"].items():
            for span in spans:
                assert "`%s.%s`" % (layer, span) in text, (
                    "PROTOCOLS.md does not document span %s.%s"
                    % (layer, span))
        for layer, events in EVENT_NAMES["events"].items():
            for event in events:
                assert "`%s.%s`" % (layer, event) in text, (
                    "PROTOCOLS.md does not document event %s.%s"
                    % (layer, event))

    def test_contract_structure(self):
        assert set(EVENT_NAMES) == {"spans", "events"}
        for section in EVENT_NAMES.values():
            for layer, names in section.items():
                assert isinstance(names, tuple)
                assert names, "empty contract bucket %r" % layer
