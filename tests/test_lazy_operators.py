"""Unit tests for individual lazy mediators: each operator's navigation
must agree with the eager reference semantics, binding by binding."""

import pytest

from repro.algebra import (
    Comparison,
    Concatenate,
    Const,
    Constant,
    CreateElement,
    Difference,
    Distinct,
    GetDescendants,
    GroupBy,
    Join,
    OrderBy,
    Project,
    Select,
    Source,
    Union,
    Var,
    evaluate_bindings,
)
from repro.lazy import (
    BindingsDocument,
    LazyError,
    LazySource,
    build_lazy_plan,
    materialize_value,
    value_text_of,
)
from repro.navigation import MaterializedDocument, materialize
from repro.runtime import ExecutionContext
from repro.xtree import Tree, elem, leaf

from .fixtures import fig4_sources, homes_source


def lazy_of(plan, trees, cache=True):
    docs = {url: MaterializedDocument(t) for url, t in trees.items()}
    return build_lazy_plan(plan, docs,
                           ExecutionContext.create(cache_enabled=cache))


def assert_lazy_matches_eager(plan, trees, cache=True):
    lazy = lazy_of(plan, trees, cache)
    expected = evaluate_bindings(plan, trees).to_tree()
    assert materialize(BindingsDocument(lazy)) == expected


HOMES_WITH_ZIPS = GetDescendants(
    GetDescendants(Source("homesSrc", "root"), "root", "homes.home", "H"),
    "H", "zip._", "V")


class TestLazySource:
    def test_single_binding(self):
        op = LazySource(MaterializedDocument(homes_source()), "root")
        b = op.first_binding()
        assert b is not None
        assert op.next_binding(b) is None

    def test_value_navigation(self):
        op = LazySource(MaterializedDocument(homes_source()), "root")
        vid = op.attribute(op.first_binding(), "root")
        assert op.v_fetch(vid) == "homesSrc"
        assert op.v_right(vid) is None
        child = op.v_down(vid)
        assert op.v_fetch(child) == "homes"

    def test_unknown_variable_raises(self):
        op = LazySource(MaterializedDocument(homes_source()), "root")
        with pytest.raises(LazyError):
            op.attribute(op.first_binding(), "nope")

    def test_matches_eager(self):
        assert_lazy_matches_eager(Source("homesSrc", "root"),
                                  {"homesSrc": homes_source()})


class TestLazyGetDescendants:
    def test_matches_eager_simple(self):
        assert_lazy_matches_eager(HOMES_WITH_ZIPS,
                                  {"homesSrc": homes_source()})

    def test_matches_eager_wildcards(self):
        doc = {"src": Tree("src", [elem(
            "r", elem("a", elem("b", "1")), elem("b", "2"),
            elem("c", elem("a", elem("b", "3"))))])}
        plan = GetDescendants(Source("src", "root"), "root", "_*.b", "X")
        assert_lazy_matches_eager(plan, doc)

    def test_matches_eager_recursive(self):
        doc = {"src": Tree("src", [elem(
            "a", elem("a", elem("a", "x"), elem("b")), elem("a"))])}
        plan = GetDescendants(Source("src", "root"), "root", "a+", "X")
        assert_lazy_matches_eager(plan, doc)
        assert_lazy_matches_eager(plan, doc, cache=False)

    def test_matches_eager_alternation(self):
        doc = {"src": Tree("src", [elem(
            "r", elem("x", "1"), elem("y", "2"), elem("z", "3"))])}
        plan = GetDescendants(Source("src", "root"), "root",
                              "r.(x|z)", "X")
        assert_lazy_matches_eager(plan, doc)

    def test_stacked_getdescendants(self):
        assert_lazy_matches_eager(
            GetDescendants(HOMES_WITH_ZIPS, "H", "addr", "A"),
            {"homesSrc": homes_source()})

    def test_match_value_is_detached(self):
        trees = {"homesSrc": homes_source()}
        op = lazy_of(HOMES_WITH_ZIPS, trees)
        b = op.first_binding()
        vid = op.attribute(b, "H")
        # The home element has a sibling in the source, but as a bound
        # value it is a root.
        assert op.v_right(vid) is None

    def test_resume_from_stale_binding_id(self):
        # Node-ids encode associations: an old id stays navigable.
        trees = {"homesSrc": homes_source()}
        op = lazy_of(HOMES_WITH_ZIPS, trees)
        first = op.first_binding()
        second = op.next_binding(first)
        again = op.next_binding(first)
        assert again == second

    def test_no_matches(self):
        plan = GetDescendants(Source("src", "root"), "root", "zzz", "X")
        assert_lazy_matches_eager(plan,
                                  {"src": Tree("src", [elem("a")])})


class TestLazySelectProjectConstant:
    def test_select_matches_eager(self):
        plan = Select(HOMES_WITH_ZIPS,
                      Comparison(Var("V"), "=", Const("91223")))
        assert_lazy_matches_eager(plan, {"homesSrc": homes_source()})

    def test_select_empty_result(self):
        plan = Select(HOMES_WITH_ZIPS,
                      Comparison(Var("V"), "=", Const("zzz")))
        assert_lazy_matches_eager(plan, {"homesSrc": homes_source()})

    def test_select_on_structured_value_text(self):
        # Predicate over $H compares the concatenated leaf text.
        plan = Select(HOMES_WITH_ZIPS,
                      Comparison(Var("H"), "=",
                                 Const("La Jolla91220")))
        assert_lazy_matches_eager(plan, {"homesSrc": homes_source()})

    def test_project(self):
        plan = Project(HOMES_WITH_ZIPS, ["V", "H"])
        assert_lazy_matches_eager(plan, {"homesSrc": homes_source()})

    def test_constant(self):
        plan = Constant(HOMES_WITH_ZIPS,
                        elem("tag", elem("inner", "1")), "C")
        assert_lazy_matches_eager(plan, {"homesSrc": homes_source()})


class TestLazyJoin:
    def _join_plan(self):
        right = GetDescendants(
            GetDescendants(Source("schoolsSrc", "r2"),
                           "r2", "schools.school", "S"),
            "S", "zip._", "W")
        return Join(HOMES_WITH_ZIPS, right,
                    Comparison(Var("V"), "=", Var("W")))

    def test_matches_eager(self):
        assert_lazy_matches_eager(self._join_plan(), fig4_sources())

    def test_matches_eager_without_cache(self):
        assert_lazy_matches_eager(self._join_plan(), fig4_sources(),
                                  cache=False)

    def test_inner_cache_reduces_source_navigations(self):
        from repro.navigation import CountingDocument
        trees = fig4_sources()
        plan = self._join_plan()

        def total_navs(cache):
            docs = {u: CountingDocument(MaterializedDocument(t))
                    for u, t in trees.items()}
            op = build_lazy_plan(
                plan, docs, ExecutionContext.create(cache_enabled=cache))
            materialize(BindingsDocument(op))
            return sum(d.total for d in docs.values())

        assert total_navs(True) < total_navs(False)

    def test_empty_inner(self):
        right = GetDescendants(Source("schoolsSrc", "r2"),
                               "r2", "nothing", "S")
        plan = Join(HOMES_WITH_ZIPS, right,
                    Comparison(Var("V"), "=", Var("S")))
        assert_lazy_matches_eager(plan, fig4_sources())


class TestLazyGroupBy:
    def _grouped(self):
        right = GetDescendants(
            GetDescendants(Source("schoolsSrc", "r2"),
                           "r2", "schools.school", "S"),
            "S", "zip._", "W")
        join = Join(HOMES_WITH_ZIPS, right,
                    Comparison(Var("V"), "=", Var("W")))
        return GroupBy(join, ["H"], [("S", "LSs")])

    def test_matches_eager(self):
        assert_lazy_matches_eager(self._grouped(), fig4_sources())

    def test_matches_eager_without_cache(self):
        assert_lazy_matches_eager(self._grouped(), fig4_sources(),
                                  cache=False)

    def test_group_member_navigation_example8(self):
        """The Example 8 instance: groups and member order."""
        doc = Tree("bsrc", [Tree("pairs", [
            elem("p", elem("h", "home1"), elem("s", "school1")),
            elem("p", elem("h", "home1"), elem("s", "school2")),
            elem("p", elem("h", "home2"), elem("s", "school3")),
            elem("p", elem("h", "home1"), elem("s", "school4")),
            elem("p", elem("h", "home3"), elem("s", "school5")),
        ])])
        base = GetDescendants(Source("bsrc", "root"), "root",
                              "pairs.p", "P")
        plan = GroupBy(
            GetDescendants(GetDescendants(base, "P", "h", "H"),
                           "P", "s", "S"),
            ["H"], [("S", "LSs")])
        trees = {"bsrc": doc}
        assert_lazy_matches_eager(plan, trees)
        out = evaluate_bindings(plan, trees)
        collected = [[s.text() for s in b.value("LSs").children]
                     for b in out]
        assert collected == [["school1", "school2", "school4"],
                             ["school3"], ["school5"]]

    def test_empty_key_group_over_empty_input(self):
        base = GetDescendants(Source("src", "root"), "root", "none", "X")
        plan = GroupBy(base, [], [("X", "Xs")])
        assert_lazy_matches_eager(plan,
                                  {"src": Tree("src", [elem("a")])})

    def test_multi_aggregation(self):
        plan = GroupBy(HOMES_WITH_ZIPS, ["H"],
                       [("V", "Vs"), ("H", "Hs")])
        assert_lazy_matches_eager(plan, {"homesSrc": homes_source()})


class TestLazyConstruction:
    def _construction(self):
        grouped = GroupBy(HOMES_WITH_ZIPS, ["H"], [("V", "Vs")])
        content = Concatenate(grouped, ["H", "Vs"], "HVs")
        return CreateElement(content, "med_home", "HVs", "M")

    def test_concatenate_matches_eager(self):
        grouped = GroupBy(HOMES_WITH_ZIPS, ["H"], [("V", "Vs")])
        plan = Concatenate(grouped, ["H", "Vs"], "HVs")
        assert_lazy_matches_eager(plan, {"homesSrc": homes_source()})

    def test_concatenate_of_two_empty_lists(self):
        base = GetDescendants(Source("src", "root"), "root", "none", "X")
        grouped = GroupBy(base, [], [("X", "Xs")])
        plan = Concatenate(grouped, ["Xs", "Xs"], "Out")
        assert_lazy_matches_eager(plan,
                                  {"src": Tree("src", [elem("a")])})

    def test_create_element_matches_eager(self):
        assert_lazy_matches_eager(self._construction(),
                                  {"homesSrc": homes_source()})

    def test_create_element_label_without_input_access(self):
        """Figure 9: fetching the created label costs nothing below."""
        from repro.navigation import CountingDocument
        docs = {"homesSrc": CountingDocument(
            MaterializedDocument(homes_source()))}
        op = build_lazy_plan(self._construction(), docs)
        binding = op.first_binding()
        before = docs["homesSrc"].total
        vid = op.attribute(binding, "M")
        assert op.v_fetch(vid) == "med_home"
        assert docs["homesSrc"].total == before

    def test_create_element_variable_label(self):
        base = Constant(HOMES_WITH_ZIPS, leaf("dyn"), "T")
        grouped = GroupBy(base, ["H", "T"], [("V", "Vs")])
        plan = CreateElement(grouped, ("var", "T"), "Vs", "E")
        assert_lazy_matches_eager(plan, {"homesSrc": homes_source()})


class TestLazyOrderBySetOps:
    def _letters(self, *labels):
        doc = Tree("src", [Tree("r", [elem("x", l) for l in labels])])
        plan = GetDescendants(
            GetDescendants(Source("src", "root"), "root", "r.x", "X"),
            "X", "_", "V")
        return plan, {"src": doc}

    def test_order_by_matches_eager(self):
        plan, trees = self._letters("b", "c", "a")
        assert_lazy_matches_eager(OrderBy(plan, ["V"]), trees)

    def test_order_by_descending(self):
        plan, trees = self._letters("2", "10", "1")
        assert_lazy_matches_eager(OrderBy(plan, ["V"], descending=True),
                                  trees)

    def test_order_by_forces_full_scan(self):
        from repro.navigation import CountingDocument
        plan, trees = self._letters("b", "c", "a")
        docs = {u: CountingDocument(MaterializedDocument(t))
                for u, t in trees.items()}
        op = build_lazy_plan(OrderBy(plan, ["V"]), docs)
        source = docs["src"]
        assert source.total == 0
        op.first_binding()
        # Must have scanned all three x elements already.
        forced = source.total
        materialize(BindingsDocument(op))
        assert forced > 6  # well beyond a single-binding prefix

    def test_union_matches_eager(self):
        plan, trees = self._letters("a", "b")
        assert_lazy_matches_eager(Union(plan, plan), trees)

    def test_difference_matches_eager(self):
        plan, trees = self._letters("a", "b", "c")
        only_a = Select(plan, Comparison(Var("V"), "=", Const("a")))
        assert_lazy_matches_eager(Difference(plan, only_a), trees)

    def test_distinct_matches_eager(self):
        plan, trees = self._letters("a", "b", "a", "c", "b")
        assert_lazy_matches_eager(Distinct(Project(plan, ["V"])), trees)

    def test_distinct_without_cache(self):
        plan, trees = self._letters("a", "a", "b")
        assert_lazy_matches_eager(Distinct(Project(plan, ["V"])), trees,
                                  cache=False)


class TestValueHelpers:
    def test_value_text_of_leaf_costs_one_fetch(self):
        from repro.navigation import CountingDocument
        docs = {"homesSrc": CountingDocument(
            MaterializedDocument(homes_source()))}
        op = build_lazy_plan(HOMES_WITH_ZIPS, docs)
        binding = op.first_binding()
        vid = op.attribute(binding, "V")
        before = docs["homesSrc"].counters.fetch
        assert value_text_of(op, vid) == "91220"
        # one failed v_down probe + one fetch
        assert docs["homesSrc"].counters.fetch - before <= 1

    def test_materialize_value(self):
        trees = {"homesSrc": homes_source()}
        op = lazy_of(HOMES_WITH_ZIPS, trees)
        vid = op.attribute(op.first_binding(), "H")
        assert materialize_value(op, vid) == \
            elem("home", elem("addr", "La Jolla"), elem("zip", "91220"))
