"""Unit tests for the OODB and web-store substrates."""

import pytest

from repro.oodb import ObjectStore, OODBError, open_store, register_store
from repro.webstore import (
    HttpSimulator,
    WebError,
    WebSite,
    make_catalog_site,
    open_site,
    register_site,
)
from repro.xtree import elem


@pytest.fixture
def university():
    store = ObjectStore("uni")
    store.define_class("Dept", ["name"])
    store.define_class("Emp", ["name", "dept", "skills", "manager"])
    cs = store.create("Dept", name="CS")
    math = store.create("Dept", name="Math")
    ann = store.create("Emp", name="Ann", dept=cs, skills=["db", "ir"])
    store.create("Emp", name="Bob", dept=cs, manager=ann)
    store.create("Emp", name="Cyd", dept=math)
    return store


class TestObjectStore:
    def test_extents_in_creation_order(self, university):
        names = [o.get("name") for o in university.extent("Emp")]
        assert names == ["Ann", "Bob", "Cyd"]

    def test_oids_unique_and_resolvable(self, university):
        oids = [o.oid for o in university.extent("Emp")]
        assert len(set(oids)) == 3
        assert university.get(oids[0]).get("name") == "Ann"

    def test_unknown_class(self, university):
        with pytest.raises(OODBError):
            university.extent("Nope")

    def test_unknown_oid(self, university):
        with pytest.raises(OODBError):
            university.get("uni:ghost1")

    def test_duplicate_class_rejected(self, university):
        with pytest.raises(OODBError):
            university.define_class("Dept", ["x"])

    def test_unknown_attribute_rejected(self, university):
        with pytest.raises(OODBError):
            university.create("Dept", nope="x")

    def test_attribute_access_validated(self, university):
        ann = university.extent("Emp")[0]
        with pytest.raises(OODBError):
            ann.get("salary")

    def test_follow_reference_path(self, university):
        ann = university.extent("Emp")[0]
        assert university.follow(ann, "dept.name") == ["CS"]

    def test_follow_fans_out_lists(self, university):
        ann = university.extent("Emp")[0]
        assert university.follow(ann, "skills") == ["db", "ir"]

    def test_follow_skips_missing(self, university):
        cyd = university.extent("Emp")[2]
        assert university.follow(cyd, "manager.name") == []

    def test_follow_through_atom_rejected(self, university):
        ann = university.extent("Emp")[0]
        with pytest.raises(OODBError):
            university.follow(ann, "name.more")

    def test_uri_registry(self, university):
        uri = register_store(university)
        assert open_store(uri) is university
        with pytest.raises(OODBError):
            open_store("oodb://missing")


class TestWebStore:
    def test_pages_and_404(self):
        site = WebSite("s")
        site.add_page("/a", elem("page", "hello"))
        assert site.page("/a").text() == "hello"
        with pytest.raises(WebError):
            site.page("/b")

    def test_catalog_pagination(self):
        items = [elem("item", str(i)) for i in range(45)]
        site = make_catalog_site("shop", items, page_size=20)
        assert len(site) == 3
        first = site.page("/page/0")
        assert len(first.children) == 21  # 20 items + next link
        assert first.children[-1].label == "next"
        last = site.page("/page/2")
        assert len(last.children) == 5  # remainder, no next link
        assert all(c.label == "item" for c in last.children)

    def test_single_page_catalog(self):
        site = make_catalog_site("shop", [elem("item", "0")],
                                 page_size=10)
        assert len(site) == 1
        assert site.page("/page/0").find_child("next") is None

    def test_empty_catalog_still_has_front_page(self):
        site = make_catalog_site("shop", [], page_size=10)
        assert site.page("/page/0").is_leaf

    def test_page_size_validated(self):
        with pytest.raises(ValueError):
            make_catalog_site("shop", [], page_size=0)

    def test_http_simulator_charges(self):
        items = [elem("item", "x" * 100) for _ in range(10)]
        site = make_catalog_site("shop", items, page_size=5)
        http = HttpSimulator(site, latency_ms=50.0, ms_per_kb=10.0)
        http.fetch("/page/0")
        assert http.stats.requests == 1
        assert http.stats.bytes_transferred > 500
        assert http.stats.virtual_ms > 50.0
        http.fetch("/page/1")
        assert http.stats.requests == 2

    def test_stats_reset(self):
        site = make_catalog_site("shop", [elem("i", "1")], page_size=5)
        http = HttpSimulator(site)
        http.fetch("/page/0")
        http.stats.reset()
        assert http.stats.requests == 0
        assert http.stats.virtual_ms == 0.0

    def test_uri_registry(self):
        site = WebSite("mysite")
        uri = register_site(site)
        assert open_site(uri) is site
        with pytest.raises(WebError):
            open_site("web://missing")
