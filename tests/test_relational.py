"""Unit tests for the in-memory relational engine."""

import pytest

from repro.relational import (
    Column,
    ColumnType,
    Connection,
    Database,
    SchemaError,
    SQLError,
    Table,
    TableSchema,
    connect,
    parse_select,
    register_database,
)


@pytest.fixture
def homes_db():
    db = Database("homesdb")
    table = db.create_table(
        "homes", [("addr", "str"), ("zip", "int"), ("price", "int")])
    table.insert_many([
        ("12 Shore Dr", 91220, 500000),
        ("3 Hill Rd", 91223, 350000),
        ("9 Bay Ct", 91220, 725000),
        ("1 Mesa Blvd", 91224, 410000),
    ])
    return db


class TestSchema:
    def test_column_types_validated(self):
        with pytest.raises(SchemaError):
            Column("x", "blob")

    def test_coercion(self):
        assert ColumnType.coerce("int", "42") == 42
        assert ColumnType.coerce("float", 3) == 3.0
        assert ColumnType.coerce("str", 91220) == "91220"
        assert ColumnType.coerce("int", None) is None

    def test_bad_coercion(self):
        with pytest.raises(SchemaError):
            ColumnType.coerce("int", "not a number")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a"), Column("a")])

    def test_row_arity_checked(self):
        schema = TableSchema("t", [Column("a"), Column("b")])
        with pytest.raises(SchemaError):
            schema.coerce_row(["only one"])

    def test_column_index(self):
        schema = TableSchema("t", [Column("a"), Column("b")])
        assert schema.column_index("b") == 1
        with pytest.raises(SchemaError):
            schema.column_index("c")


class TestTable:
    def test_insert_preserves_order(self, homes_db):
        table = homes_db.table("homes")
        assert [r[0] for r in table.rows()] == [
            "12 Shore Dr", "3 Hill Rd", "9 Bay Ct", "1 Mesa Blvd"]

    def test_value_by_name(self, homes_db):
        assert homes_db.table("homes").value(2, "zip") == 91220

    def test_coercion_on_insert(self, homes_db):
        table = homes_db.table("homes")
        table.insert(("X", "91225", "1"))
        assert table.row(4) == ("X", 91225, 1)


class TestDatabase:
    def test_duplicate_table_rejected(self, homes_db):
        with pytest.raises(SchemaError):
            homes_db.create_table("homes", ["x"])

    def test_unknown_table(self, homes_db):
        with pytest.raises(SchemaError):
            homes_db.table("nope")

    def test_uri_registry(self, homes_db):
        uri = register_database(homes_db)
        assert uri == "rdb://homesdb"
        conn = connect(uri)
        assert conn.tables() == ["homes"]
        with pytest.raises(SchemaError):
            connect("rdb://missing")
        with pytest.raises(SchemaError):
            connect("web://homesdb")


class TestSQLParsing:
    def test_star(self):
        stmt = parse_select("SELECT * FROM homes")
        assert stmt.columns is None
        assert stmt.table == "homes"

    def test_columns_and_where(self):
        stmt = parse_select(
            "SELECT addr, price FROM homes WHERE zip = 91220 AND "
            "price >= 500000")
        assert stmt.columns == ["addr", "price"]
        assert len(stmt.conditions) == 2
        assert stmt.conditions[0].op == "="

    def test_string_literal_with_quote(self):
        stmt = parse_select("SELECT * FROM t WHERE a = 'O''Hara'")
        assert stmt.conditions[0].value == "O'Hara"

    def test_order_and_limit(self):
        stmt = parse_select(
            "SELECT * FROM homes ORDER BY price DESC, addr LIMIT 2")
        assert [(k.column, k.descending) for k in stmt.order_by] == [
            ("price", True), ("addr", False)]
        assert stmt.limit == 2

    @pytest.mark.parametrize("bad", [
        "",
        "SELECT FROM homes",
        "SELECT * homes",
        "SELECT * FROM homes WHERE",
        "SELECT * FROM homes LIMIT x",
        "SELECT * FROM homes garbage",
        "UPDATE homes SET x = 1",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(SQLError):
            parse_select(bad)


class TestExecution:
    def _run(self, db, sql):
        return list(Connection(db).execute(sql).as_dicts())

    def test_filter(self, homes_db):
        rows = self._run(
            homes_db, "SELECT addr FROM homes WHERE zip = 91220")
        assert [r["addr"] for r in rows] == ["12 Shore Dr", "9 Bay Ct"]

    def test_comparison_operators(self, homes_db):
        rows = self._run(
            homes_db, "SELECT addr FROM homes WHERE price < 420000")
        assert len(rows) == 2

    def test_like(self, homes_db):
        rows = self._run(
            homes_db, "SELECT addr FROM homes WHERE addr LIKE '%Dr'")
        assert rows == [{"addr": "12 Shore Dr"}]

    def test_order_by(self, homes_db):
        rows = self._run(
            homes_db, "SELECT price FROM homes ORDER BY price")
        assert [r["price"] for r in rows] == [
            350000, 410000, 500000, 725000]

    def test_limit(self, homes_db):
        rows = self._run(homes_db, "SELECT * FROM homes LIMIT 2")
        assert len(rows) == 2

    def test_projection_order(self, homes_db):
        cursor = Connection(homes_db).execute(
            "SELECT zip, addr FROM homes LIMIT 1")
        assert cursor.column_names == ["zip", "addr"]

    def test_wrong_table_rejected(self, homes_db):
        with pytest.raises(SchemaError):
            self._run(homes_db, "SELECT * FROM nothere")


class TestCursor:
    def test_tuple_at_a_time(self, homes_db):
        cursor = Connection(homes_db).execute("SELECT * FROM homes")
        assert cursor.current is None
        first = cursor.advance()
        assert first[0] == "12 Shore Dr"
        assert cursor.current is first
        assert cursor.advances == 1

    def test_exhaustion(self, homes_db):
        cursor = Connection(homes_db).execute(
            "SELECT * FROM homes LIMIT 1")
        cursor.advance()
        assert cursor.advance() is None
        assert cursor.exhausted
        assert cursor.advance() is None  # stays exhausted, no count
        assert cursor.advances == 2

    def test_fetch_chunk(self, homes_db):
        cursor = Connection(homes_db).execute("SELECT * FROM homes")
        chunk = cursor.fetch_chunk(3)
        assert len(chunk) == 3
        rest = cursor.fetch_chunk(3)
        assert len(rest) == 1

    def test_chunk_size_positive(self, homes_db):
        cursor = Connection(homes_db).execute("SELECT * FROM homes")
        with pytest.raises(ValueError):
            cursor.fetch_chunk(0)

    def test_lazy_no_work_before_advance(self, homes_db):
        conn = Connection(homes_db)
        conn.execute("SELECT * FROM homes ORDER BY price")
        assert conn.statements_executed == 1  # parsing only; no scan yet
