"""The public API surface: everything advertised imports and is
documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro", "repro.core", "repro.runtime", "repro.xtree",
    "repro.navigation",
    "repro.algebra", "repro.lazy", "repro.xmas", "repro.rewriter",
    "repro.buffer", "repro.wrappers", "repro.relational", "repro.oodb",
    "repro.webstore", "repro.client", "repro.mediator", "repro.bench",
    "repro.testing", "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_imports(name):
    module = importlib.import_module(name)
    assert module.__doc__, "%s lacks a module docstring" % name


@pytest.mark.parametrize("name", [p for p in PACKAGES
                                  if p not in ("repro.cli",)])
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, "%s exports nothing" % name
    for symbol in exported:
        assert hasattr(module, symbol), \
            "%s.__all__ lists missing %s" % (name, symbol)


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, \
                "%s.%s lacks a docstring" % (name, symbol)


def test_version():
    import repro
    assert repro.__version__


def test_core_facade_matches_primary_contribution():
    from repro import core
    for needed in ("MIXMediator", "VirtualDocument", "Browsability",
                   "classify_plan", "build_virtual_document"):
        assert hasattr(core, needed)


def test_unified_error_hierarchy():
    """Every expected-failure exception derives from ReproError."""
    from repro import ReproError
    from repro.algebra import PlanError, SerializationError
    from repro.buffer import LXPProtocolError
    from repro.client import BBQError  # noqa: F401  (re-export check)
    from repro.client.bbq import BBQError as BBQError2
    from repro.lazy import LazyError
    from repro.mediator import MediatorError
    from repro.oodb import OODBError
    from repro.relational import SchemaError, SQLError
    from repro.webstore import WebError
    from repro.xmas import XMASSyntaxError, XMASTranslationError
    from repro.xtree import XMLParseError, PathSyntaxError

    for exc in (PlanError, SerializationError, LXPProtocolError,
                BBQError2, LazyError, MediatorError, OODBError,
                SchemaError, SQLError, WebError, XMASSyntaxError,
                XMASTranslationError, XMLParseError, PathSyntaxError):
        assert issubclass(exc, ReproError), exc
