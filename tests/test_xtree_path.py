"""Unit + property tests for regular path expressions and the NFA."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xtree import (
    Alt,
    Label,
    Opt,
    PathSyntaxError,
    Plus,
    Seq,
    Star,
    Wildcard,
    compile_path,
    naive_match,
    parse_path,
)


class TestParser:
    def test_single_label(self):
        assert parse_path("home") == Label("home")

    def test_wildcard(self):
        assert parse_path("_") == Wildcard()

    def test_underscore_prefixed_name_is_a_label(self):
        assert parse_path("_x") == Label("_x")

    def test_sequence(self):
        assert parse_path("homes.home") == Seq((Label("homes"),
                                                Label("home")))

    def test_alternation(self):
        assert parse_path("a|b") == Alt((Label("a"), Label("b")))

    def test_star_binds_to_atom(self):
        expr = parse_path("a.b*")
        assert expr == Seq((Label("a"), Star(Label("b"))))

    def test_plus_and_opt(self):
        assert parse_path("a+") == Plus(Label("a"))
        assert parse_path("a?") == Opt(Label("a"))

    def test_grouping(self):
        expr = parse_path("(a|b).c")
        assert expr == Seq((Alt((Label("a"), Label("b"))), Label("c")))

    def test_nested_repetition(self):
        assert parse_path("(a.b)*") == Star(Seq((Label("a"), Label("b"))))

    def test_precedence_alt_lowest(self):
        expr = parse_path("a.b|c")
        assert expr == Alt((Seq((Label("a"), Label("b"))), Label("c")))

    def test_str_round_trip(self):
        for text in ["homes.home", "zip._", "(a|b)*.c", "a.b?.c", "x+"]:
            assert parse_path(str(parse_path(text))) == parse_path(text)

    @pytest.mark.parametrize("bad", ["", "   ", "a..b", "a|", "(a", "a)",
                                     "*", ".a"])
    def test_syntax_errors(self, bad):
        with pytest.raises(PathSyntaxError):
            parse_path(bad)


class TestMatching:
    @pytest.mark.parametrize("path,labels,expected", [
        ("homes.home", ["homes", "home"], True),
        ("homes.home", ["homes"], False),
        ("homes.home", ["homes", "home", "zip"], False),
        ("zip._", ["zip", "91220"], True),
        ("zip._", ["zip"], False),
        ("_", ["anything"], True),
        ("_", [], False),
        ("a|b", ["a"], True),
        ("a|b", ["b"], True),
        ("a|b", ["c"], False),
        ("a*", [], True),
        ("a*", ["a", "a", "a"], True),
        ("a*", ["a", "b"], False),
        ("a+", [], False),
        ("a+", ["a"], True),
        ("a?.b", ["b"], True),
        ("a?.b", ["a", "b"], True),
        ("(a|b)*.c", ["a", "b", "a", "c"], True),
        ("(a|b)*.c", ["c"], True),
        ("(a|b)*.c", ["a", "d", "c"], False),
        ("_*.zip", ["x", "y", "zip"], True),
        ("_*.zip", ["zip"], True),
    ])
    def test_matches(self, path, labels, expected):
        assert compile_path(path).matches(labels) is expected

    def test_incremental_stepping(self):
        nfa = compile_path("a.b*.c")
        states = nfa.start_states
        states = nfa.step(states, "a")
        assert nfa.is_alive(states) and not nfa.is_accepting(states)
        states = nfa.step(states, "b")
        assert nfa.is_alive(states)
        states = nfa.step(states, "c")
        assert nfa.is_accepting(states)

    def test_dead_frontier_prunes(self):
        nfa = compile_path("a.b")
        states = nfa.step(nfa.start_states, "x")
        assert not nfa.is_alive(states)
        # Stepping a dead frontier stays dead.
        assert not nfa.is_alive(nfa.step(states, "a"))

    def test_recursive_detection(self):
        assert compile_path("a*").is_recursive
        assert compile_path("a.b+").is_recursive
        assert compile_path("(a.b)?").is_recursive is False
        assert compile_path("homes.home").is_recursive is False

    def test_max_match_length(self):
        assert compile_path("homes.home").max_match_length() == 2
        assert compile_path("a.b?.c").max_match_length() == 3
        assert compile_path("a|b.c").max_match_length() == 2
        assert compile_path("a*").max_match_length() is None


# ----------------------------------------------------------------------
# Property: the NFA agrees with the naive recursive semantics.
# ----------------------------------------------------------------------

_LABELS = ["a", "b", "c"]


def _exprs(depth: int):
    if depth == 0:
        return st.one_of(
            st.sampled_from([Label(x) for x in _LABELS]),
            st.just(Wildcard()),
        )
    sub = _exprs(depth - 1)
    return st.one_of(
        sub,
        st.lists(sub, min_size=2, max_size=3).map(
            lambda ps: Seq(tuple(ps))),
        st.lists(sub, min_size=2, max_size=3).map(
            lambda ps: Alt(tuple(ps))),
        sub.map(Star),
        sub.map(Plus),
        sub.map(Opt),
    )


@settings(max_examples=300, deadline=None)
@given(
    expr=_exprs(2),
    labels=st.lists(st.sampled_from(_LABELS), max_size=6),
)
def test_nfa_matches_naive_semantics(expr, labels):
    assert compile_path(expr).matches(labels) == naive_match(expr, labels)


@settings(max_examples=100, deadline=None)
@given(
    expr=_exprs(2),
    labels=st.lists(st.sampled_from(_LABELS), max_size=6),
)
def test_parse_of_str_is_identity_modulo_matching(expr, labels):
    reparsed = parse_path(str(expr))
    assert (compile_path(reparsed).matches(labels)
            == compile_path(expr).matches(labels))
