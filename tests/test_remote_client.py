"""Tests for the remote-client fragment channel (Section 5 outlook)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer import BufferComponent, LXPProtocolError, \
    validate_fill_reply
from repro.client import (
    MessageChannel,
    NavigableLXPServer,
    RPCDocument,
    connect_remote,
    open_virtual_document,
)
from repro.mediator import MIXMediator
from repro.navigation import MaterializedDocument, materialize
from repro.wrappers import XMLFileWrapper
from repro.xtree import Tree, elem, leaf

from .fixtures import expected_fig4_answer

HOMES_XML = ("<homes>"
             "<home><addr>La Jolla</addr><zip>91220</zip></home>"
             "<home><addr>El Cajon</addr><zip>91223</zip></home>"
             "</homes>")
SCHOOLS_XML = ("<schools>"
               "<school><dir>Smith</dir><zip>91220</zip></school>"
               "<school><dir>Bar</dir><zip>91220</zip></school>"
               "<school><dir>Hart</dir><zip>91223</zip></school>"
               "</schools>")
QUERY = """
CONSTRUCT <answer><med_home> $H $S {$S} </med_home> {$H}</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2
"""


def _mediator():
    med = MIXMediator()
    med.register_wrapper("homesSrc",
                         XMLFileWrapper("homesSrc", HOMES_XML))
    med.register_wrapper("schoolsSrc",
                         XMLFileWrapper("schoolsSrc", SCHOOLS_XML))
    return med


class TestNavigableLXPServer:
    def test_exports_materialized_document(self):
        tree = elem("r", elem("a", "1"), elem("b", elem("c", "2")))
        server = NavigableLXPServer(MaterializedDocument(tree),
                                    chunk_size=1, depth=1)
        buffer = BufferComponent(server)
        assert materialize(buffer) == tree

    def test_replies_validate(self):
        tree = Tree("r", [elem("x", str(i)) for i in range(7)])
        server = NavigableLXPServer(MaterializedDocument(tree),
                                    chunk_size=2, depth=2)
        reply = server.fill(("root",))
        validate_fill_reply(reply)

    def test_chunking_leaves_sibling_holes(self):
        tree = Tree("r", [elem("x", str(i)) for i in range(7)])
        server = NavigableLXPServer(MaterializedDocument(tree),
                                    chunk_size=3, depth=2)
        (root,) = server.fill(("root",))
        from repro.buffer import FragHole
        assert isinstance(root.children[-1], FragHole)

    def test_bad_parameters(self):
        doc = MaterializedDocument(elem("r"))
        with pytest.raises(ValueError):
            NavigableLXPServer(doc, chunk_size=0)
        with pytest.raises(ValueError):
            NavigableLXPServer(doc, depth=0)

    def test_unknown_hole(self):
        server = NavigableLXPServer(MaterializedDocument(elem("r")))
        with pytest.raises(LXPProtocolError):
            server.fill(("bogus", 1))

    def test_exports_virtual_document(self):
        med = _mediator()
        result = med.prepare(QUERY)
        server = NavigableLXPServer(result.document, chunk_size=4,
                                    depth=2)
        buffer = BufferComponent(server)
        assert materialize(buffer) == expected_fig4_answer()


class TestRemoteSession:
    def test_remote_client_sees_the_answer(self):
        med = _mediator()
        root, stats = connect_remote(med.prepare(QUERY).document)
        assert root.to_tree() == expected_fig4_answer()
        assert stats.messages > 0
        assert stats.bytes_transferred > 0

    def test_remote_is_lazy_end_to_end(self):
        """A partial browse must not evaluate the whole query."""
        med = _mediator()
        root, stats = connect_remote(med.prepare(QUERY).document,
                                     chunk_size=1, depth=1)
        root.first_child().tag
        partial_navs = med.total_source_navigations()
        root.to_tree()
        assert partial_navs < med.total_source_navigations()

    def test_fragment_channel_beats_rpc_on_messages(self):
        med = _mediator()
        root, frag_stats = connect_remote(med.prepare(QUERY).document,
                                          chunk_size=5, depth=3)
        root.to_tree()

        med2 = _mediator()
        rpc = RPCDocument(med2.prepare(QUERY).document)
        rpc_root = open_virtual_document(rpc)
        assert rpc_root.to_tree() == root.to_tree()
        assert frag_stats.messages * 3 < rpc.stats.messages

    def test_deeper_chunks_cut_round_trips(self):
        def messages(chunk, depth):
            med = _mediator()
            root, stats = connect_remote(med.prepare(QUERY).document,
                                         chunk_size=chunk, depth=depth)
            root.to_tree()
            return stats.messages

        assert messages(10, 4) < messages(1, 1)

    def test_channel_stats_reset(self):
        med = _mediator()
        root, stats = connect_remote(med.prepare(QUERY).document)
        root.to_tree()
        stats.reset()
        assert stats.messages == 0 and stats.virtual_ms == 0.0


_trees = st.recursive(
    st.sampled_from(list("xyz123")).map(leaf),
    lambda kids: st.builds(
        Tree, st.sampled_from(["r", "s"]), st.lists(kids, max_size=3)),
    max_leaves=12,
)


@settings(max_examples=80, deadline=None)
@given(tree=_trees, chunk=st.integers(1, 4), depth=st.integers(1, 3))
def test_remote_buffer_reconstructs_any_document(tree, chunk, depth):
    """Property: the remote stack is transparent for any document and
    any granularity."""
    server = NavigableLXPServer(MaterializedDocument(tree),
                                chunk_size=chunk, depth=depth)
    buffer = BufferComponent(MessageChannel(server))
    assert materialize(buffer) == tree
