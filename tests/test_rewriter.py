"""Tests for the static browsability analyzer and the plan optimizer."""

import pytest

from repro.algebra import (
    Comparison,
    Concatenate,
    Const,
    CreateElement,
    Difference,
    GetDescendants,
    GroupBy,
    Join,
    OrderBy,
    Project,
    Select,
    Source,
    TupleDestroy,
    Var,
    evaluate,
    evaluate_bindings,
    walk_plan,
)
from repro.navigation import Browsability, CountingDocument, \
    MaterializedDocument, materialize
from repro.lazy import BindingsDocument, build_lazy_plan
from repro.rewriter import classify_path, classify_plan, explain_plan, \
    optimize
from repro.xtree import parse_path

from .fixtures import fig4_plan, fig4_sources


class TestAnalyzer:
    def test_source_is_bounded(self):
        assert classify_plan(Source("s", "R")) is Browsability.BOUNDED

    def test_wildcard_paths_are_bounded(self):
        assert classify_path(parse_path("_")) is Browsability.BOUNDED
        assert classify_path(parse_path("_._")) is Browsability.BOUNDED

    def test_labeled_paths_are_browsable(self):
        assert classify_path(parse_path("home")) is Browsability.BROWSABLE
        assert classify_path(parse_path("a*")) is Browsability.BROWSABLE

    def test_sigma_improves_single_labels(self):
        assert classify_path(parse_path("homes.home"),
                             sigma_available=True) is Browsability.BOUNDED
        # Starred paths stay browsable even with sigma.
        assert classify_path(parse_path("_*.b"),
                             sigma_available=True) is Browsability.BROWSABLE

    def test_decapitation_view_is_bounded(self):
        # q_conc of Example 1: first-level children of the source.
        plan = GetDescendants(Source("s", "R"), "R", "_", "X")
        assert classify_plan(plan) is Browsability.BOUNDED

    def test_order_by_is_unbrowsable(self):
        plan = OrderBy(
            GetDescendants(Source("s", "R"), "R", "_", "X"), ["X"])
        assert classify_plan(plan) is Browsability.UNBROWSABLE

    def test_difference_is_unbrowsable(self):
        base = Project(GetDescendants(Source("s", "R"), "R", "_", "X"),
                       ["X"])
        base2 = Project(
            GetDescendants(Source("s2", "R2"), "R2", "_", "X"), ["X"])
        assert classify_plan(Difference(base, base2)) \
            is Browsability.UNBROWSABLE

    def test_fig4_plan_is_browsable(self):
        assert classify_plan(fig4_plan()) is Browsability.BROWSABLE

    def test_class_propagates_upward(self):
        inner = OrderBy(
            GetDescendants(Source("s", "R"), "R", "_", "X"), ["X"])
        outer = CreateElement(
            Concatenate(GroupBy(inner, [], [("X", "Xs")]),
                        ["Xs"], "C"), "a", "C", "E")
        assert classify_plan(outer) is Browsability.UNBROWSABLE

    def test_keyless_groupby_composes_bounded(self):
        # Regression: a wildcard walk into the single group of a
        # *keyless* groupBy is bounded end to end -- the class is the
        # composition of path class and collection-streaming class,
        # not the max over syntactic parts.
        vals = Project(
            GetDescendants(Source("src0", "R"), "R", "_", "V"), ["V"])
        keyless = GroupBy(vals, [], [("V", "LV")])
        plan = Project(
            GetDescendants(keyless, "LV", "_", "X"), ["X"])
        assert classify_plan(plan) is Browsability.BOUNDED

    def test_keyed_groupby_composes_browsable(self):
        # With grouping keys, streaming a group scans a
        # data-dependent stretch of the input: composed class
        # degrades to browsable even under a wildcard walk.
        vals = Project(
            GetDescendants(Source("src0", "R"), "R", "_", "V"), ["V"])
        keyed = GroupBy(vals, ["V"], [("V", "LV")])
        plan = Project(
            GetDescendants(keyed, "LV", "_", "X"), ["X"])
        assert classify_plan(plan) is Browsability.BROWSABLE

    def test_labeled_walk_into_keyless_group_is_browsable(self):
        vals = Project(
            GetDescendants(Source("src0", "R"), "R", "_", "V"), ["V"])
        keyless = GroupBy(vals, [], [("V", "LV")])
        plan = Project(
            GetDescendants(keyless, "LV", "hit", "X"), ["X"])
        assert classify_plan(plan) is Browsability.BROWSABLE

    def test_explain_covers_all_nodes(self):
        text = explain_plan(fig4_plan())
        assert text.count("\n") + 1 == \
            sum(1 for _ in walk_plan(fig4_plan()))


def _homes_chain():
    return GetDescendants(
        GetDescendants(Source("homesSrc", "R"), "R", "homes.home", "H"),
        "H", "zip._", "V")


class TestRules:
    def test_merge_selects(self):
        plan = Select(Select(_homes_chain(),
                             Comparison(Var("V"), "=", Const("91220"))),
                      Comparison(Var("H"), "!=", Const("x")))
        optimized, trace = optimize(plan)
        assert "merge-selects" in trace.applied
        selects = [n for n in walk_plan(optimized)
                   if isinstance(n, Select)]
        assert len(selects) == 1

    def test_select_pushed_below_getdescendants(self):
        plan = Select(_homes_chain(),
                      Comparison(Var("H"), "!=", Const("x")))
        optimized, trace = optimize(plan)
        assert "push-select-below-extension" in trace.applied
        # The select now sits below the zip._ extraction.
        top = optimized
        assert isinstance(top, GetDescendants)
        assert isinstance(top.child, Select)

    def test_select_pushed_into_join_side(self):
        right = GetDescendants(
            GetDescendants(Source("schoolsSrc", "R2"),
                           "R2", "schools.school", "S"),
            "S", "zip._", "W")
        plan = Select(Join(_homes_chain(), right,
                           Comparison(Var("V"), "=", Var("W"))),
                      Comparison(Var("S"), "!=", Const("x")))
        optimized, trace = optimize(plan)
        assert "push-select-into-join" in trace.applied

    def test_cross_side_select_merges_into_join_predicate(self):
        right = GetDescendants(
            GetDescendants(Source("schoolsSrc", "R2"),
                           "R2", "schools.school", "S"),
            "S", "zip._", "W")
        plan = Select(Join(_homes_chain(), right,
                           Comparison(Var("V"), "=", Var("W"))),
                      Comparison(Var("H"), "!=", Var("S")))
        optimized, trace = optimize(plan)
        assert "push-select-into-join" in trace.applied
        joins = [n for n in walk_plan(optimized) if isinstance(n, Join)]
        assert "AND" in str(joins[0].predicate)

    def test_select_pushed_below_groupby_on_keys(self):
        plan = Select(GroupBy(_homes_chain(), ["H"], [("V", "Vs")]),
                      Comparison(Var("H"), "!=", Const("x")))
        optimized, trace = optimize(plan)
        assert "push-select-below-groupby" in trace.applied

    def test_select_on_aggregate_not_pushed(self):
        plan = Select(GroupBy(_homes_chain(), ["H"], [("V", "Vs")]),
                      Comparison(Var("Vs"), "!=", Const("x")))
        optimized, trace = optimize(plan)
        assert "push-select-below-groupby" not in trace.applied

    def test_getdescendants_fusion(self):
        plan = Project(_homes_chain(), ["V"])
        optimized, trace = optimize(plan)
        assert "fuse-get-descendants" in trace.applied
        descendants = [n for n in walk_plan(optimized)
                       if isinstance(n, GetDescendants)]
        assert len(descendants) == 1
        assert str(descendants[0].path) == "homes.home.zip._"

    def test_fusion_blocked_when_intermediate_used(self):
        # $H is also projected: the chain must stay.
        plan = Project(_homes_chain(), ["H", "V"])
        optimized, trace = optimize(plan)
        assert "fuse-get-descendants" not in trace.applied

    def test_fusion_blocked_for_variable_length_inner_path(self):
        inner = GetDescendants(Source("s", "R"), "R", "a*", "X")
        plan = Project(GetDescendants(inner, "X", "b", "Y"), ["Y"])
        optimized, trace = optimize(plan)
        assert "fuse-get-descendants" not in trace.applied

    def test_fusion_blocked_for_nullable_outer_path(self):
        # Regression: getDescendants never yields a zero-step match
        # ($Y is a proper descendant of $X), but a fused "_.a*"
        # reaches X itself through "_" alone -- fusing a nullable
        # outer path invents bindings.
        from repro.xtree import Tree, leaf

        inner = GetDescendants(Source("src", "R"), "R", "_", "X")
        plan = Project(GetDescendants(inner, "X", "a*", "Y"), ["Y"])
        optimized, trace = optimize(plan)
        assert "fuse-get-descendants" not in trace.applied
        tree = Tree("src", [leaf("1")])
        assert list(evaluate_bindings(optimized, {"src": tree})) \
            == list(evaluate_bindings(plan, {"src": tree}))


class TestOptimizerEquivalence:
    def test_fig4_optimization_preserves_answer(self):
        plan = fig4_plan()
        optimized, _ = optimize(plan)
        sources = fig4_sources()
        assert evaluate(optimized, sources) == evaluate(plan, sources)

    def test_optimized_plans_equal_unoptimized_on_bindings(self):
        cases = [
            Select(Select(_homes_chain(),
                          Comparison(Var("V"), "=", Const("91220"))),
                   Comparison(Var("H"), "!=", Const("x"))),
            Project(_homes_chain(), ["V"]),
            Select(GroupBy(_homes_chain(), ["H"], [("V", "Vs")]),
                   Comparison(Var("H"), "!=", Const("x"))),
        ]
        sources = fig4_sources()
        for plan in cases:
            optimized, _ = optimize(plan)
            assert evaluate_bindings(optimized, sources).to_tree() == \
                evaluate_bindings(plan, sources).to_tree()

    def test_optimization_reduces_source_navigations(self):
        # Filtering on the home must prune before the zip extraction.
        plan = TupleDestroy(
            CreateElement(
                Concatenate(
                    GroupBy(
                        Select(_homes_chain(),
                               Comparison(Var("H"), "!=",
                                          Const("La Jolla91220"))),
                        [], [("V", "Vs")]),
                    ["Vs"], "C"),
                "a", "C", "E"),
            "E")

        def navigations(p):
            sources = fig4_sources()
            docs = {u: CountingDocument(MaterializedDocument(t))
                    for u, t in sources.items()}
            from repro.lazy import build_virtual_document
            doc = build_virtual_document(p, docs)
            materialize(doc)
            return sum(d.total for d in docs.values())

        optimized, trace = optimize(plan)
        assert trace.applied  # something fired
        assert navigations(optimized) <= navigations(plan)


# ----------------------------------------------------------------------
# Property: optimization preserves semantics over random plans.
# ----------------------------------------------------------------------

from hypothesis import given, settings

from .test_lazy_equivalence import _plans, _source_tree


@settings(max_examples=120, deadline=None)
@given(tree=_source_tree, plan=_plans())
def test_optimizer_preserves_semantics(tree, plan):
    optimized, _trace = optimize(plan)
    sources = {"src": tree}
    original = evaluate_bindings(plan, sources)
    rewritten = evaluate_bindings(optimized, sources)
    # Fusion may drop unused intermediate variables: the rewritten
    # schema is a subset, and the bindings must agree on it.
    kept = rewritten.variables
    assert set(kept) <= set(original.variables)
    projected = [b.project(kept) for b in original]
    assert list(rewritten) == projected


@settings(max_examples=60, deadline=None)
@given(tree=_source_tree, plan=_plans())
def test_hybrid_optimizer_preserves_semantics(tree, plan):
    optimized, _trace = optimize(plan, hybrid=True)
    sources = {"src": tree}
    original = evaluate_bindings(plan, sources)
    rewritten = evaluate_bindings(optimized, sources)
    kept = rewritten.variables
    projected = [b.project(kept) for b in original]
    assert list(rewritten) == projected


@settings(max_examples=60, deadline=None)
@given(tree=_source_tree, plan=_plans())
def test_optimized_lazy_matches_optimized_eager(tree, plan):
    """The rewritten plan must also evaluate correctly lazily."""
    from repro.lazy import BindingsDocument, build_lazy_plan
    from repro.navigation import MaterializedDocument, materialize
    optimized, _ = optimize(plan)
    sources = {"src": tree}
    expected = evaluate_bindings(optimized, sources).to_tree()
    lazy = build_lazy_plan(optimized,
                           {"src": MaterializedDocument(tree)})
    assert materialize(BindingsDocument(lazy)) == expected
