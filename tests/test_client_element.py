"""Unit tests for the XMLElement client API (over materialized
documents, where behaviour is easiest to pin down exactly)."""

import pytest

from repro.client import XMLElement, open_virtual_document
from repro.navigation import CountingDocument, MaterializedDocument
from repro.xtree import Tree, elem, leaf


def _root(tree):
    return open_virtual_document(MaterializedDocument(tree))


@pytest.fixture
def home_root():
    return _root(elem(
        "home",
        elem("addr", "La Jolla"),
        elem("zip", "91220"),
        elem("zip", "91221"),
        elem("note"),
    ))


class TestBasicAccess:
    def test_tag(self, home_root):
        assert home_root.tag == "home"

    def test_first_child_and_right(self, home_root):
        first = home_root.first_child()
        assert first.tag == "addr"
        assert first.right().tag == "zip"

    def test_children_in_order(self, home_root):
        assert [c.tag for c in home_root.children()] == [
            "addr", "zip", "zip", "note"]

    def test_child_list(self, home_root):
        assert len(home_root.child_list()) == 4

    def test_leaf_detection(self, home_root):
        assert not home_root.is_leaf
        assert home_root.find("note").is_leaf
        assert home_root.find("addr").first_child().is_leaf

    def test_find_first_match(self, home_root):
        assert home_root.find("zip").text() == "91220"

    def test_find_missing(self, home_root):
        assert home_root.find("bath") is None

    def test_find_all(self, home_root):
        assert [z.text() for z in home_root.find_all("zip")] == [
            "91220", "91221"]

    def test_text_concatenates(self, home_root):
        # The T = D | D[T*] model identifies empty elements with text
        # leaves, so <note/> contributes its label to text() -- pinned
        # here as the (paper-inherited) model semantics.
        assert home_root.text() == "La Jolla9122091221note"

    def test_to_tree_round_trip(self, home_root):
        rebuilt = home_root.to_tree()
        assert rebuilt == elem(
            "home", elem("addr", "La Jolla"), elem("zip", "91220"),
            elem("zip", "91221"), elem("note"))

    def test_repr(self, home_root):
        assert "home" in repr(home_root)


class TestLazinessAndMemoization:
    def _counted_root(self, tree):
        counter = CountingDocument(MaterializedDocument(tree))
        return open_virtual_document(counter), counter

    def test_tag_fetched_once(self):
        root, counter = self._counted_root(elem("a", "x"))
        root.tag
        fetches = counter.counters.fetch
        root.tag
        assert counter.counters.fetch == fetches

    def test_first_child_resolved_once(self):
        root, counter = self._counted_root(elem("a", "x", "y"))
        first = root.first_child()
        downs = counter.counters.down
        assert root.first_child() is first
        assert counter.counters.down == downs

    def test_right_resolved_once(self):
        root, counter = self._counted_root(elem("a", "x", "y"))
        first = root.first_child()
        sib = first.right()
        rights = counter.counters.right
        assert first.right() is sib
        assert counter.counters.right == rights

    def test_children_iterator_is_lazy(self):
        root, counter = self._counted_root(
            Tree("a", [leaf(str(i)) for i in range(100)]))
        iterator = root.children()
        next(iterator)
        next(iterator)
        # Two children consumed: far fewer than 100 navigations.
        assert counter.total < 10

    def test_none_results_memoized_too(self):
        root, counter = self._counted_root(elem("a"))
        assert root.first_child() is None
        downs = counter.counters.down
        assert root.first_child() is None
        assert counter.counters.down == downs


class TestEdgeShapes:
    def test_single_leaf_document(self):
        root = _root(leaf("just-text"))
        assert root.is_leaf
        assert root.text() == "just-text"
        assert root.to_tree() == leaf("just-text")

    def test_deep_chain(self):
        tree = leaf("bottom")
        for _ in range(50):
            tree = Tree("n", [tree])
        root = _root(tree)
        node = root
        while not node.is_leaf:
            node = node.first_child()
        assert node.tag == "bottom"

    def test_mixed_content_text(self):
        root = _root(elem("p", "hello ", elem("b", "world"), "!"))
        assert root.text() == "hello world!"
