"""The repo linter (``tools/lint_repro.py``).

Three properties: the tree it gates is clean under it, each check
fires on a minimal synthetic violation, and the inline
``# lint: allow=`` suppressions work.  The linter is loaded from its
file path -- it is a tool, not part of the ``repro`` package.
"""

import importlib.util
from pathlib import Path


REPO = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "lint_repro", REPO / "tools" / "lint_repro.py")
lint_repro = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint_repro)

EVENT_NAMES = lint_repro._load_event_names(REPO)


def _lint_source(tmp_path, source, name="probe.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_repro.lint_file(path, EVENT_NAMES)


def _codes(findings):
    return [f.code for f in findings]


class TestRepoIsClean:
    def test_src_tree_has_no_findings(self, capsys):
        assert lint_repro.main([str(REPO / "src" / "repro")]) == 0
        assert capsys.readouterr().out == ""

    def test_tools_and_examples_are_clean_too(self):
        assert lint_repro.main([str(REPO / "tools"),
                                str(REPO / "examples")]) == 0


class TestLockConsistency:
    LEAKY = """\
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []
        self._count = 0

    def add(self, item):
        with self._lock:
            self._items.append(item)
            self._count += 1

    def sneak(self, item):
        self._items.append(item)
        self._count = 2
"""

    def test_unlocked_mutation_of_guarded_attr(self, tmp_path):
        findings = _lint_source(tmp_path, self.LEAKY)
        assert _codes(findings) == ["L001", "L001"]
        assert sorted(f.message for f in findings) == [
            "Box.sneak mutates self._count outside its lock (guarded "
            "elsewhere in the class)",
            "Box.sneak mutates self._items outside its lock (guarded "
            "elsewhere in the class)",
        ]

    def test_init_and_locked_methods_exempt(self, tmp_path):
        source = self.LEAKY.replace("def sneak", "def _sneak_locked")
        assert _lint_source(tmp_path, source) == []

    def test_unguarded_class_is_fine(self, tmp_path):
        source = """\
class Plain:
    def __init__(self):
        self._items = []

    def add(self, item):
        self._items.append(item)
"""
        assert _lint_source(tmp_path, source) == []


class TestEventNameContract:
    def test_known_literal_passes(self, tmp_path):
        layer, names = sorted(EVENT_NAMES["events"].items())[0]
        source = "tracer.emit(%r, %r, x=1)\n" % (layer,
                                                 sorted(names)[0])
        assert _lint_source(tmp_path, source) == []

    def test_unknown_name_is_e001(self, tmp_path):
        layer = sorted(EVENT_NAMES["events"])[0]
        findings = _lint_source(
            tmp_path, "tracer.emit(%r, 'no_such_event')\n" % layer)
        assert _codes(findings) == ["E001"]

    def test_unknown_layer_is_e001(self, tmp_path):
        findings = _lint_source(
            tmp_path, "tracer.emit('no_such_layer', 'x')\n")
        assert _codes(findings) == ["E001"]

    def test_non_literal_name_is_e002(self, tmp_path):
        layer = sorted(EVENT_NAMES["events"])[0]
        findings = _lint_source(
            tmp_path, "tracer.emit(%r, some_variable)\n" % layer)
        assert _codes(findings) == ["E002"]

    def test_span_checked_against_span_table(self, tmp_path):
        layer = sorted(EVENT_NAMES["spans"])[0]
        findings = _lint_source(
            tmp_path, "tracer.span(%r, 'no_such_span')\n" % layer)
        assert _codes(findings) == ["E001"]


class TestHygiene:
    def test_bare_except_is_x100(self, tmp_path):
        source = """\
try:
    pass
except:
    pass
"""
        assert _codes(_lint_source(tmp_path, source)) == ["X100"]

    def test_typed_except_is_fine(self, tmp_path):
        source = """\
try:
    pass
except ValueError:
    pass
"""
        assert _lint_source(tmp_path, source) == []

    def test_real_sleep_is_x101(self, tmp_path):
        source = "import time\ntime.sleep(0.1)\n"
        assert _codes(_lint_source(tmp_path, source)) == ["X101"]

    def test_sleep_allowed_in_runtime_resilience(self, tmp_path):
        source = "import time\ntime.sleep(0.1)\n"
        assert _lint_source(tmp_path, source,
                            name="runtime/resilience.py") == []


class TestSocketTimeouts:
    def test_create_connection_without_timeout_is_x102(self, tmp_path):
        source = ("import socket\n"
                  "sock = socket.create_connection(('h', 1))\n")
        assert _codes(_lint_source(tmp_path, source)) == ["X102"]

    def test_create_connection_with_timeout_kw_is_fine(self, tmp_path):
        source = ("import socket\n"
                  "sock = socket.create_connection(('h', 1), "
                  "timeout=2.0)\n")
        assert _lint_source(tmp_path, source) == []

    def test_socket_creation_without_settimeout_is_x102(self,
                                                        tmp_path):
        source = ("import socket\n"
                  "sock = socket.socket(socket.AF_INET, "
                  "socket.SOCK_STREAM)\n")
        assert _codes(_lint_source(tmp_path, source)) == ["X102"]

    def test_accept_without_settimeout_is_x102(self, tmp_path):
        source = ("def loop(listener):\n"
                  "    conn, addr = listener.accept()\n")
        assert _codes(_lint_source(tmp_path, source)) == ["X102"]

    def test_settimeout_anywhere_in_file_clears_x102(self, tmp_path):
        source = ("import socket\n"
                  "sock = socket.socket()\n"
                  "sock.settimeout(1.0)\n"
                  "conn, addr = sock.accept()\n")
        assert _lint_source(tmp_path, source) == []

    def test_merely_using_a_passed_socket_is_fine(self, tmp_path):
        source = ("def recv_exact(sock, n):\n"
                  "    return sock.recv(n)\n")
        assert _lint_source(tmp_path, source) == []

    def test_x102_honours_suppression(self, tmp_path):
        source = ("import socket\n"
                  "sock = socket.socket()  # lint: allow=X102\n")
        assert _lint_source(tmp_path, source) == []


class TestSuppression:
    def test_same_line_allow(self, tmp_path):
        source = ("import time\n"
                  "time.sleep(0.1)  # lint: allow=X101\n")
        assert _lint_source(tmp_path, source) == []

    def test_line_above_allow(self, tmp_path):
        source = ("import time\n"
                  "# lint: allow=X101 -- testing the clock itself\n"
                  "time.sleep(0.1)\n")
        assert _lint_source(tmp_path, source) == []

    def test_allow_is_code_specific(self, tmp_path):
        source = ("import time\n"
                  "time.sleep(0.1)  # lint: allow=X100\n")
        assert _codes(_lint_source(tmp_path, source)) == ["X101"]


class TestDriver:
    def test_findings_exit_one_and_render_path_line(self, tmp_path,
                                                    capsys):
        probe = tmp_path / "bad.py"
        probe.write_text("import time\ntime.sleep(1)\n")
        assert lint_repro.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:2: X101" in out


class TestMetricLabelCardinality:
    """E003: metric labels must come from a closed vocabulary.

    A per-session or per-trace label value mints a new Prometheus
    series per session -- a cardinality leak that grows without
    bound.  Identity-shaped data belongs in trace events or the
    flight recorder, never in metric labels.
    """

    def test_unbounded_label_on_inc_is_flagged(self, tmp_path):
        source = ("metrics.counter('kills').inc("
                  "session=session_id)\n")
        assert _codes(_lint_source(tmp_path, source)) == ["E003"]

    def test_unbounded_label_flagged_even_off_a_variable(
            self, tmp_path):
        # The receiver is a plain name, not a factory chain, but
        # `trace_id` is on the always-forbidden list.
        source = "counter.inc(trace_id=tid)\n"
        assert _codes(_lint_source(tmp_path, source)) == ["E003"]

    def test_unknown_label_off_factory_chain_is_flagged(
            self, tmp_path):
        source = ("metrics.counter('hits').inc("
                  "shard_name=name)\n")
        findings = _lint_source(tmp_path, source)
        assert _codes(findings) == ["E003"]
        assert "closed label vocabulary" in findings[0].message

    def test_unknown_label_on_gauge_set_is_flagged(self, tmp_path):
        source = ("metrics.gauge('depth').set(3, "
                  "widget=widget_id)\n")
        assert _codes(_lint_source(tmp_path, source)) == ["E003"]

    def test_bounded_labels_pass(self, tmp_path):
        source = ("metrics.counter('kills').inc(reason='idle')\n"
                  "metrics.histogram('ms').observe(5.0, op='fill')\n"
                  "metrics.gauge('n').set(2, counter='requests')\n")
        assert _lint_source(tmp_path, source) == []

    def test_event_set_is_not_a_metric_write(self, tmp_path):
        # threading.Event.set() shares a method name with Gauge.set;
        # without a factory chain and without kwargs it must not trip.
        source = "stop.set()\n"
        assert _lint_source(tmp_path, source) == []

    def test_unknown_label_off_plain_receiver_passes(self, tmp_path):
        # Off a plain variable the vocabulary check stays quiet (we
        # cannot know it is an instrument); only the always-forbidden
        # identity labels are flagged there.
        source = "thing.set(1, shard_name=name)\n"
        assert _lint_source(tmp_path, source) == []

    def test_suppression_comment_silences_e003(self, tmp_path):
        source = ("metrics.counter('kills').inc("
                  "session=sid)  # lint: allow=E003\n")
        assert _lint_source(tmp_path, source) == []
