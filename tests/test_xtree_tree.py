"""Unit tests for the labeled-ordered-tree data model."""

import pytest

from repro.xtree import (
    Tree,
    TreeConstructionError,
    elem,
    labels_on_path,
    leaf,
    preorder,
    tree_depth,
    tree_from_obj,
    tree_size,
)


class TestConstruction:
    def test_leaf_has_no_children(self):
        node = leaf("91220")
        assert node.is_leaf
        assert node.label == "91220"
        assert node.first_child() is None

    def test_numeric_atoms_are_stringified(self):
        assert leaf(91220).label == "91220"
        assert leaf(3.5).label == "3.5"
        assert leaf(4.0).label == "4"

    def test_elem_wraps_string_children(self):
        node = elem("zip", "91220")
        assert len(node) == 1
        assert node.child(0).label == "91220"

    def test_nested_construction(self):
        home = elem("home", elem("addr", "La Jolla"), elem("zip", 91220))
        assert home.sexpr() == "home[addr[La Jolla], zip[91220]]"

    def test_label_must_be_string(self):
        with pytest.raises(TreeConstructionError):
            Tree(None)

    def test_child_must_be_tree_or_atom(self):
        with pytest.raises(TreeConstructionError):
            Tree("a", [object()])

    def test_children_are_immutable_tuple(self):
        node = elem("a", "x", "y")
        assert isinstance(node.children, tuple)


class TestEquality:
    def test_structural_equality(self):
        a = elem("home", elem("zip", "91220"))
        b = elem("home", elem("zip", "91220"))
        assert a == b
        assert a is not b

    def test_inequality_on_label(self):
        assert elem("a", "x") != elem("b", "x")

    def test_inequality_on_arity(self):
        assert elem("a", "x") != elem("a", "x", "y")

    def test_inequality_on_child_order(self):
        assert elem("a", "x", "y") != elem("a", "y", "x")

    def test_equal_trees_hash_equal(self):
        a = elem("home", elem("zip", "91220"))
        b = elem("home", elem("zip", "91220"))
        assert hash(a) == hash(b)

    def test_identity_distinct_from_equality(self):
        a = elem("a", "x")
        b = elem("a", "x")
        assert a == b and a is not b

    def test_deep_trees_compare_without_recursion_error(self):
        deep_a = leaf("x")
        deep_b = leaf("x")
        for _ in range(5000):
            deep_a = Tree("n", [deep_a])
            deep_b = Tree("n", [deep_b])
        assert deep_a == deep_b


class TestQueries:
    def setup_method(self):
        self.home = elem(
            "home", elem("addr", "La Jolla"), elem("zip", "91220"),
            elem("zip", "91221"),
        )

    def test_find_children(self):
        zips = self.home.find_children("zip")
        assert [z.text() for z in zips] == ["91220", "91221"]

    def test_find_child_first_match(self):
        assert self.home.find_child("zip").text() == "91220"

    def test_find_child_missing(self):
        assert self.home.find_child("bath") is None

    def test_text_concatenates_leaves(self):
        assert self.home.text() == "La Jolla9122091221"

    def test_text_of_leaf_is_label(self):
        assert leaf("hello").text() == "hello"

    def test_descendants_in_document_order(self):
        labels = [d.label for d in self.home.descendants()]
        assert labels == ["addr", "La Jolla", "zip", "91220", "zip", "91221"]


class TestMeasuresAndTraversal:
    def test_tree_size(self):
        assert tree_size(leaf("x")) == 1
        assert tree_size(elem("a", "x", elem("b", "y"))) == 4

    def test_tree_depth(self):
        assert tree_depth(leaf("x")) == 1
        assert tree_depth(elem("a", elem("b", elem("c", "d")))) == 4

    def test_preorder_is_document_order(self):
        t = elem("a", elem("b", "1"), elem("c", "2"))
        assert [n.label for n in preorder(t)] == ["a", "b", "1", "c", "2"]

    def test_labels_on_path(self):
        home = elem("home", elem("addr", "La Jolla"), elem("zip", "91220"))
        assert labels_on_path(home, [1, 0]) == ["zip", "91220"]


class TestConversion:
    def test_to_obj_round_trip(self):
        t = elem("a", elem("b", "1"), "2")
        assert tree_from_obj(t.to_obj()) == t

    def test_obj_of_leaf_is_string(self):
        assert leaf("x").to_obj() == "x"

    def test_deep_copy_is_equal_but_disjoint(self):
        t = elem("a", elem("b", "1"))
        copy = t.deep_copy()
        assert copy == t
        assert copy is not t
        assert copy.child(0) is not t.child(0)

    def test_sexpr_max_depth_elides(self):
        t = elem("a", elem("b", elem("c", "d")))
        assert t.sexpr(max_depth=1) == "a[b[...]]"
