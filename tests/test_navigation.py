"""Unit + property tests for the DOM-VXD navigation model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.navigation import (
    DOWN,
    FETCH,
    RIGHT,
    Browsability,
    CountingDocument,
    MaterializedDocument,
    NavStep,
    NavigableDocument,
    Navigation,
    Select,
    child_labels,
    classify,
    explored_part,
    materialize,
    run_navigation,
)
from repro.xtree import Tree, elem, leaf, tree_size


@pytest.fixture
def doc():
    tree = elem(
        "homes",
        elem("home", elem("addr", "La Jolla"), elem("zip", "91220")),
        elem("home", elem("zip", "91223")),
        elem("note", "sold"),
    )
    return MaterializedDocument(tree)


class TestMaterializedNavigation:
    def test_root_fetch(self, doc):
        assert doc.fetch(doc.root()) == "homes"

    def test_down_right_chain(self, doc):
        first = doc.down(doc.root())
        second = doc.right(first)
        third = doc.right(second)
        assert doc.fetch(first) == "home"
        assert doc.fetch(second) == "home"
        assert doc.fetch(third) == "note"
        assert doc.right(third) is None

    def test_down_on_leaf_is_none(self, doc):
        leaf_ptr = doc.down(doc.down(doc.down(doc.root())))
        assert doc.fetch(leaf_ptr) == "La Jolla"
        assert doc.down(leaf_ptr) is None

    def test_root_has_no_sibling(self, doc):
        assert doc.right(doc.root()) is None

    def test_select_finds_matching_sibling(self, doc):
        first = doc.down(doc.root())
        note = doc.select(first, "note")
        assert doc.fetch(note) == "note"

    def test_select_skips_nonmatching(self, doc):
        first = doc.down(doc.root())
        # 'note' is 2 siblings away; select must skip the second home.
        assert doc.fetch(doc.select(first, "note")) == "note"

    def test_select_exhausted_returns_none(self, doc):
        first = doc.down(doc.root())
        assert doc.select(first, "nosuch") is None

    def test_select_with_callable_predicate(self, doc):
        first = doc.down(doc.root())
        found = doc.select(first, lambda l: l.startswith("no"))
        assert doc.fetch(found) == "note"


class TestNavigationSequences:
    def test_parse_and_str_round_trip(self):
        nav = Navigation.parse("d;f;r;f;d@1;select(note)")
        assert str(nav) == "d;f;r;f;d@1;select(note)"

    def test_linear_navigation(self, doc):
        nav = Navigation.linear([DOWN, FETCH, RIGHT, FETCH])
        result = run_navigation(doc, nav)
        assert result.labels == ["home", "home"]

    def test_resume_from_earlier_pointer(self, doc):
        # d yields home#1 (step 1); r yields home#2 (step 2);
        # then continue from step 1 again with d.
        nav = Navigation.parse("d;r;d@1;f")
        result = run_navigation(doc, nav)
        assert result.labels == ["addr"]

    def test_navigation_past_bottom_yields_none(self, doc):
        nav = Navigation.parse("d;r;r;r;r")  # runs off the sibling list
        result = run_navigation(doc, nav)
        assert result.pointers[-1] is None

    def test_select_step(self, doc):
        nav = Navigation([NavStep(DOWN), NavStep(Select("note")),
                          NavStep(FETCH)])
        assert run_navigation(doc, nav).labels == ["note"]

    def test_unknown_command_text_raises(self):
        with pytest.raises(ValueError):
            Navigation.parse("q")


class TestMaterialize:
    def test_round_trip(self, doc):
        assert materialize(doc) == doc.tree

    def test_child_labels(self, doc):
        assert child_labels(doc, doc.root()) == ["home", "home", "note"]

    def test_max_nodes_guard(self, doc):
        with pytest.raises(RuntimeError):
            materialize(doc, max_nodes=2)


class TestCounting:
    def test_counts_commands(self, doc):
        counted = CountingDocument(doc)
        run_navigation(counted, Navigation.parse("d;f;r;f"))
        counters = counted.counters
        assert counters.down == 1
        assert counters.right == 1
        assert counters.fetch == 2
        assert counters.total == 4

    def test_root_is_free(self, doc):
        counted = CountingDocument(doc)
        counted.root()
        assert counted.total == 0

    def test_reset_and_snapshot(self, doc):
        counted = CountingDocument(doc)
        run_navigation(counted, Navigation.parse("d;f"))
        before = counted.counters.snapshot()
        run_navigation(counted, Navigation.parse("d;f;f"))
        delta = counted.counters - before
        assert delta.total == 3
        counted.reset()
        assert counted.total == 0

    def test_trace_logging(self, doc):
        counted = CountingDocument(doc, log=True)
        run_navigation(counted, Navigation.parse("d;f"))
        assert [cmd for cmd, _ in counted.trace] == ["d", "f"]


class TestExploredPart:
    def test_explored_part_of_prefix_navigation(self):
        tree = elem("r", elem("a", "1"), elem("b", "2"), elem("c", "3"))
        ep = explored_part(tree, Navigation.parse("d;f"))
        # Visited: root + first child; fetched: first child only.
        assert ep.node_count == 2
        rendered = ep.to_tree(tree)
        assert rendered.sexpr() == "?[a]"

    def test_unvisited_siblings_absent(self):
        tree = elem("r", elem("a"), elem("b"), elem("c"))
        ep = explored_part(tree, Navigation.parse("d;r"))
        rendered = ep.to_tree(tree)
        assert rendered.sexpr() == "?[?, ?]"

    def test_full_exploration_recovers_tree_shape(self):
        tree = elem("r", elem("a", "1"), elem("b"))
        nav = Navigation.parse("f;d;f;d;f;r@2;f")
        ep = explored_part(tree, nav)
        assert ep.to_tree(tree) == tree

    def test_explored_nodes_never_exceed_tree(self):
        tree = elem("r", elem("a"), elem("b"))
        ep = explored_part(tree, Navigation.parse("d;r;r;r"))
        assert ep.node_count <= tree_size(tree)


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------

_tree_strategy = st.recursive(
    st.sampled_from(list("abcxyz")).map(leaf),
    lambda children: st.builds(
        Tree,
        st.sampled_from(["r", "s", "t"]),
        st.lists(children, max_size=4),
    ),
    max_leaves=12,
)


@settings(max_examples=150, deadline=None)
@given(tree=_tree_strategy)
def test_materialize_inverts_materialized_document(tree):
    assert materialize(MaterializedDocument(tree)) == tree


@settings(max_examples=150, deadline=None)
@given(tree=_tree_strategy, data=st.data())
def test_explored_part_is_subtree(tree, data):
    commands = data.draw(
        st.lists(st.sampled_from(["d", "r", "f"]), max_size=10))
    nav = Navigation.parse(";".join(commands))
    ep = explored_part(tree, nav)
    assert ep.fetched <= ep.visited
    assert ep.node_count <= tree_size(tree)
    # Navigation length bounds the number of newly visited nodes.
    assert ep.node_count <= len(nav) + 1


class TestBrowsabilityClassifier:
    """Example 1 of the paper, reproduced with hand-built views."""

    @staticmethod
    def _concat_view(sources):
        """q_conc: decapitate both roots, concatenate first-level lists.

        Implemented directly against the navigation interface: a tiny
        hand-written lazy mediator used to validate the classifier
        before the real algebra exists.
        """

        class Concat(NavigableDocument):
            def root(self):
                return ("root",)

            def down(self, p):
                if p == ("root",):
                    first = sources[0].down(sources[0].root())
                    if first is not None:
                        return (0, first)
                    second = sources[1].down(sources[1].root())
                    return (1, second) if second is not None else None
                return None  # children are opaque here

            def right(self, p):
                if p == ("root",):
                    return None
                which, inner = p
                nxt = sources[which].right(inner)
                if nxt is not None:
                    return (which, nxt)
                if which == 0:
                    second = sources[1].down(sources[1].root())
                    return (1, second) if second is not None else None
                return None

            def fetch(self, p):
                if p == ("root",):
                    return "concat"
                which, inner = p
                return sources[which].fetch(inner)

        return Concat()

    @staticmethod
    def _filter_view(sources):
        """q_sigma: first-level children whose label is 'hit'."""

        class Filter(NavigableDocument):
            def root(self):
                return ("root",)

            def _scan(self, inner):
                src = sources[0]
                while inner is not None:
                    if src.fetch(inner) == "hit":
                        return ("kid", inner)
                    inner = src.right(inner)
                return None

            def down(self, p):
                if p == ("root",):
                    src = sources[0]
                    return self._scan(src.down(src.root()))
                return None

            def right(self, p):
                if p == ("root",):
                    return None
                _, inner = p
                return self._scan(sources[0].right(inner))

            def fetch(self, p):
                if p == ("root",):
                    return "filtered"
                return sources[0].fetch(p[1])

        return Filter()

    @staticmethod
    def _sort_view(sources):
        """q_sort: children reordered by label -- must read everything."""

        class Sort(NavigableDocument):
            def __init__(self):
                self._materialized = None

            def _force(self):
                if self._materialized is None:
                    whole = materialize(sources[0])
                    ordered = sorted(whole.children, key=lambda c: c.label)
                    self._materialized = MaterializedDocument(
                        Tree("sorted", ordered))
                return self._materialized

            def root(self):
                return ()

            def down(self, p):
                return self._force().down(p)

            def right(self, p):
                return self._force().right(p)

            def fetch(self, p):
                if p == ():
                    return "sorted"
                return self._force().fetch(p)

        return Sort()

    @staticmethod
    def _early(n):
        kids = [elem("hit", "0")] + [elem("miss", str(i))
                                     for i in range(n - 1)]
        return [Tree("src", kids), Tree("src", kids)]

    @staticmethod
    def _late(n):
        kids = [elem("miss", str(i)) for i in range(n - 1)]
        kids.append(elem("hit", "0"))
        return [Tree("src", kids), Tree("src", kids)]

    def test_concat_is_bounded(self):
        report = classify(self._concat_view, self._early, self._late,
                          Navigation.parse("d;f;r;f"))
        assert report.classification is Browsability.BOUNDED

    def test_filter_is_browsable(self):
        report = classify(self._filter_view, self._early, self._late,
                          Navigation.parse("d;f"))
        assert report.classification is Browsability.BROWSABLE
        # Early placement answers in O(1); late placement scans.
        assert report.late.costs[-1] > report.early.costs[-1]

    def test_sort_is_unbrowsable(self):
        report = classify(self._sort_view, self._early, self._late,
                          Navigation.parse("d;f"))
        assert report.classification is Browsability.UNBROWSABLE


class TestSmallApiCorners:
    def test_navresult_final_pointer(self, doc):
        result = run_navigation(doc, Navigation.parse("d;r;f"))
        assert result.final is not None
        assert doc.fetch(result.final) == "home"

    def test_navresult_final_none_when_no_pointers(self):
        from repro.navigation import NavResult
        assert NavResult(pointers=[None, None]).final is None

    def test_navigation_then_builds_incrementally(self, doc):
        nav = Navigation().then(DOWN).then(FETCH)
        assert str(nav) == "d;f"
        assert run_navigation(doc, nav).labels == ["home"]

    def test_navstep_str_with_source(self):
        step = NavStep(DOWN, 3)
        assert str(step) == "d@3"

    def test_select_str_forms(self):
        assert str(Select("note")) == "select(note)"

        def labeled(label):
            return label == "x"

        assert "labeled" in str(Select(labeled))

    def test_counters_str(self, doc):
        counted = CountingDocument(doc)
        run_navigation(counted, Navigation.parse("d;f"))
        text = str(counted.counters)
        assert "d=1" in text and "total=2" in text

    def test_explored_to_tree_none_when_root_unvisited(self):
        from repro.navigation import ExploredPart
        from repro.xtree import elem
        assert ExploredPart().to_tree(elem("r")) is None
