"""Tests for the XMAS extensions beyond the paper's Figure 3 query:
ORDER BY, sibling element templates, default markers, and the pinned
bag-collection semantics."""

import pytest

from repro.algebra import OrderBy, evaluate, walk_plan
from repro.lazy import build_virtual_document
from repro.navigation import MaterializedDocument, materialize
from repro.xmas import (
    XMASSyntaxError,
    XMASTranslationError,
    parse_xmas,
    translate,
)
from repro.xtree import Tree, elem

from .fixtures import fig4_sources


def _run(query_text, sources=None):
    plan = translate(parse_xmas(query_text))
    return evaluate(plan, sources or fig4_sources())


def _run_lazy(query_text, sources=None):
    plan = translate(parse_xmas(query_text))
    trees = sources or fig4_sources()
    docs = {u: MaterializedDocument(t) for u, t in trees.items()}
    return materialize(build_virtual_document(plan, docs))


class TestOrderBy:
    SRC = {"s": Tree("s", [Tree("r", [
        elem("x", elem("n", "banana"), elem("k", "2")),
        elem("x", elem("n", "apple"), elem("k", "1")),
        elem("x", elem("n", "cherry"), elem("k", "2")),
    ])])}

    def test_ascending(self):
        answer = _run(
            "CONSTRUCT <out> $X {$X} </out> {} "
            "WHERE s r.x $X AND $X n._ $N ORDER BY $N", self.SRC)
        names = [c.find_child("n").text() for c in answer.children]
        assert names == ["apple", "banana", "cherry"]

    def test_descending(self):
        answer = _run(
            "CONSTRUCT <out> $X {$X} </out> {} "
            "WHERE s r.x $X AND $X n._ $N ORDER BY $N DESC", self.SRC)
        names = [c.find_child("n").text() for c in answer.children]
        assert names == ["cherry", "banana", "apple"]

    def test_multi_key_mixed_direction(self):
        answer = _run(
            "CONSTRUCT <out> $X {$X} </out> {} "
            "WHERE s r.x $X AND $X n._ $N AND $X k._ $K "
            "ORDER BY $K DESC, $N ASC", self.SRC)
        names = [c.find_child("n").text() for c in answer.children]
        assert names == ["banana", "cherry", "apple"]

    def test_numeric_ordering(self):
        src = {"s": Tree("s", [Tree("r", [
            elem("x", elem("k", "10")), elem("x", elem("k", "9"))])])}
        answer = _run(
            "CONSTRUCT <out> $X {$X} </out> {} "
            "WHERE s r.x $X AND $X k._ $K ORDER BY $K", src)
        assert [c.text() for c in answer.children] == ["9", "10"]

    def test_order_by_in_plan(self):
        plan = translate(parse_xmas(
            "CONSTRUCT <out> $X {$X} </out> {} "
            "WHERE s r.x $X ORDER BY $X"))
        assert any(isinstance(n, OrderBy) for n in walk_plan(plan))

    def test_order_by_unbound_rejected(self):
        with pytest.raises(XMASTranslationError):
            translate(parse_xmas(
                "CONSTRUCT <out> $X {$X} </out> {} "
                "WHERE s r.x $X ORDER BY $Q"))

    def test_lazy_agrees(self):
        query = ("CONSTRUCT <out> $X {$X} </out> {} "
                 "WHERE s r.x $X AND $X n._ $N ORDER BY $N DESC")
        assert _run_lazy(query, self.SRC) == _run(query, self.SRC)


class TestSiblingTemplates:
    JOINED = """
        CONSTRUCT <report>
                    <homes> $H {$H} </homes>
                    <schools> $S {$S} </schools>
                  </report> {}
        WHERE homesSrc homes.home $H AND $H zip._ $V1
          AND schoolsSrc schools.school $S AND $S zip._ $V2
          AND $V1 = $V2
    """

    def test_two_sections(self):
        answer = _run(self.JOINED)
        assert [c.label for c in answer.children] == ["homes",
                                                      "schools"]
        homes, schools = answer.children
        assert all(c.label == "home" for c in homes.children)
        assert all(c.label == "school" for c in schools.children)

    def test_lazy_agrees(self):
        assert _run_lazy(self.JOINED) == _run(self.JOINED)

    def test_shared_nonempty_marker(self):
        answer = _run("""
            CONSTRUCT <report>
                        <section> $V1 $H {$H} </section> {$V1}
                        <dup> $V1 </dup> {$V1}
                      </report> {}
            WHERE homesSrc homes.home $H AND $H zip._ $V1
        """)
        labels = [c.label for c in answer.children]
        # one section+dup pair per distinct zip, sections first.
        assert labels == ["section", "section", "dup", "dup"]

    def test_differing_markers_rejected(self):
        with pytest.raises(XMASTranslationError):
            translate(parse_xmas("""
                CONSTRUCT <r>
                            <a> $H {$H} </a> {$V1}
                            <b> $H {$H} </b> {$H}
                          </r> {}
                WHERE homesSrc homes.home $H AND $H zip._ $V1
            """))

    def test_deep_nesting_among_siblings_rejected(self):
        with pytest.raises(XMASTranslationError):
            translate(parse_xmas("""
                CONSTRUCT <r>
                            <a> <deep> $H {$H} </deep> </a> {}
                            <b> $H {$H} </b> {}
                          </r> {}
                WHERE homesSrc homes.home $H
            """))

    def test_literal_only_sibling(self):
        answer = _run("""
            CONSTRUCT <r>
                        <title> "homes report" </title>
                        <body> $H {$H} </body>
                      </r> {}
            WHERE homesSrc homes.home $H
        """)
        assert answer.child(0).text() == "homes report"
        assert len(answer.child(1).children) == 2


class TestDefaultMarkers:
    def test_markerless_nested_element_means_one_per_group(self):
        answer = _run("""
            CONSTRUCT <out>
                        <wrap> $H </wrap> {$H}
                      </out> {}
            WHERE homesSrc homes.home $H
        """)
        # <wrap> has no marker: one per enclosing {$H} group member.
        assert [c.label for c in answer.children] == ["wrap", "wrap"]


class TestBagCollectionSemantics:
    def test_product_body_multiplies_collections(self):
        """Pinned: {$H} collects one value per body binding (the
        paper's groupBy operator -- Figure 4 has no distinct), so a
        cartesian-product body multiplies values."""
        answer = _run("""
            CONSTRUCT <report>
                        <homes> $H {$H} </homes>
                        <schools> $S {$S} </schools>
                      </report> {}
            WHERE homesSrc homes.home $H
              AND schoolsSrc schools.school $S
        """)
        homes, schools = answer.children
        # 2 homes x 3 schools product: each home appears 3 times.
        assert len(homes.children) == 6
        assert len(schools.children) == 6


class TestTreePatterns:
    """Footnote 6: XML-QL-style tree patterns desugar to path
    conditions."""

    def test_footnote6_pattern_equals_fig3_query(self):
        pattern_query = parse_xmas("""
            CONSTRUCT <answer>
                        <med_home> $H $S {$S} </med_home> {$H}
                      </answer> {}
            WHERE <homes> $H: <home> <zip>$V1</zip> </home> </homes>
                      IN homesSrc
              AND <schools> $S: <school> <zip>$V2</zip> </school>
                  </schools> IN schoolsSrc
              AND $V1 = $V2
        """)
        path_query = parse_xmas("""
            CONSTRUCT <answer>
                        <med_home> $H $S {$S} </med_home> {$H}
                      </answer> {}
            WHERE homesSrc homes.home $H AND $H zip._ $V1
              AND schoolsSrc schools.school $S AND $S zip._ $V2
              AND $V1 = $V2
        """)
        assert [str(c) for c in pattern_query.conditions] == \
            [str(c) for c in path_query.conditions]
        assert evaluate(translate(pattern_query), fig4_sources()) == \
            evaluate(translate(path_query), fig4_sources())

    def test_pattern_with_root_binder(self):
        query = parse_xmas(
            "CONSTRUCT <out> $R {$R} </out> {} "
            "WHERE $R: <homes> </homes> IN homesSrc")
        answer = evaluate(translate(query), fig4_sources())
        assert answer.child(0).label == "homes"

    def test_deeply_nested_pattern(self):
        query = parse_xmas("""
            CONSTRUCT <out> $V {$V} </out> {}
            WHERE <homes> <home> <zip>$V</zip> </home> </homes>
                  IN homesSrc
        """)
        answer = evaluate(translate(query), fig4_sources())
        assert [c.label for c in answer.children] == ["91220", "91223"]

    def test_anonymous_intermediate_elements(self):
        # No binder on <home>: a fresh internal variable carries it.
        query = parse_xmas(
            "CONSTRUCT <out> $A {$A} </out> {} "
            "WHERE <homes> <home> $A: <addr> </addr> </home> </homes> "
            "IN homesSrc")
        answer = evaluate(translate(query), fig4_sources())
        assert [c.label for c in answer.children] == ["addr", "addr"]

    def test_pattern_mixed_with_plain_conditions(self):
        query = parse_xmas("""
            CONSTRUCT <out> $H {$H} </out> {}
            WHERE <homes> $H: <home> <zip>$V</zip> </home> </homes>
                  IN homesSrc
              AND $V = 91223
        """)
        answer = evaluate(translate(query), fig4_sources())
        assert len(answer.children) == 1

    def test_bare_content_var_directly_under_bound_element(self):
        query = parse_xmas(
            "CONSTRUCT <out> $T {$T} </out> {} "
            "WHERE <homes> <home> $H: <addr> $T </addr> </home> "
            "</homes> IN homesSrc")
        answer = evaluate(translate(query), fig4_sources())
        assert [c.label for c in answer.children] == ["La Jolla",
                                                      "El Cajon"]

    def test_mismatched_pattern_tags_rejected(self):
        with pytest.raises(XMASSyntaxError):
            parse_xmas("CONSTRUCT <out> $X {$X} </out> {} "
                       "WHERE <a> $X: <b> </b> </c> IN src")

    def test_missing_in_rejected(self):
        with pytest.raises(XMASSyntaxError):
            parse_xmas("CONSTRUCT <out> $X {$X} </out> {} "
                       "WHERE <a> $X: <b> </b> </a> src")
