"""Integration tests: the MIX mediator and the thin client library."""

import pytest

from repro.bench import allbooks_plan, two_bookstores
from repro.mediator import MediatorError, MIXMediator
from repro.navigation import MaterializedDocument
from repro.client import open_virtual_document
from repro.oodb import ObjectStore
from repro.relational import Connection, Database
from repro.runtime import EngineConfig
from repro.wrappers import (
    OODBLXPWrapper,
    RelationalLXPWrapper,
    XMLFileWrapper,
)
from repro.xtree import Tree, elem

from .fixtures import expected_fig4_answer

HOMES_XML = ("<homes>"
             "<home><addr>La Jolla</addr><zip>91220</zip></home>"
             "<home><addr>El Cajon</addr><zip>91223</zip></home>"
             "</homes>")
SCHOOLS_XML = ("<schools>"
               "<school><dir>Smith</dir><zip>91220</zip></school>"
               "<school><dir>Bar</dir><zip>91220</zip></school>"
               "<school><dir>Hart</dir><zip>91223</zip></school>"
               "</schools>")
QUERY = """
CONSTRUCT <answer><med_home> $H $S {$S} </med_home> {$H}</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2
"""


@pytest.fixture
def mediator():
    med = MIXMediator()
    med.register_wrapper(
        "homesSrc", XMLFileWrapper("homesSrc", HOMES_XML,
                                   chunk_size=2, depth=2))
    med.register_wrapper(
        "schoolsSrc", XMLFileWrapper("schoolsSrc", SCHOOLS_XML,
                                     chunk_size=2, depth=2))
    return med


class TestMediator:
    def test_virtual_answer_matches_paper(self, mediator):
        assert mediator.prepare(QUERY).materialize() == \
            expected_fig4_answer()

    def test_root_handle_is_free(self, mediator):
        result = mediator.prepare(QUERY)
        assert mediator.total_source_navigations() == 0
        assert result.root.tag == "answer"
        # A constant label costs nothing (Figure 9).
        assert mediator.total_source_navigations() == 0

    def test_partial_browse_touches_partial_source(self, mediator):
        result = mediator.prepare(QUERY)
        first = result.root.first_child()
        partial = mediator.total_source_navigations()
        result.materialize()
        full = mediator.total_source_navigations()
        assert 0 < partial < full

    def test_eager_equals_lazy(self, mediator):
        assert mediator.query_eager(QUERY) == \
            mediator.prepare(QUERY).materialize()

    def test_unregistered_source_rejected(self, mediator):
        with pytest.raises(MediatorError):
            mediator.prepare(
                "CONSTRUCT <a> $X {$X} </a> {} WHERE nowhere p $X")

    def test_duplicate_name_rejected(self, mediator):
        with pytest.raises(MediatorError):
            mediator.register_source(
                "homesSrc",
                MaterializedDocument(elem("x")))

    def test_optimizer_can_be_disabled(self):
        med = MIXMediator(EngineConfig(optimize_plans=False))
        med.register_wrapper(
            "homesSrc", XMLFileWrapper("homesSrc", HOMES_XML))
        med.register_wrapper(
            "schoolsSrc", XMLFileWrapper("schoolsSrc", SCHOOLS_XML))
        result = med.prepare(QUERY)
        assert result.optimization_trace is None
        assert result.materialize() == expected_fig4_answer()

    def test_meters_are_per_source(self, mediator):
        result = mediator.prepare(QUERY)
        result.materialize()
        assert mediator.meters["homesSrc"].total > 0
        assert mediator.meters["schoolsSrc"].total > 0
        mediator.reset_meters()
        assert mediator.total_source_navigations() == 0


class TestViews:
    def test_algebraic_view_composition(self, mediator):
        mediator.register_view(
            "zipview",
            "CONSTRUCT <zips> $V {$V} </zips> {} "
            "WHERE homesSrc homes.home $H AND $H zip._ $V")
        answer = mediator.prepare(
            "CONSTRUCT <out> $Z {$Z} </out> {} WHERE zipview _ $Z"
        ).materialize()
        assert [c.label for c in answer.children] == ["91220", "91223"]

    def test_view_as_stacked_source(self, mediator):
        mediator.register_view(
            "zipview",
            "CONSTRUCT <zips> $V {$V} </zips> {} "
            "WHERE homesSrc homes.home $H AND $H zip._ $V",
            as_source=True)
        answer = mediator.prepare(
            "CONSTRUCT <out> $Z {$Z} </out> {} WHERE zipview _ $Z"
        ).materialize()
        assert [c.label for c in answer.children] == ["91220", "91223"]

    def test_allbooks_view_over_two_stores(self):
        amazon, bn = two_bookstores(10, overlap=0.5)
        med = MIXMediator()
        med.register_wrapper(
            "amazonSrc",
            XMLFileWrapper("amazonSrc", Tree("catalog", amazon)))
        med.register_wrapper(
            "bnSrc", XMLFileWrapper("bnSrc", Tree("catalog", bn)))
        med.register_view("allbooks", allbooks_plan())
        answer = med.prepare(
            "CONSTRUCT <all> $B {$B} </all> {} WHERE allbooks book $B"
        ).materialize()
        assert len(answer.children) == 20


class TestHeterogeneousSources:
    def test_relational_and_xml_join(self):
        db = Database("schooldb")
        table = db.create_table("schools",
                                [("dir", "str"), ("zip", "str")])
        table.insert_many([("Smith", "91220"), ("Bar", "91220"),
                           ("Hart", "91223")])
        med = MIXMediator()
        med.register_wrapper(
            "homesSrc", XMLFileWrapper("homesSrc", HOMES_XML))
        med.register_wrapper(
            "schooldb", RelationalLXPWrapper(Connection(db),
                                             chunk_size=2))
        answer = med.prepare("""
            CONSTRUCT <answer>
              <med_home> $H $S {$S} </med_home> {$H}
            </answer> {}
            WHERE homesSrc homes.home $H AND $H zip._ $V1
              AND schooldb schools._ $S AND $S zip._ $V2
              AND $V1 = $V2
        """).materialize()
        assert len(answer.children) == 2
        first = answer.child(0)
        # home + its two relational schools
        assert [c.label for c in first.children][:1] == ["home"]
        assert len(first.children) == 3

    def test_oodb_source(self):
        store = ObjectStore("unistore")
        store.define_class("Emp", ["name", "zip"])
        store.create("Emp", name="Ann", zip="91220")
        store.create("Emp", name="Bob", zip="91221")
        med = MIXMediator()
        med.register_wrapper("unistore", OODBLXPWrapper(store))
        answer = med.prepare(
            "CONSTRUCT <names> $N {$N} </names> {} "
            "WHERE unistore Emp.object.name._ $N"
        ).materialize()
        assert [c.label for c in answer.children] == ["Ann", "Bob"]


class TestClientLibrary:
    def test_dom_like_traversal(self, mediator):
        root = mediator.query(QUERY)
        med_homes = root.child_list()
        assert [m.tag for m in med_homes] == ["med_home", "med_home"]
        first = med_homes[0]
        assert first.find("home").find("addr").text() == "La Jolla"
        assert len(first.find_all("school")) == 2

    def test_memoized_navigation(self, mediator):
        result = mediator.prepare(QUERY)
        root = result.root
        first = root.first_child()
        navs = mediator.total_source_navigations()
        again = root.first_child()
        assert again is first
        assert mediator.total_source_navigations() == navs

    def test_to_tree_matches_materialize(self, mediator):
        result = mediator.prepare(QUERY)
        assert result.root.to_tree() == expected_fig4_answer()

    def test_virtual_indistinguishable_from_materialized(self, mediator):
        """Section 5's transparency claim: the same client code over
        the virtual document and over a materialized copy behaves
        identically."""
        virtual_root = mediator.prepare(QUERY).root
        materialized_root = open_virtual_document(
            MaterializedDocument(expected_fig4_answer()))

        def render(element):
            if element.is_leaf:
                return element.tag
            return "%s(%s)" % (element.tag, ",".join(
                render(c) for c in element.children()))

        assert render(virtual_root) == render(materialized_root)

    def test_leaf_api(self, mediator):
        root = mediator.query(QUERY)
        leaf = root.first_child().find("home").find("zip").first_child()
        assert leaf.is_leaf
        assert leaf.tag == "91220"
        assert leaf.text() == "91220"


class TestCompositionEquivalence:
    """Algebraic inlining and mediator stacking (Figure 1) must be
    observationally equivalent ways to compose query o view."""

    VIEW = ("CONSTRUCT <zips> <z> $V </z> {$V} </zips> {} "
            "WHERE homesSrc homes.home $H AND $H zip._ $V")
    QUERIES = [
        "CONSTRUCT <out> $Z {$Z} </out> {} WHERE zipview z $Z",
        "CONSTRUCT <out> $T {$T} </out> {} WHERE zipview z._ $T",
        ("CONSTRUCT <out> $Z {$Z} </out> {} WHERE zipview z $Z "
         "AND $Z _ $T AND $T = 91220"),
    ]

    def _mediator(self, as_source):
        med = MIXMediator()
        med.register_wrapper(
            "homesSrc", XMLFileWrapper("homesSrc", HOMES_XML))
        med.register_wrapper(
            "schoolsSrc", XMLFileWrapper("schoolsSrc", SCHOOLS_XML))
        med.register_view("zipview", self.VIEW, as_source=as_source)
        return med

    @pytest.mark.parametrize("query", QUERIES)
    def test_stacked_equals_inlined(self, query):
        inlined = self._mediator(False).prepare(query).materialize()
        stacked = self._mediator(True).prepare(query).materialize()
        assert inlined == stacked

    @pytest.mark.parametrize("query", QUERIES)
    def test_both_equal_eager(self, query):
        med = self._mediator(False)
        assert med.query_eager(query) == \
            med.prepare(query).materialize()


class TestSigmaMediator:
    def test_sigma_mediator_same_answers(self):
        plain = MIXMediator(EngineConfig(use_sigma=False))
        sigma = MIXMediator(EngineConfig(use_sigma=True))
        for med in (plain, sigma):
            med.register_wrapper(
                "homesSrc", XMLFileWrapper("homesSrc", HOMES_XML))
            med.register_wrapper(
                "schoolsSrc", XMLFileWrapper("schoolsSrc", SCHOOLS_XML))
        assert plain.prepare(QUERY).materialize() == \
            sigma.prepare(QUERY).materialize()


class TestExplain:
    def test_explain_report(self, mediator):
        report = mediator.prepare(QUERY).explain()
        assert "plan:" in report
        assert "tupleDestroy" in report
        assert "browsability:" in report
        assert "rewrites:" in report

    def test_explain_without_optimizer(self):
        med = MIXMediator(EngineConfig(optimize_plans=False))
        med.register_wrapper("homesSrc",
                             XMLFileWrapper("homesSrc", HOMES_XML))
        med.register_wrapper("schoolsSrc",
                             XMLFileWrapper("schoolsSrc", SCHOOLS_XML))
        report = med.prepare(QUERY).explain()
        assert "rewrites:" not in report
        assert "browsability:" in report
