"""Language-level property tests: random XMAS queries (within the
supported fragment) over random sources, checked end to end.

For every generated (query, source) pair:

* the query's printed form re-parses to a query with the same plan;
* lazy navigation of the virtual answer equals eager evaluation;
* the answer validates against the query's own inferred DTD.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import evaluate
from repro.lazy import build_virtual_document
from repro.navigation import MaterializedDocument, materialize
from repro.xmas import infer_dtd, parse_xmas, translate
from repro.xtree import Tree, elem

# ----------------------------------------------------------------------
# Sources: src[r[item[k[...], v[...], w[...]]*]]
# ----------------------------------------------------------------------


@st.composite
def _sources(draw):
    n_items = draw(st.integers(0, 6))
    items = []
    for _ in range(n_items):
        items.append(elem(
            "item",
            elem("k", draw(st.sampled_from(["1", "2", "3"]))),
            elem("v", draw(st.sampled_from(["10", "20", "30", "40"]))),
            elem("w", draw(st.sampled_from(["x", "y"]))),
        ))
    return Tree("src", [Tree("r", items)])


# ----------------------------------------------------------------------
# Queries: bodies bind $X (item), $K, $V; heads drawn from the
# supported construction fragment.
# ----------------------------------------------------------------------

_BODY = ("WHERE src r.item $X AND $X k._ $K AND $X v._ $V")

_HEADS = [
    "<out> $X {$X} </out> {}",
    "<out> $V {$V} </out> {}",
    '<out> "label" $K {$K} </out> {}',
    "<out> <g> $K $X {$X} </g> {$K} </out> {}",
    "<out> <g> $K $V {$V} </g> {$K} </out> {}",
    "<out> <ks> $K {$K} </ks> <vs> $V {$V} </vs> </out> {}",
    "<out> <wrap> <inner> $V {$V} </inner> {$V} </wrap> {} </out> {}",
]

_FILTERS = [
    "",
    " AND $V < 25",
    " AND $K = 2",
    " AND $V != 10 AND $K >= 1",
]

_ORDERINGS = ["", " ORDER BY $V", " ORDER BY $K DESC, $V"]


@st.composite
def _queries(draw):
    head = draw(st.sampled_from(_HEADS))
    filters = draw(st.sampled_from(_FILTERS))
    ordering = draw(st.sampled_from(_ORDERINGS))
    return "CONSTRUCT %s %s%s%s" % (head, _BODY, filters, ordering)


@settings(max_examples=200, deadline=None)
@given(source=_sources(), query_text=_queries())
def test_lazy_equals_eager_at_the_language_level(source, query_text):
    plan = translate(parse_xmas(query_text))
    eager_answer = evaluate(plan, {"src": source})
    document = build_virtual_document(
        plan, {"src": MaterializedDocument(source)})
    assert materialize(document) == eager_answer


@settings(max_examples=100, deadline=None)
@given(query_text=_queries())
def test_printed_query_reparses_to_the_same_plan(query_text):
    query = parse_xmas(query_text)
    reparsed = parse_xmas(str(query))
    assert translate(reparsed).pretty() == translate(query).pretty()


@settings(max_examples=150, deadline=None)
@given(source=_sources(), query_text=_queries())
def test_answers_validate_against_inferred_dtd(source, query_text):
    query = parse_xmas(query_text)
    answer = evaluate(translate(query), {"src": source})
    violations = infer_dtd(query).validate(answer)
    assert violations == [], (query_text, answer.sexpr(), violations)


@settings(max_examples=75, deadline=None)
@given(source=_sources(), query_text=_queries())
def test_optimized_queries_agree(source, query_text):
    from repro.rewriter import optimize
    plan = translate(parse_xmas(query_text))
    optimized, _ = optimize(plan)
    sources = {"src": source}
    assert evaluate(optimized, sources) == evaluate(plan, sources)
