"""Unit tests for the eager reference evaluator (paper Section 3
operator semantics, including the worked examples)."""

import pytest

from repro.algebra import (
    Binding,
    BindingList,
    Comparison,
    Concatenate,
    Constant,
    CreateElement,
    Difference,
    Distinct,
    GetDescendants,
    GroupBy,
    Join,
    OrderBy,
    PlanError,
    Project,
    Select,
    Source,
    TupleDestroy,
    Union,
    Var,
    evaluate,
    evaluate_bindings,
    product,
)
from repro.xtree import Tree, elem, leaf

from .fixtures import (
    expected_fig4_answer,
    fig4_plan,
    fig4_sources,
    homes_source,
    schools_source,
)


def _values(binding_list, var):
    return [b.value(var) for b in binding_list]


class TestSourceAndGetDescendants:
    def test_source_singleton(self):
        out = evaluate_bindings(Source("homesSrc", "root"),
                                {"homesSrc": homes_source()})
        assert len(out) == 1
        assert out[0].value("root").label == "homesSrc"

    def test_unknown_source_raises(self):
        with pytest.raises(PlanError):
            evaluate_bindings(Source("nope", "root"), {})

    def test_get_descendants_paper_example(self):
        # getDescendants_{H, zip._ -> V1} on the Section 3 input.
        plan = GetDescendants(
            GetDescendants(Source("homesSrc", "root"),
                           "root", "homes.home", "H"),
            "H", "zip._", "V1")
        out = evaluate_bindings(plan, {"homesSrc": homes_source()})
        assert [v.label for v in _values(out, "V1")] == ["91220", "91223"]
        # The home value is shared, not copied.
        homes_doc = evaluate_bindings(
            Source("homesSrc", "root"),
            {"homesSrc": homes_source()})  # fresh tree; use plan's own
        assert out[0].value("H").label == "home"

    def test_matches_in_document_order(self):
        doc = Tree("src", [elem("r",
                                elem("a", elem("b", "1")),
                                elem("b", "2"),
                                elem("a", elem("b", "3")))])
        plan = GetDescendants(Source("src", "root"), "root", "r._*.b", "X")
        out = evaluate_bindings(plan, {"src": doc})
        assert [v.text() for v in _values(out, "X")] == ["1", "2", "3"]

    def test_recursive_path(self):
        doc = Tree("src", [elem("a", elem("a", elem("a", "leaf")))])
        plan = GetDescendants(Source("src", "root"), "root", "a+", "X")
        out = evaluate_bindings(plan, {"src": doc})
        assert len(out) == 3

    def test_no_matches_yields_empty(self):
        plan = GetDescendants(Source("src", "root"), "root", "zzz", "X")
        out = evaluate_bindings(plan, {"src": Tree("src", [elem("a")])})
        assert len(out) == 0
        assert out.variables == ["root", "X"]


class TestSelectJoinProject:
    def _homes_with_zips(self):
        return GetDescendants(
            GetDescendants(Source("homesSrc", "root"),
                           "root", "homes.home", "H"),
            "H", "zip._", "V")

    def test_select_filters(self):
        plan = Select(self._homes_with_zips(),
                      Comparison(Var("V"), "=", Var("V")))
        out = evaluate_bindings(plan, {"homesSrc": homes_source()})
        assert len(out) == 2
        plan2 = Select(self._homes_with_zips(),
                       Comparison(Var("V"), ">", Var("V")))
        assert len(evaluate_bindings(
            plan2, {"homesSrc": homes_source()})) == 0

    def test_join_on_zip(self):
        sources = fig4_sources()
        left = self._homes_with_zips()
        right = GetDescendants(
            GetDescendants(Source("schoolsSrc", "root2"),
                           "root2", "schools.school", "S"),
            "S", "zip._", "W")
        join = Join(left, right, Comparison(Var("V"), "=", Var("W")))
        out = evaluate_bindings(join, sources)
        # 2 schools match zip 91220, 1 matches 91223.
        assert len(out) == 3
        assert out.variables == ["root", "H", "V", "root2", "S", "W"]

    def test_join_left_major_order(self):
        sources = fig4_sources()
        left = self._homes_with_zips()
        right = GetDescendants(
            GetDescendants(Source("schoolsSrc", "root2"),
                           "root2", "schools.school", "S"),
            "S", "zip._", "W")
        join = Join(left, right, Comparison(Var("V"), "=", Var("W")))
        out = evaluate_bindings(join, sources)
        dirs = [b.value("S").find_child("dir").text() for b in out]
        assert dirs == ["Smith", "Bar", "Hart"]

    def test_product(self):
        sources = fig4_sources()
        left = self._homes_with_zips()
        right = GetDescendants(
            GetDescendants(Source("schoolsSrc", "root2"),
                           "root2", "schools.school", "S"),
            "S", "zip._", "W")
        out = evaluate_bindings(product(left, right), sources)
        assert len(out) == 6  # 2 homes x 3 schools

    def test_join_shared_variables_rejected(self):
        left = self._homes_with_zips()
        with pytest.raises(PlanError):
            Join(left, self._homes_with_zips(),
                 Comparison(Var("V"), "=", Var("V"))).validate()

    def test_project(self):
        plan = Project(self._homes_with_zips(), ["V"])
        out = evaluate_bindings(plan, {"homesSrc": homes_source()})
        assert out.variables == ["V"]

    def test_unbound_variable_rejected(self):
        with pytest.raises(PlanError):
            Project(self._homes_with_zips(), ["Q"]).validate()


class TestGroupBy:
    def _joined(self):
        left = GetDescendants(
            GetDescendants(Source("homesSrc", "r1"),
                           "r1", "homes.home", "H"),
            "H", "zip._", "V1")
        right = GetDescendants(
            GetDescendants(Source("schoolsSrc", "r2"),
                           "r2", "schools.school", "S"),
            "S", "zip._", "V2")
        return Join(left, right, Comparison(Var("V1"), "=", Var("V2")))

    def test_paper_example_groups(self):
        plan = GroupBy(self._joined(), ["H"], [("S", "LSs")])
        out = evaluate_bindings(plan, fig4_sources())
        assert len(out) == 2
        assert out.variables == ["H", "LSs"]
        first, second = out
        assert [s.find_child("dir").text()
                for s in first.value("LSs").children] == ["Smith", "Bar"]
        assert [s.find_child("dir").text()
                for s in second.value("LSs").children] == ["Hart"]

    def test_group_key_order_is_first_occurrence(self):
        plan = GroupBy(self._joined(), ["H"], [("S", "LSs")])
        out = evaluate_bindings(plan, fig4_sources())
        assert [b.value("H").find_child("addr").text() for b in out] \
            == ["La Jolla", "El Cajon"]

    def test_empty_key_groups_everything(self):
        plan = GroupBy(self._joined(), [], [("S", "All")])
        out = evaluate_bindings(plan, fig4_sources())
        assert len(out) == 1
        assert len(out[0].value("All").children) == 3

    def test_empty_key_over_empty_input_yields_one_group(self):
        base = GetDescendants(Source("src", "root"), "root", "nope", "X")
        plan = GroupBy(base, [], [("X", "Xs")])
        out = evaluate_bindings(plan, {"src": Tree("src", [elem("a")])})
        assert len(out) == 1
        assert out[0].value("Xs").children == ()

    def test_multi_aggregation(self):
        plan = GroupBy(self._joined(), ["H"],
                       [("S", "LSs"), ("V2", "Zips")])
        out = evaluate_bindings(plan, fig4_sources())
        assert out.variables == ["H", "LSs", "Zips"]
        assert len(out[0].value("Zips").children) == 2


class TestConstructionOperators:
    def test_concatenate_list_and_value(self):
        # Mirrors concatenate_{H, LSs -> HLSs}.
        left = GetDescendants(
            GetDescendants(Source("homesSrc", "r1"),
                           "r1", "homes.home", "H"),
            "H", "zip._", "V1")
        grouped = GroupBy(left, ["H"], [("V1", "Vs")])
        plan = Concatenate(grouped, ["H", "Vs"], "Out")
        out = evaluate_bindings(plan, {"homesSrc": homes_source()})
        value = out[0].value("Out")
        assert value.label == "list"
        assert [c.label for c in value.children] == ["home", "91220"]

    def test_concatenate_two_values(self):
        base = Constant(Constant(Source("s", "r"), leaf("x"), "X"),
                        leaf("y"), "Y")
        plan = Concatenate(base, ["X", "Y"], "Z")
        out = evaluate_bindings(plan, {"s": Tree("s", [elem("a")])})
        assert [c.label for c in out[0].value("Z").children] == ["x", "y"]

    def test_concatenate_two_lists(self):
        base = Source("s", "r")
        ga = GroupBy(GetDescendants(base, "r", "a._", "A"), [],
                     [("A", "As")])
        plan = Concatenate(ga, ["As", "As"], "Twice")
        doc = Tree("s", [elem("a", "1", "2")])
        out = evaluate_bindings(plan, {"s": doc})
        assert [c.label for c in out[0].value("Twice").children] \
            == ["1", "2", "1", "2"]

    def test_create_element_constant_label(self):
        base = Constant(Source("s", "r"),
                        elem("list", elem("a", "1"), elem("b", "2")), "L")
        plan = CreateElement(base, "wrapper", "L", "E")
        out = evaluate_bindings(plan, {"s": Tree("s", [elem("x")])})
        element = out[0].value("E")
        assert element.label == "wrapper"
        assert [c.label for c in element.children] == ["a", "b"]

    def test_create_element_variable_label(self):
        base = Constant(Constant(Source("s", "r"), leaf("mytag"), "T"),
                        elem("list", elem("c", "3")), "L")
        plan = CreateElement(base, ("var", "T"), "L", "E")
        out = evaluate_bindings(plan, {"s": Tree("s", [elem("x")])})
        assert out[0].value("E").label == "mytag"

    def test_create_element_children_are_subtrees_of_content(self):
        # A non-list content value contributes its *children*.
        base = Constant(Source("s", "r"),
                        elem("home", elem("zip", "1")), "H")
        plan = CreateElement(base, "copy", "H", "E")
        out = evaluate_bindings(plan, {"s": Tree("s", [elem("x")])})
        assert [c.label for c in out[0].value("E").children] == ["zip"]


class TestOrderBySetOps:
    def _letters(self, *labels):
        doc = Tree("src", [Tree("r", [elem("x", l) for l in labels])])
        return (GetDescendants(
            GetDescendants(Source("src", "root"), "root", "r.x", "X"),
            "X", "_", "V"), {"src": doc})

    def test_order_by_string(self):
        plan, sources = self._letters("b", "a", "c")
        out = evaluate_bindings(OrderBy(plan, ["V"]), sources)
        assert [b.value("V").label for b in out] == ["a", "b", "c"]

    def test_order_by_numeric(self):
        plan, sources = self._letters("10", "9", "100")
        out = evaluate_bindings(OrderBy(plan, ["V"]), sources)
        assert [b.value("V").label for b in out] == ["9", "10", "100"]

    def test_order_by_descending(self):
        plan, sources = self._letters("1", "3", "2")
        out = evaluate_bindings(OrderBy(plan, ["V"], descending=True),
                                sources)
        assert [b.value("V").label for b in out] == ["3", "2", "1"]

    def test_order_by_stable(self):
        doc = Tree("src", [Tree("r", [
            elem("x", "k"), elem("y", "k"), elem("z", "k")])])
        plan = GetDescendants(
            GetDescendants(Source("src", "root"), "root", "r._", "X"),
            "X", "_", "V")
        out = evaluate_bindings(OrderBy(plan, ["V"]), {"src": doc})
        assert [b.value("X").label for b in out] == ["x", "y", "z"]

    def test_union(self):
        plan, sources = self._letters("a", "b")
        union = Union(plan, plan)
        out = evaluate_bindings(union, sources)
        assert len(out) == 4

    def test_union_schema_mismatch_rejected(self):
        plan, _ = self._letters("a")
        other = Project(plan, ["V"])
        with pytest.raises(PlanError):
            Union(plan, other).validate()

    def test_difference(self):
        plan, sources = self._letters("a", "b", "c")
        only_a = Select(plan, Comparison(Var("V"), "=", Const_("a")))
        out = evaluate_bindings(Difference(plan, only_a), sources)
        assert [b.value("V").label for b in out] == ["b", "c"]

    def test_distinct(self):
        plan, sources = self._letters("a", "b", "a")
        out = evaluate_bindings(Distinct(Project(plan, ["V"])), sources)
        assert [b.value("V").label for b in out] == ["a", "b"]


def Const_(value):
    from repro.algebra import Const
    return Const(value)


class TestFullPlan:
    def test_fig4_plan_produces_expected_answer(self):
        answer = evaluate(fig4_plan(), fig4_sources())
        assert answer == expected_fig4_answer()

    def test_plan_pretty_contains_all_operators(self):
        text = fig4_plan().pretty()
        for fragment in ["tupleDestroy", "createElement", "groupBy",
                         "concatenate", "join", "getDescendants",
                         "source"]:
            assert fragment in text

    def test_tuple_destroy_needs_singleton(self):
        plan = TupleDestroy(
            Project(GetDescendants(
                GetDescendants(Source("homesSrc", "root"),
                               "root", "homes.home", "H"),
                "H", "zip._", "V"), ["V"]), "V")
        with pytest.raises(PlanError):
            evaluate(plan, {"homesSrc": homes_source()})

    def test_empty_answer_still_constructs_element(self):
        # No homes match an impossible filter; the {} group still
        # produces <answer/>.
        base = GetDescendants(Source("homesSrc", "root"),
                              "root", "nohomes.home", "H")
        grouped = GroupBy(base, [], [("H", "Hs")])
        answer = CreateElement(grouped, "answer", "Hs", "A")
        out = evaluate(TupleDestroy(answer, "A"),
                       {"homesSrc": homes_source()})
        assert out == elem("answer")
