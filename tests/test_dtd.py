"""Tests for DTD inference ([LPVV99] companion feature: BBQ is
DTD-oriented) and PathNFA.final_labels."""

import pytest

from repro.algebra import evaluate
from repro.xmas import infer_dtd, parse_xmas, translate
from repro.xmas.dtd import ANY_NAME, PCDATA
from repro.xtree import compile_path, elem

from .fixtures import fig4_sources

FIG3_QUERY = """
CONSTRUCT <answer><med_home> $H $S {$S} </med_home> {$H}</answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2
"""


class TestFinalLabels:
    @pytest.mark.parametrize("path,expected", [
        ("homes.home", {"home"}),
        ("a|b", {"a", "b"}),
        ("a.b|c.d", {"b", "d"}),
        ("a.b*", {"a", "b"}),      # the star can be empty
        ("a.b+", {"b"}),
        ("(a|b).c?", {"a", "b", "c"}),
    ])
    def test_concrete_finals(self, path, expected):
        assert compile_path(path).final_labels() == frozenset(expected)

    @pytest.mark.parametrize("path", ["_", "zip._", "a._*"])
    def test_wildcard_final_is_none(self, path):
        assert compile_path(path).final_labels() is None


class TestInference:
    def test_fig3_dtd(self):
        dtd = infer_dtd(parse_xmas(FIG3_QUERY))
        text = dtd.render()
        assert "<!ELEMENT answer (med_home*)>" in text
        assert "<!ELEMENT med_home (home, school*)>" in text
        assert "<!ELEMENT home ANY>" in text
        assert "<!ELEMENT school ANY>" in text

    def test_answer_validates_against_inferred_dtd(self):
        query = parse_xmas(FIG3_QUERY)
        dtd = infer_dtd(query)
        answer = evaluate(translate(query), fig4_sources())
        assert dtd.validate(answer) == []

    def test_violations_detected(self):
        dtd = infer_dtd(parse_xmas(FIG3_QUERY))
        assert dtd.validate(elem("wrong_root"))
        assert dtd.validate(elem("answer", elem("oops")))
        # A med_home without its home child:
        bad = elem("answer", elem("med_home", elem("school")))
        assert dtd.validate(bad)

    def test_literal_becomes_pcdata(self):
        query = parse_xmas(
            'CONSTRUCT <a> "hi" $X {$X} </a> {} WHERE s p.q $X')
        dtd = infer_dtd(query)
        decl = next(d for d in dtd.declarations if d.name == "a")
        assert decl.particles[0].names == (PCDATA,)
        assert decl.particles[1].names == ("q",)
        assert decl.particles[1].occurs == "*"

    def test_wildcard_variable_is_any(self):
        query = parse_xmas(
            "CONSTRUCT <a> $X {$X} </a> {} WHERE s p._ $X")
        dtd = infer_dtd(query)
        decl = next(d for d in dtd.declarations if d.name == "a")
        assert decl.particles[0].names == (ANY_NAME,)
        # ANY admits anything:
        assert dtd.validate(elem("a", elem("whatever"), "text")) == []

    def test_alternation_variable_names(self):
        query = parse_xmas(
            "CONSTRUCT <a> $X {$X} </a> {} WHERE s p.(b|c) $X")
        dtd = infer_dtd(query)
        decl = next(d for d in dtd.declarations if d.name == "a")
        assert decl.particles[0].names == ("b", "c")
        assert "(b | c)*" in decl.render()

    def test_nested_markerless_element_occurs_once(self):
        query = parse_xmas(
            "CONSTRUCT <out> <wrap> $H </wrap> {$H} </out> {} "
            "WHERE s p.home $H")
        dtd = infer_dtd(query)
        out = next(d for d in dtd.declarations if d.name == "out")
        assert out.particles[0].render() == "wrap*"
        wrap = next(d for d in dtd.declarations if d.name == "wrap")
        assert wrap.particles[0].render() == "home"

    def test_empty_head_element(self):
        query = parse_xmas(
            "CONSTRUCT <a> </a> {} WHERE s p $X")
        dtd = infer_dtd(query)
        assert "<!ELEMENT a EMPTY>" in dtd.render()
        assert dtd.validate(elem("a")) == []

    def test_sibling_templates(self):
        query = parse_xmas("""
            CONSTRUCT <report>
                        <homes> $H {$H} </homes>
                        <schools> $S {$S} </schools>
                      </report> {}
            WHERE homesSrc homes.home $H AND $H zip._ $V1
              AND schoolsSrc schools.school $S AND $S zip._ $V2
              AND $V1 = $V2
        """)
        dtd = infer_dtd(query)
        report = next(d for d in dtd.declarations
                      if d.name == "report")
        assert report.render() == \
            "<!ELEMENT report (homes, schools)>"
        answer = evaluate(translate(query), fig4_sources())
        assert dtd.validate(answer) == []


class TestBBQSchema:
    def test_schema_command(self):
        from repro.client.bbq import BBQSession
        from repro.mediator import MIXMediator
        from repro.navigation import MaterializedDocument
        med = MIXMediator()
        for url, tree in fig4_sources().items():
            med.register_source(url, MaterializedDocument(tree))
        session = BBQSession(med)
        assert session.execute("schema").startswith("error:")
        session.execute("query " + FIG3_QUERY.replace("\n", " "))
        schema = session.execute("schema")
        assert "<!ELEMENT med_home (home, school*)>" in schema
