"""Smoke tests: every shipped example runs cleanly, and the top-level
documentation stays consistent with the repository contents."""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True, text=True, timeout=300, cwd=REPO_ROOT)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    expected = {"quickstart.py", "bookstore_integration.py",
                "web_browsing.py", "heterogeneous_join.py",
                "bbq_browser.py", "remote_session.py",
                "unreliable_source.py", "serve_demo.py"}
    assert expected <= set(EXAMPLES)


def _read(name):
    with open(os.path.join(REPO_ROOT, name)) as handle:
        return handle.read()


class TestDocsConsistency:
    def test_design_indexes_every_experiment_file(self):
        design = _read("DESIGN.md")
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        for name in os.listdir(bench_dir):
            if name.startswith("test_bench_"):
                assert name in design, \
                    "%s missing from DESIGN.md's experiment index" % name

    def test_experiments_covers_all_ids(self):
        experiments = _read("EXPERIMENTS.md")
        for exp_id in ["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
                       "E9", "E10", "E11"]:
            assert ("## %s " % exp_id) in experiments \
                or ("## %s —" % exp_id) in experiments, exp_id

    def test_experiments_tables_match_results_dir(self):
        experiments = _read("EXPERIMENTS.md")
        results = os.path.join(REPO_ROOT, "benchmarks", "results")
        # Every quoted result table should still exist on disk.
        for name in ["E2_browsability", "E3_lazy_vs_eager",
                     "E4_granularity_full_scan", "E7_cache_ablation",
                     "E10_remote_client", "E11_hybrid"]:
            assert os.path.exists(
                os.path.join(results, name + ".txt")), name

    def test_readme_mentions_examples(self):
        readme = _read("README.md")
        for name in EXAMPLES:
            assert name in readme, \
                "%s not documented in README" % name

    def test_version_consistent(self):
        import repro
        pyproject = _read("pyproject.toml")
        assert 'version = "%s"' % repro.__version__ in pyproject
