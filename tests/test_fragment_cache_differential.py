"""Differential proof for the cross-session fragment cache (PR 8).

The fragment cache's contract is *observational equivalence*: with
``EngineConfig(fragment_cache=True)`` every answer must be
byte-identical to the lazy reference run, whether the process-wide
``FragmentStore`` is cold (first session populates it) or warm (a
later session grafts stored fragments, or adopts a complete view,
instead of re-issuing LXP fills).  This suite checks the contract:

* mediator-level: cache-off vs cache-on-cold vs cache-on-warm over
  the same store, byte-identical answers, and the warm session's
  wrapper traffic collapsing to zero on a fully harvested view,
* subtree grafting: a partially explored cold session leaves no
  whole view behind, yet the warm session still *hits* on every
  region the cold one filled,
* the accounting invariant ``hits + misses == successful demands``,
  both structurally at the store and via the ``fragcache.fill``
  span count at the mediator,
* randomized plans (hypothesis, reusing the lazy-equivalence
  strategies) against the cache-off run and the eager oracle,

and proves the *default* path is untouched: with ``fragment_cache``
off (the default) ``repro.runtime.fragcache`` is never even imported,
no ``fragcache.*`` event is ever emitted, and ``stats()`` /
``explain()`` carry no fragment-cache section.
"""

import os
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.algebra import evaluate_bindings
from repro.buffer.component import BufferComponent
from repro.lazy import BindingsDocument, build_lazy_plan
from repro.mediator import MIXMediator
from repro.navigation import materialize
from repro.runtime import EngineConfig, ExecutionContext, Tracer
from repro.runtime.fragcache import (
    FragmentStore,
    fragment_cached,
    reset_shared_store,
    shared_store,
)
from repro.wrappers import XMLFileWrapper
from repro.wrappers.base import buffered
from repro.xtree import to_xml

from .test_lazy_equivalence import _plans, _source_tree

WALKS = int(os.environ.get("DIFF_WALKS", "25"))
REPO = Path(__file__).resolve().parent.parent

# two children per home: at chunk_size=2 every home ships hole-free,
# so the demand scan of the home list drains the *whole* export and
# the cold session harvests a complete view
HOMES_XML = (
    "<homes>"
    + "".join("<home><addr>a%d</addr><price>p%d</price></home>"
              % (i, i) for i in range(8))
    + "</homes>")

HOMES_QUERY = ("CONSTRUCT <hits> $A {$A} </hits> {} "
               "WHERE homesSrc homes.home.addr._ $A")


@pytest.fixture(autouse=True)
def _fresh_shared_store():
    """The mediator shares one process-wide store; isolate tests."""
    reset_shared_store()
    yield
    reset_shared_store()


def _homes_mediator(fragment_cache, tracer=None):
    med = MIXMediator(EngineConfig(fragment_cache=fragment_cache),
                      tracer=tracer)
    med.register_wrapper(
        "homesSrc", XMLFileWrapper("homesSrc", HOMES_XML,
                                   chunk_size=2))
    return med


def _run_homes(fragment_cache, tracer=None):
    med = _homes_mediator(fragment_cache, tracer=tracer)
    result = med.prepare(HOMES_QUERY)
    xml = to_xml(result.materialize())
    return med, result, xml


# ----------------------------------------------------------------------
# Mediator-level: off == cold == warm, byte for byte
# ----------------------------------------------------------------------

class TestColdWarmEquivalence:
    def test_off_cold_warm_byte_identical(self):
        _, _, off = _run_homes(False)
        _, cold_result, cold = _run_homes(True)
        _, warm_result, warm = _run_homes(True)
        assert cold == off
        assert warm == off
        assert cold_result.stats()["fragcache"]["cached_sources"] == 1
        assert warm_result.stats()["fragcache"]["cached_sources"] == 1

    def test_warm_session_issues_no_source_fills(self):
        """A fully harvested view is adopted whole: the second
        session never opens an LXP dialogue at all."""
        wrapper_cold = XMLFileWrapper("homesSrc", HOMES_XML,
                                      chunk_size=2)
        med_cold = MIXMediator(EngineConfig(fragment_cache=True))
        med_cold.register_wrapper("homesSrc", wrapper_cold)
        off = to_xml(med_cold.prepare(HOMES_QUERY).materialize())
        assert wrapper_cold.stats.fills > 0

        wrapper_warm = XMLFileWrapper("homesSrc", HOMES_XML,
                                      chunk_size=2)
        med_warm = MIXMediator(EngineConfig(fragment_cache=True))
        med_warm.register_wrapper("homesSrc", wrapper_warm)
        warm = to_xml(med_warm.prepare(HOMES_QUERY).materialize())
        assert warm == off
        assert wrapper_warm.stats.fills == 0
        counters = shared_store().stats.snapshot()
        assert counters["view_stores"] >= 1
        assert counters["view_adoptions"] >= 1

    def test_explain_reports_decisions(self):
        _, result, _ = _run_homes(True)
        text = result.explain()
        assert "fragment cache:" in text
        assert "cached homesSrc" in text

    def test_store_is_shared_across_mediators(self):
        med_a = _homes_mediator(True)
        med_b = _homes_mediator(True)
        assert med_a.config.fragment_cache
        assert med_b.config.fragment_cache
        # both registered against the same process-wide store
        assert shared_store().stats.snapshot()["hits"] == 0


# ----------------------------------------------------------------------
# Subtree grafting: partial cold session, warm session hits
# ----------------------------------------------------------------------

class TestSubtreeGraft:
    def _cached_server(self, store):
        wrapper = XMLFileWrapper("src", HOMES_XML, chunk_size=2)
        server, whole, decision = fragment_cached(
            "src", wrapper, store=store)
        assert decision.cached, decision
        return wrapper, server, whole

    def test_partial_cold_then_warm_hits(self):
        store = FragmentStore(shards=4)
        wrapper, cold, whole = self._cached_server(store)
        assert whole is None
        root = cold.get_root()
        reply = cold.fill(root.hole_id)
        # stop here: the view is not drained, so no whole view is
        # stored, but the filled region is
        assert store.entry_count() >= 1
        before = store.stats.snapshot()
        assert before["hits"] == 0
        assert before["misses"] == 1

        wrapper2, warm, whole2 = self._cached_server(store)
        assert whole2 is None  # incomplete view: no adoption
        root2 = warm.get_root()
        reply2 = warm.fill(root2.hole_id)
        assert reply2 == reply
        after = store.stats.snapshot()
        assert after["hits"] == 1
        # the warm fill never reached the second wrapper
        assert wrapper2.stats.fills == 0

    def test_warm_full_walk_matches_cold(self):
        """Drain the whole export twice; the warm pass is answered
        entirely from the store and yields identical fragments."""
        from repro.buffer.lxp import reply_holes

        def drain(server):
            replies = {}
            frontier = [server.get_root().hole_id]
            while frontier:
                hole = frontier.pop()
                reply = server.fill(hole)
                replies[hole] = reply
                frontier.extend(reply_holes(reply))
            return replies

        store = FragmentStore(shards=4)
        wrapper_a, cold, _ = self._cached_server(store)
        cold_replies = drain(cold)
        wrapper_b, warm, _ = self._cached_server(store)
        warm_replies = drain(warm)
        assert warm_replies == cold_replies
        assert wrapper_b.stats.fills == 0
        counters = store.stats.snapshot()
        assert counters["hits"] == len(cold_replies)
        assert counters["misses"] == len(cold_replies)


# ----------------------------------------------------------------------
# The accounting invariant: hits + misses == successful demands
# ----------------------------------------------------------------------

class TestAccountingInvariant:
    def test_structural_invariant_at_the_store(self):
        store = FragmentStore(shards=2)
        demands = 0
        for round_ in range(3):
            for key in ("k1", "k2", "k3"):
                store.fill_through(("v", key), 0, lambda: [])
                demands += 1
        counters = store.stats.snapshot()
        assert counters["hits"] + counters["misses"] == demands
        assert counters["hits"] == 6
        assert counters["misses"] == 3

    def test_failed_demands_count_neither(self):
        store = FragmentStore(shards=1)

        def boom():
            raise RuntimeError("source down")

        with pytest.raises(RuntimeError):
            store.fill_through(("v", "k"), 0, boom)
        counters = store.stats.snapshot()
        assert counters["hits"] == 0
        assert counters["misses"] == 0
        # the key is refillable after the failure
        store.fill_through(("v", "k"), 0, lambda: [])
        counters = store.stats.snapshot()
        assert counters["hits"] + counters["misses"] == 1

    def test_mediator_invariant_via_fill_spans(self):
        tracer = Tracer(record=True)
        _, result, _ = _run_homes(True, tracer=tracer)
        demands = sum(1 for e in tracer.events
                      if e.layer == "fragcache"
                      and e.event == "fill.begin")
        counters = result.stats()["fragcache"]
        assert demands > 0
        assert counters["hits"] + counters["misses"] == demands


# ----------------------------------------------------------------------
# Randomized plans: cache-on cold/warm == cache-off == eager oracle
# ----------------------------------------------------------------------

def _materialized_cached(plan, tree, store):
    """One session over ``store`` with the caching seam installed,
    mirroring the mediator's wiring (buffer -> caching -> wrapper)."""
    context = ExecutionContext.create(
        EngineConfig(fragment_cache=True))
    wrapper = XMLFileWrapper("src", tree.child(0))
    server, whole, _ = fragment_cached("src", wrapper, store=store)
    if whole is not None:
        buffer = BufferComponent.prefilled(whole, name="src")
    else:
        buffer = buffered(server, name="src")
    lazy = build_lazy_plan(plan, {"src": buffer}, context)
    try:
        return materialize(BindingsDocument(lazy))
    finally:
        context.close()


def _materialized_plain(plan, tree):
    context = ExecutionContext.create(EngineConfig())
    wrapper = XMLFileWrapper("src", tree.child(0))
    lazy = build_lazy_plan(plan, {"src": buffered(wrapper)}, context)
    try:
        return materialize(BindingsDocument(lazy))
    finally:
        context.close()


@settings(max_examples=WALKS, deadline=None)
@given(tree=_source_tree, plan=_plans())
def test_random_plans_cache_is_observationally_silent(tree, plan):
    oracle = evaluate_bindings(plan, {"src": tree}).to_tree()
    off = _materialized_plain(plan, tree)
    store = FragmentStore(shards=4)
    cold = _materialized_cached(plan, tree, store)
    warm = _materialized_cached(plan, tree, store)
    assert off == oracle
    assert cold == oracle
    assert warm == oracle


# ----------------------------------------------------------------------
# The default path is untouched
# ----------------------------------------------------------------------

class TestDefaultPathUnchanged:
    def test_fragment_cache_defaults_off(self):
        assert EngineConfig().fragment_cache is False

    def test_no_fragcache_events_or_stats_by_default(self):
        tracer = Tracer(record=True)
        _, result, _ = _run_homes(False, tracer=tracer)
        assert all(e.layer != "fragcache" for e in tracer.events)
        assert "fragcache" not in result.stats()
        assert "fragment cache:" not in result.explain()
        med = _homes_mediator(False)
        assert med.fragcache_decisions == ()

    def test_fragcache_module_not_imported_by_default(self):
        """The default query path must not even import the cache."""
        import subprocess
        import sys
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro import MIXMediator, XMLFileWrapper\n"
            "med = MIXMediator()\n"
            "med.register_wrapper('homesSrc', "
            "XMLFileWrapper('homesSrc', '''%s'''))\n"
            "med.query('CONSTRUCT <a> $H </a> {$H} "
            "WHERE homesSrc homes.home $H')\n"
            "assert 'repro.runtime.fragcache' not in sys.modules, "
            "'fragcache imported on default path'\n"
            % HOMES_XML)
        proc = subprocess.run([sys.executable, "-c", script],
                              cwd=str(REPO), capture_output=True,
                              text=True)
        assert proc.returncode == 0, proc.stderr
