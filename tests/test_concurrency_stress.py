"""Deterministic concurrency stress tests.

Several client sessions browse shared sources at once, with scripted
transient failures and a shared fake clock, exercising every lock
added for batched/concurrent navigation:

* no deadlock -- every worker joins within a hard wall-clock bound
  (enforced in-test with ``Thread.join(timeout)`` so the guard works
  even where pytest-timeout is not installed; CI adds a belt-and-
  braces ``@pytest.mark.timeout``);
* no duplicate hole fills -- each spliced hole id lands in an open
  tree exactly once per session;
* stats invariants -- ``demand_fills + prefetch_fills`` equals the
  buffer's fill count, and a channel never uses more round trips than
  navigation commands.

Failures are injected through :class:`FailureSchedule`, whose step
consumption is atomic: exactly the scripted number of faults is
injected no matter how the threads interleave.
"""

import threading

import pytest

from repro.buffer import BufferComponent, TreeLXPServer
from repro.runtime import RetryPolicy
from repro.runtime.resilience import ResilientLXPServer
from repro.testing import FailureSchedule, FakeClock, FlakyLXPServer
from repro.wrappers.base import buffered
from repro.xtree import Tree, elem

from .fixtures import homes_of_size

JOIN_TIMEOUT_S = 30.0
SESSIONS = 4


def _homes_tree(n_homes):
    return homes_of_size(n_homes)["homesSrc"]


def _run_sessions(worker, n=SESSIONS):
    """Run ``worker(index)`` in ``n`` threads; fail on deadlock or any
    worker exception."""
    errors = []
    barrier = threading.Barrier(n)

    def body(index):
        try:
            barrier.wait(timeout=JOIN_TIMEOUT_S)
            worker(index)
        except BaseException as err:  # noqa: BLE001 - reported below
            errors.append(err)

    threads = [threading.Thread(target=body, args=(i,), daemon=True)
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=JOIN_TIMEOUT_S)
    stuck = [t for t in threads if t.is_alive()]
    assert not stuck, "deadlock: %d session(s) still running" % len(stuck)
    if errors:
        raise errors[0]
    return errors


def _scan_all(buffer):
    """Depth-first scan of the whole buffered document, label list."""
    labels = []

    def walk(pointer):
        labels.append(buffer.fetch(pointer))
        child = buffer.down(pointer)
        while child is not None:
            walk(child)
            child = buffer.right(child)

    walk(buffer.root())
    return labels


class _SpliceAudit:
    """Record every splice of a buffer; duplicate hole ids are the
    'double fill' bug the prefetcher's in-flight table must prevent."""

    def __init__(self, buffer):
        self.seen = []
        self._lock = threading.Lock()
        original = buffer._splice

        def audited(hole, fragments):
            with self._lock:
                self.seen.append(hole.hole_id)
            original(hole, fragments)

        buffer._splice = audited

    def assert_no_duplicates(self):
        assert len(self.seen) == len(set(self.seen)), (
            "hole filled twice: %r"
            % [h for h in set(self.seen) if self.seen.count(h) > 1])


@pytest.mark.timeout(60)
class TestSharedSourceStress:
    def _expected_labels(self):
        server = TreeLXPServer(_homes_tree(12), chunk_size=3, depth=2)
        return _scan_all(BufferComponent(server))

    def test_concurrent_sessions_with_flaky_shared_source(self):
        """Each session owns a buffer; all share one flaky LXP server,
        one failure schedule and one fake clock."""
        expected = self._expected_labels()
        clock = FakeClock()
        schedule = FailureSchedule.first(SESSIONS * 3)
        tree = _homes_tree(12)
        flaky = FlakyLXPServer(
            TreeLXPServer(tree, chunk_size=3, depth=2), schedule)
        # The schedule is shared: under an adversarial interleaving a
        # single operation may absorb every scripted failure, so the
        # per-operation retry budget must exceed the total.
        policy = RetryPolicy(max_attempts=SESSIONS * 3 + 2,
                             base_delay_ms=1.0)
        audits = []
        results = [None] * SESSIONS

        def session(index):
            resilient = ResilientLXPServer(
                flaky, name="shared#%d" % index,
                policy=policy, clock=clock)
            buffer = buffered(resilient, workers=2)
            audits.append(_SpliceAudit(buffer))
            try:
                results[index] = _scan_all(buffer)
            finally:
                buffer.close()

        _run_sessions(session)
        assert results == [expected] * SESSIONS
        for audit in audits:
            audit.assert_no_duplicates()
        assert schedule.failures == SESSIONS * 3

    def test_prefetch_fill_accounting_balances(self):
        """demand_fills + prefetch_fills == buffer fills, per session,
        under concurrent prefetch workers."""
        tree = _homes_tree(16)
        buffers = []

        def session(index):
            server = TreeLXPServer(tree, chunk_size=2, depth=1)
            buffer = buffered(server, prefetch=3, workers=2)
            buffers.append(buffer)
            _scan_all(buffer)

        _run_sessions(session)
        for buffer in buffers:
            buffer.close()
            pf = buffer.prefetch_stats
            assert pf.demand_fills + pf.prefetch_fills \
                == buffer.stats.fills
            assert pf.stalls <= buffer.stats.fills

    def test_batched_sessions_never_exceed_one_message_per_command(self):
        """Round trips <= commands for every concurrent batched
        session (shared metered channel semantics)."""
        from repro.mediator import MIXMediator
        from repro.navigation import MaterializedDocument
        from repro.runtime import EngineConfig

        tree = _homes_tree(10)
        stats_list = []
        lock = threading.Lock()

        def session(index):
            med = MIXMediator(EngineConfig(batch_navigations=True,
                                           prefetch=4))
            med.register_source("homesSrc", MaterializedDocument(tree))
            result = med.prepare(
                "CONSTRUCT <answer> $H {$H} </answer> {}"
                " WHERE homesSrc homes.home $H")
            root, stats = result.connect_remote(chunk_size=2, depth=2)
            for child in root.children():
                for grandchild in child.children():
                    grandchild.tag
            with lock:
                stats_list.append(stats)

        _run_sessions(session)
        assert len(stats_list) == SESSIONS
        for stats in stats_list:
            assert 0 < stats.messages <= stats.commands

    def test_shared_mediator_concurrent_queries(self):
        """One mediator, many sessions preparing and materializing the
        same query concurrently (catalog and context registries are
        shared state)."""
        from repro.mediator import MIXMediator
        from repro.navigation import MaterializedDocument
        from repro.runtime import EngineConfig

        from .fixtures import (
            expected_fig4_answer,
            fig4_plan,
            homes_source,
            schools_source,
        )

        med = MIXMediator(EngineConfig(fanout_workers=2))
        med.register_source("homesSrc",
                            MaterializedDocument(homes_source()))
        med.register_source("schoolsSrc",
                            MaterializedDocument(schools_source()))
        expected = expected_fig4_answer()
        answers = [None] * SESSIONS

        def session(index):
            answers[index] = med.prepare(fig4_plan()).materialize()

        _run_sessions(session)
        assert answers == [expected] * SESSIONS


def _tiny_tree():
    return Tree("srcdoc", [elem("a", elem("b", "1"), elem("c", "2"))])


@pytest.mark.timeout(60)
def test_worker_failure_is_raised_on_demand_not_swallowed():
    """A prefetch worker that hits a hard failure must surface it at
    the demanding navigation, not lose it in the pool."""
    schedule = FailureSchedule.always()
    flaky = FlakyLXPServer(TreeLXPServer(_tiny_tree(), chunk_size=1,
                                         depth=1), schedule)
    buffer = buffered(flaky, workers=2)
    try:
        with pytest.raises(Exception, match="injected transient fault"):
            _scan_all(buffer)
    finally:
        buffer.close()


# ----------------------------------------------------------------------
# The cross-session fragment store under colliding concurrent sessions
# ----------------------------------------------------------------------

class _KeyCountingLXPServer:
    """Counts source fills per hole id: the single-flight oracle --
    across every concurrent session, each region of a stable-version
    source must be filled at the source at most once."""

    def __init__(self, server):
        self.server = server
        self.fill_counts = {}
        self._lock = threading.Lock()

    def get_root(self):
        return self.server.get_root()

    def fill(self, hole_id):
        with self._lock:
            self.fill_counts[hole_id] = \
                self.fill_counts.get(hole_id, 0) + 1
        return self.server.fill(hole_id)

    def fill_batch(self, hole_ids, speculate: int = 0):
        replies = []
        for hole_id in hole_ids:
            replies.append((hole_id, self.fill(hole_id)))
        return replies

    def snapshot_version(self) -> int:
        return 0


@pytest.mark.timeout(60)
class TestFragmentStoreStress:
    def _make_store(self):
        from repro.runtime.fragcache import FragmentStore
        # one shard: every key collides, maximal lock contention and
        # a worst case for the single-flight table
        return FragmentStore(shards=1)

    def test_colliding_sessions_no_deadlock_no_duplicate_fills(self):
        """N sessions drain the same view through one single-shard
        store: all terminate, answers agree, and no region is ever
        filled at the source twice (single-flight)."""
        from repro.runtime.fragcache import fragment_cached

        counting = _KeyCountingLXPServer(
            TreeLXPServer(_homes_tree(12), chunk_size=2, depth=2))
        store = self._make_store()
        results = [None] * SESSIONS
        # register every session before any fill happens: all start
        # cold (a fast finisher must not gift later *registrations* a
        # complete view -- that path is exercised elsewhere)
        servers = []
        for _ in range(SESSIONS):
            server, whole, decision = fragment_cached(
                "homesSrc", counting, store=store)
            assert decision.cached
            assert whole is None
            servers.append(server)

        def session(index):
            buffer = BufferComponent(servers[index])
            results[index] = _scan_all(buffer)

        _run_sessions(session)
        expected = _scan_all(BufferComponent(
            TreeLXPServer(_homes_tree(12), chunk_size=2, depth=2)))
        assert results == [expected] * SESSIONS
        duplicates = {hole: n
                      for hole, n in counting.fill_counts.items()
                      if n > 1}
        assert not duplicates, (
            "region filled at the source twice: %r" % duplicates)
        # every session demands every region exactly once, and the
        # single-flight table lets exactly one of them miss per
        # region: hits + misses == demands, misses == regions
        regions = len(counting.fill_counts)
        counters = store.stats.snapshot()
        assert counters["misses"] == regions
        assert counters["hits"] == (SESSIONS - 1) * regions

    def test_failed_producer_hands_over_to_waiter(self):
        """When the in-flight producer fails, a waiting session takes
        over production instead of deadlocking or caching the error."""
        from repro.errors import TransientSourceError
        from repro.runtime.fragcache import FragmentStore

        store = FragmentStore(shards=1)
        # ``producing`` is set from *inside* session 0's producer, so
        # by the time any waiter demands the key, session 0 is the
        # registered in-flight producer -- deterministic ordering.
        producing = threading.Event()
        release = threading.Event()
        produced = []
        lock = threading.Lock()
        outcomes = [None] * SESSIONS

        def session(index):
            if index == 0:
                def produce():
                    producing.set()
                    assert release.wait(timeout=JOIN_TIMEOUT_S)
                    raise TransientSourceError("injected")
                try:
                    store.fill_through(("v", "k"), 0, produce)
                    outcomes[index] = "ok"
                except TransientSourceError:
                    outcomes[index] = "failed"
            else:
                assert producing.wait(timeout=JOIN_TIMEOUT_S)

                def produce():
                    with lock:
                        produced.append(index)
                    return []
                release.set()
                store.fill_through(("v", "k"), 0, produce)
                outcomes[index] = "ok"

        _run_sessions(session)
        assert outcomes.count("failed") == 1
        assert outcomes.count("ok") == SESSIONS - 1
        # exactly one waiter took over production; the rest hit
        assert len(produced) == 1
        counters = store.stats.snapshot()
        assert counters["misses"] == 1
        assert counters["hits"] == SESSIONS - 2

    def test_concurrent_churn_never_grafts_stale(self):
        """Sessions race an epoch advance: every fill a session gets
        back equals what the live source would answer -- under churn
        the cache may only change *who* fills, never *what*."""
        from repro.runtime.fragcache import FragmentStore, \
            fragment_cached
        from repro.testing import VersionedLXPServer
        from repro.xtree import Tree

        def snapshot(version):
            return Tree("homes", [
                Tree("home", [Tree("addr",
                                   [Tree("a%d.%d" % (version, i))])])
                for i in range(8)])

        store = FragmentStore(shards=1)
        churn = VersionedLXPServer([snapshot(0), snapshot(1)],
                                   chunk_size=2)
        advanced = threading.Event()

        def session(index):
            from repro.buffer.lxp import reply_holes
            server, _, _ = fragment_cached("vs", churn, store=store)
            frontier = [server.get_root().hole_id]
            fills = 0
            while frontier:
                hole = frontier.pop(0)
                reply = server.fill(hole)
                fills += 1
                if index == 0 and fills == 2 \
                        and not advanced.is_set():
                    churn.advance()
                    advanced.set()
                frontier.extend(reply_holes(reply))

        _run_sessions(session)
        # after the dust settles every surviving entry is current:
        # a fresh session's fills all equal the live source's answers
        from repro.buffer.lxp import reply_holes
        server, _, _ = fragment_cached("vs", churn, store=store)
        frontier = [server.get_root().hole_id]
        while frontier:
            hole = frontier.pop(0)
            reply = server.fill(hole)
            assert reply == churn.fill(hole)
            frontier.extend(reply_holes(reply))

    def test_fragcache_module_passes_repo_lint(self):
        """Lock discipline (L001) and the event-name contract hold
        for the fragment cache module."""
        import importlib.util
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "lint_repro_fragcache", repo / "tools" / "lint_repro.py")
        lint_repro = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(lint_repro)
        event_names = lint_repro._load_event_names(repo)
        findings = lint_repro.lint_file(
            repo / "src" / "repro" / "runtime" / "fragcache.py",
            event_names)
        assert findings == [], findings


# ----------------------------------------------------------------------
# The socket server under mixed polite/hostile load
# ----------------------------------------------------------------------

@pytest.mark.timeout(120)
def test_server_survives_mixed_stress_with_malformed_frames():
    """Many concurrent well-behaved sessions interleaved with
    malformed-frame injectors: every polite session completes with
    the same navigation replies, every hostile one is killed, and the
    server ends with balanced open/close accounting."""
    from repro.mediator.mix import MIXMediator
    from repro.navigation.materialized import MaterializedDocument
    from repro.runtime.config import EngineConfig
    from repro.server import MediatorServer
    from repro.testing.transport import (
        scripted_session, send_garbage, send_truncated_frame)

    query = """
    CONSTRUCT <result> <home> $A {$A} </home> {$H} </result> {}
    WHERE homesSrc homes.home $H AND $H addr._ $A
    """
    config = EngineConfig(serve_port=0, serve_max_sessions=32,
                          chunk_size=2)
    mediator = MIXMediator(config)
    mediator.register_source(
        "homesSrc", MaterializedDocument(_homes_tree(6)))
    server = MediatorServer(mediator)
    host, port = server.start()
    try:
        control = scripted_session(host, port, query, fills=3)

        polite_replies = {}
        hostile_done = []

        def polite(index):
            polite_replies[index] = scripted_session(
                host, port, query, fills=3)

        def hostile(index):
            if index % 2 == 0:
                send_garbage(host, port)
            else:
                send_truncated_frame(host, port)
            hostile_done.append(index)

        threads = ([threading.Thread(target=polite, args=(i,),
                                     daemon=True)
                    for i in range(12)]
                   + [threading.Thread(target=hostile, args=(i,),
                                       daemon=True)
                      for i in range(8)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(JOIN_TIMEOUT_S)
            assert not thread.is_alive(), "stress worker deadlocked"

        assert len(hostile_done) == 8
        assert len(polite_replies) == 12
        for replies in polite_replies.values():
            # Open replies differ only in the session serial; every
            # navigation/close reply is byte-identical to the control.
            assert replies[1:] == control[1:]
        # Every admitted connection -- polite or hostile -- must be
        # torn down; hostile ones never reach "open", so the balance
        # is closed == accepted (nothing was rejected here), not
        # closed == opened.
        deadline = threading.Event()
        for _ in range(500):
            snapshot = server.stats.snapshot()
            if snapshot["sessions_closed"] == snapshot["accepted"] \
                    and server.active_sessions == 0:
                break
            deadline.wait(0.01)
        assert snapshot["protocol_kills"] >= 4   # the garbage halves
        assert snapshot["sessions_closed"] == snapshot["accepted"]
        assert snapshot["sessions_opened"] == 13  # control + 12 polite
        assert server.active_sessions == 0
        # The daemon itself is unharmed.
        assert scripted_session(host, port, query,
                                fills=3)[1:] == control[1:]
    finally:
        assert server.drain()
