"""Shared fixtures: the paper's running example and plan builders."""

from repro.algebra import (
    Comparison,
    Concatenate,
    CreateElement,
    GetDescendants,
    GroupBy,
    Join,
    Source,
    TupleDestroy,
    Var,
)
from repro.xtree import Tree, elem


def homes_source() -> Tree:
    """The homesSrc document of Example 2 (root = exported doc node)."""
    return Tree("homesSrc", [elem(
        "homes",
        elem("home", elem("addr", "La Jolla"), elem("zip", "91220")),
        elem("home", elem("addr", "El Cajon"), elem("zip", "91223")),
    )])


def schools_source() -> Tree:
    """The schoolsSrc document of Example 2."""
    return Tree("schoolsSrc", [elem(
        "schools",
        elem("school", elem("dir", "Smith"), elem("zip", "91220")),
        elem("school", elem("dir", "Bar"), elem("zip", "91220")),
        elem("school", elem("dir", "Hart"), elem("zip", "91223")),
    )])


def fig4_plan() -> TupleDestroy:
    """The initial plan E_q of Figure 4, built node by node."""
    left = GetDescendants(
        GetDescendants(Source("homesSrc", "root1"),
                       "root1", "homes.home", "H"),
        "H", "zip._", "V1")
    right = GetDescendants(
        GetDescendants(Source("schoolsSrc", "root2"),
                       "root2", "schools.school", "S"),
        "S", "zip._", "V2")
    join = Join(left, right, Comparison(Var("V1"), "=", Var("V2")))
    grouped = GroupBy(join, ["H"], [("S", "LSs")])
    content = Concatenate(grouped, ["H", "LSs"], "HLSs")
    med_homes = CreateElement(content, "med_home", "HLSs", "MHs")
    all_homes = GroupBy(med_homes, [], [("MHs", "MHL")])
    answer = CreateElement(all_homes, "answer", "MHL", "A")
    return TupleDestroy(answer, "A")


def fig4_sources() -> dict:
    return {"homesSrc": homes_source(), "schoolsSrc": schools_source()}


def expected_fig4_answer() -> Tree:
    """The answer document the paper's semantics produces on the
    Example 2 data."""
    return elem(
        "answer",
        elem("med_home",
             elem("home", elem("addr", "La Jolla"), elem("zip", "91220")),
             elem("school", elem("dir", "Smith"), elem("zip", "91220")),
             elem("school", elem("dir", "Bar"), elem("zip", "91220"))),
        elem("med_home",
             elem("home", elem("addr", "El Cajon"), elem("zip", "91223")),
             elem("school", elem("dir", "Hart"), elem("zip", "91223"))),
    )


def homes_of_size(n_homes: int, schools_per_zip: int = 2) -> dict:
    """Scaled homes/schools sources for complexity experiments."""
    homes = [
        elem("home", elem("addr", "addr%d" % i),
             elem("zip", str(91000 + i)))
        for i in range(n_homes)
    ]
    schools = []
    for i in range(n_homes):
        for j in range(schools_per_zip):
            schools.append(
                elem("school", elem("dir", "dir%d_%d" % (i, j)),
                     elem("zip", str(91000 + i))))
    return {
        "homesSrc": Tree("homesSrc", [Tree("homes", homes)]),
        "schoolsSrc": Tree("schoolsSrc", [Tree("schools", schools)]),
    }
