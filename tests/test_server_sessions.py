"""The hardened session server: lifecycle, timeouts, admission,
budgets, deadlines, fault containment, and graceful drain.

Every test runs a real :class:`~repro.server.daemon.MediatorServer`
on an ephemeral loopback port.  Timeouts under test are configured
tiny (hundreds of ms); nothing here calls ``time.sleep`` -- waiting
is either a bounded socket operation or :func:`wait_until` polling a
counter with a short event timeout.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.bench.workloads import homes_and_schools
from repro.mediator.mix import MIXMediator
from repro.navigation.interface import NavigableDocument
from repro.navigation.materialized import MaterializedDocument
from repro.runtime.config import EngineConfig
from repro.server import (
    MediatorServer,
    ServerBusyError,
    ServerReplyError,
    connect,
)
from repro.testing.faults import FakeClock
from repro.testing.transport import (
    StalledReader,
    abrupt_disconnect,
    open_raw,
    recv_reply_bytes,
    scripted_session,
    send_frame_bytes,
    send_garbage,
    send_truncated_frame,
    slow_loris,
)
from repro.testing.transport import _decode  # test-only convenience

QUERY = """
CONSTRUCT <result> <home> $A {$A} </home> {$H} </result> {}
WHERE homesSrc homes.home $H AND $H addr._ $A
"""


def wait_until(predicate, timeout_s=5.0, message="condition"):
    """Poll ``predicate`` with a short event timeout until true."""
    gate = threading.Event()
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        gate.wait(0.01)
    raise AssertionError("timed out waiting for %s" % message)


def make_server(n_homes=6, config=None, clock=None, **overrides):
    overrides.setdefault("serve_port", 0)
    config = config or EngineConfig(**overrides)
    mediator = MIXMediator(config)
    tree = homes_and_schools(n_homes)["homesSrc"]
    mediator.register_source("homesSrc", MaterializedDocument(tree))
    server = MediatorServer(mediator, clock=clock)
    host, port = server.start()
    return server, host, port


class TestLifecycle:
    def test_open_navigate_close_roundtrip(self):
        server, host, port = make_server(n_homes=5)
        try:
            with connect(host, port, QUERY) as session:
                homes = [child.tag for child in
                         session.root.children()]
                assert homes == ["home"] * 5
                assert session.ping()
                report = session.server_stats()
                assert report["session"]["fills"] >= 1
                assert report["server"]["sessions_opened"] == 1
            wait_until(lambda: server.active_sessions == 0,
                       message="session teardown")
            snapshot = server.stats.snapshot()
            assert snapshot["sessions_opened"] == 1
            assert snapshot["sessions_closed"] == 1
        finally:
            server.drain()

    def test_answer_matches_in_process_materialization(self):
        server, host, port = make_server(n_homes=4)
        try:
            expected = server.mediator.prepare(QUERY).materialize()
            with connect(host, port, QUERY) as session:
                got = session.root.to_tree()
            assert got == expected
        finally:
            server.drain()

    def test_raw_wire_dialogue(self):
        server, host, port = make_server(n_homes=3)
        try:
            sock = open_raw(host, port)
            try:
                send_frame_bytes(sock, {"op": "open", "query": QUERY})
                opened = _decode(recv_reply_bytes(sock))
                assert opened["ok"] and isinstance(opened["root"], int)
                send_frame_bytes(sock, {"op": "fill",
                                        "hole": opened["root"]})
                filled = _decode(recv_reply_bytes(sock))
                assert filled["ok"]
                assert filled["fragments"][0][0] == "e"
                send_frame_bytes(sock, {"op": "close"})
                closed = _decode(recv_reply_bytes(sock))
                assert closed["ok"] and closed["closed"]
            finally:
                sock.close()
        finally:
            server.drain()

    def test_first_frame_must_be_open(self):
        server, host, port = make_server()
        try:
            sock = open_raw(host, port)
            try:
                send_frame_bytes(sock, {"op": "ping"})
                reply = _decode(recv_reply_bytes(sock))
                assert reply["error"] == "mix:protocol"
            finally:
                sock.close()
        finally:
            server.drain()

    def test_bad_query_is_typed_and_contained(self):
        server, host, port = make_server()
        try:
            with pytest.raises(ServerReplyError) as excinfo:
                connect(host, port, "this is not XMAS")
            assert excinfo.value.code == "mix:query"
            # The server survived and still serves good queries.
            with connect(host, port, QUERY) as session:
                assert session.ping()
        finally:
            server.drain()


class TestAdmissionControl:
    def test_busy_rejection_and_recovery(self):
        server, host, port = make_server(serve_max_sessions=1)
        try:
            first = connect(host, port, QUERY)
            with pytest.raises(ServerBusyError):
                connect(host, port, QUERY)
            assert server.stats.snapshot()["rejected_busy"] == 1
            first.close()
            wait_until(lambda: server.active_sessions == 0,
                       message="capacity to free up")
            with connect(host, port, QUERY) as session:
                assert session.ping()
        finally:
            server.drain()


class TestTimeoutsAndBudgets:
    def test_slow_loris_falls_to_idle_timeout(self):
        server, host, port = make_server(serve_idle_timeout_ms=150.0)
        try:
            reply = slow_loris(host, port)
            assert reply is not None \
                and reply["error"] == "mix:idle"
            wait_until(lambda: server.stats.snapshot()
                       ["idle_kills"] == 1, message="idle kill")
        finally:
            server.drain()

    def test_fill_budget_is_enforced(self):
        server, host, port = make_server(
            n_homes=8, serve_session_max_fills=1, chunk_size=2)
        try:
            sock = open_raw(host, port)
            try:
                send_frame_bytes(sock, {"op": "open", "query": QUERY})
                opened = _decode(recv_reply_bytes(sock))
                send_frame_bytes(sock, {"op": "fill",
                                        "hole": opened["root"]})
                first = _decode(recv_reply_bytes(sock))
                assert first["ok"]
                send_frame_bytes(sock, {"op": "fill",
                                        "hole": opened["root"]})
                second = _decode(recv_reply_bytes(sock))
                assert second["error"] == "mix:budget"
            finally:
                sock.close()
            wait_until(lambda: server.stats.snapshot()
                       ["budget_kills"] == 1, message="budget kill")
        finally:
            server.drain()

    def test_request_deadline_cuts_runaway_navigation(self):
        clock = FakeClock()

        class SlowNavigation(NavigableDocument):
            """Every navigation costs 50 virtual ms."""

            def __init__(self, inner):
                self.inner = inner

            def root(self):
                clock.advance(50.0)
                return self.inner.root()

            def down(self, pointer):
                clock.advance(50.0)
                return self.inner.down(pointer)

            def right(self, pointer):
                clock.advance(50.0)
                return self.inner.right(pointer)

            def fetch(self, pointer):
                return self.inner.fetch(pointer)

        config = EngineConfig(serve_port=0,
                              serve_request_deadline_ms=120.0)
        mediator = MIXMediator(config)
        tree = homes_and_schools(6)["homesSrc"]
        mediator.register_source(
            "homesSrc", SlowNavigation(MaterializedDocument(tree)))
        server = MediatorServer(mediator, clock=clock)
        host, port = server.start()
        try:
            sock = open_raw(host, port)
            try:
                send_frame_bytes(sock, {"op": "open", "query": QUERY})
                opened = _decode(recv_reply_bytes(sock))
                assert opened["ok"]
                send_frame_bytes(sock, {"op": "fill",
                                        "hole": opened["root"]})
                reply = _decode(recv_reply_bytes(sock))
                assert reply["error"] == "mix:deadline"
            finally:
                sock.close()
            assert server.stats.snapshot()["deadline_kills"] == 1
        finally:
            server.drain()

    def test_stalled_reader_falls_to_send_timeout(self):
        server, host, port = make_server(
            n_homes=800, serve_send_timeout_ms=300.0,
            serve_send_buffer_bytes=4096,
            serve_max_frame_bytes=8 << 20,
            chunk_size=2000, depth=6)
        try:
            with StalledReader(host, port) as reader:
                opened = reader.open(QUERY)
                assert opened["ok"]
                reader.request_and_stall(opened["root"])
                wait_until(lambda: server.stats.snapshot()
                           ["stalled_kills"] == 1,
                           timeout_s=10.0, message="stalled kill")
        finally:
            server.drain()


class TestFaultContainment:
    def test_garbage_frame_kills_only_its_session(self):
        server, host, port = make_server()
        try:
            reply = send_garbage(host, port)
            assert reply is not None \
                and reply["error"] == "mix:protocol"
            wait_until(lambda: server.stats.snapshot()
                       ["protocol_kills"] == 1,
                       message="protocol kill")
            with connect(host, port, QUERY) as session:
                assert session.ping()
        finally:
            server.drain()

    def test_oversized_frame_is_refused(self):
        server, host, port = make_server(serve_max_frame_bytes=256)
        try:
            sock = open_raw(host, port)
            try:
                # A length prefix far beyond the ceiling.
                sock.sendall(b"\x7f\xff\xff\xff")
                reply = _decode(recv_reply_bytes(sock))
                assert reply["error"] == "mix:protocol"
            finally:
                sock.close()
        finally:
            server.drain()

    def test_mid_frame_disconnect_is_contained(self):
        server, host, port = make_server()
        try:
            session_id = abrupt_disconnect(host, port, QUERY)
            assert session_id
            wait_until(
                lambda: (server.stats.snapshot()["protocol_kills"]
                         + server.stats.snapshot()
                         ["disconnect_kills"]) >= 1,
                message="disconnect containment")
            with connect(host, port, QUERY) as session:
                assert session.ping()
        finally:
            server.drain()

    def test_survivors_are_byte_identical_under_faults(self):
        """The golden-trace check: a well-behaved session's raw reply
        bytes are unchanged by misbehaving neighbours."""
        server, host, port = make_server(n_homes=6, chunk_size=2)
        try:
            control = scripted_session(host, port, QUERY, fills=3)
            assert all(control)

            faults = []
            for attack in (lambda: send_garbage(host, port),
                           lambda: send_truncated_frame(host, port),
                           lambda: abrupt_disconnect(host, port,
                                                     QUERY)):
                thread = threading.Thread(target=attack, daemon=True)
                faults.append(thread)
                thread.start()
            under_attack = scripted_session(host, port, QUERY,
                                            fills=3)
            for thread in faults:
                thread.join(5.0)
            # Session ids are a server-global serial, so the open
            # reply legitimately differs; every navigation reply --
            # fragments, hole numbering, close -- must be identical.
            assert under_attack[1:] == control[1:]
            assert _decode(under_attack[0])["ok"]
            # And the server is still healthy afterwards.
            recovered = scripted_session(host, port, QUERY, fills=3)
            assert recovered[1:] == control[1:]
        finally:
            server.drain()


class TestDrain:
    def test_drain_notifies_idle_sessions_and_stops_accepting(self):
        server, host, port = make_server()
        try:
            sock = open_raw(host, port, timeout_ms=5000.0)
            send_frame_bytes(sock, {"op": "open", "query": QUERY})
            opened = _decode(recv_reply_bytes(sock))
            assert opened["ok"]

            clean = server.drain()
            assert clean
            notice = _decode(recv_reply_bytes(sock))
            assert notice is not None \
                and notice["error"] == "mix:draining"
            sock.close()
            with pytest.raises(OSError):
                open_raw(host, port, timeout_ms=500.0)
            assert server.stats.snapshot()["drained"] >= 1
        finally:
            server.drain()

    def test_drain_lets_inflight_requests_finish(self):
        server, host, port = make_server(n_homes=8)
        session = connect(host, port, QUERY)
        try:
            results = []

            def browse():
                results.append([child.tag for child
                                in session.root.children()])

            browser = threading.Thread(target=browse, daemon=True)
            browser.start()
            browser.join(5.0)
            assert server.drain()
            assert results == [["home"] * 8]
        finally:
            session.close()

    def test_drain_is_idempotent(self):
        server, _, _ = make_server()
        assert server.drain()
        assert server.drain()

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--workload", "homes:5", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True)
        try:
            line = process.stdout.readline().strip()
            assert line.startswith("serving "), line
            _, host, port_text = line.split()
            # One live session across the SIGTERM, to prove drain
            # handles real traffic, not just an empty server.
            session = connect(host, int(port_text), QUERY)
            assert session.ping()
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=30)
            assert process.returncode == 0, (out, err)
            assert "drained clean=True" in out
            session.close()
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
