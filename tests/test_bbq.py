"""Tests for the BBQ browse-and-query session."""

import pytest

from repro.client.bbq import BBQError, BBQSession
from repro.mediator import MIXMediator
from repro.wrappers import XMLFileWrapper

HOMES_XML = ("<homes>"
             "<home><addr>La Jolla</addr><zip>91220</zip></home>"
             "<home><addr>El Cajon</addr><zip>91223</zip></home>"
             "</homes>")
SCHOOLS_XML = ("<schools>"
               "<school><dir>Smith</dir><zip>91220</zip></school>"
               "<school><dir>Hart</dir><zip>91223</zip></school>"
               "</schools>")
QUERY = ("CONSTRUCT <answer><med_home> $H $S {$S} </med_home> {$H}"
         "</answer> {} "
         "WHERE homesSrc homes.home $H AND $H zip._ $V1 "
         "AND schoolsSrc schools.school $S AND $S zip._ $V2 "
         "AND $V1 = $V2")


@pytest.fixture
def session():
    med = MIXMediator()
    med.register_wrapper("homesSrc",
                         XMLFileWrapper("homesSrc", HOMES_XML))
    med.register_wrapper("schoolsSrc",
                         XMLFileWrapper("schoolsSrc", SCHOOLS_XML))
    return BBQSession(med)


class TestSessionAPI:
    def test_no_document_initially(self, session):
        assert not session.has_document
        with pytest.raises(BBQError):
            session.cwd

    def test_query_opens_answer(self, session):
        root = session.query(QUERY)
        assert root.tag == "answer"
        assert session.pwd() == "/answer"

    def test_ls_lists_children(self, session):
        session.query(QUERY)
        lines = session.ls()
        assert len(lines) == 2
        assert all("<med_home>" in line for line in lines)

    def test_cd_by_index_and_tag(self, session):
        session.query(QUERY)
        session.cd("1")
        assert session.pwd() == "/answer/med_home"
        session.cd("home")
        assert session.pwd() == "/answer/med_home/home"

    def test_cd_errors(self, session):
        session.query(QUERY)
        with pytest.raises(BBQError):
            session.cd("7")
        with pytest.raises(BBQError):
            session.cd("nothere")

    def test_cd_on_leaf_fails(self, session):
        session.query(QUERY)
        session.cd("0")
        session.cd("home")
        session.cd("addr")
        session.cd("0")  # the text leaf
        with pytest.raises(BBQError):
            session.cd("0")

    def test_up_and_root_guard(self, session):
        session.query(QUERY)
        session.cd("0")
        session.up()
        assert session.pwd() == "/answer"
        with pytest.raises(BBQError):
            session.up()

    def test_text_and_tree(self, session):
        session.query(QUERY)
        session.cd("0")
        session.cd("home")
        assert session.text() == "La Jolla91220"
        assert session.tree() == "home[addr[La Jolla], zip[91220]]"

    def test_stats_reports_navigations(self, session):
        session.query(QUERY)
        before = session.stats()
        assert "source navigations: 0" in before
        session.ls()
        assert "source navigations: 0" not in session.stats()

    def test_new_query_resets_cwd(self, session):
        session.query(QUERY)
        session.cd("0")
        session.query(QUERY)
        assert session.pwd() == "/answer"


class TestCommandSurface:
    def test_full_scripted_session(self, session):
        outputs = [session.execute(line) for line in [
            "query " + QUERY,
            "ls",
            "cd 0",
            "cd home",
            "text",
            "pwd",
            "up",
            "stats",
        ]]
        assert outputs[0] == "opened virtual answer <answer>"
        assert "<med_home>" in outputs[1]
        assert outputs[4] == "La Jolla91220"
        assert outputs[5] == "/answer/med_home/home"
        assert "source navigations" in outputs[7]

    def test_errors_are_messages_not_exceptions(self, session):
        assert session.execute("cd 0").startswith("error:")
        session.execute("query " + QUERY)
        assert session.execute("cd 99").startswith("error:")
        assert session.execute("frobnicate").startswith("error:")

    def test_empty_line_is_noop(self, session):
        assert session.execute("   ") == ""

    def test_usage_errors(self, session):
        assert "usage" in session.execute("query")
        session.execute("query " + QUERY)
        assert "usage" in session.execute("cd")
