"""Failure injection and robustness: protocol violations, malformed
inputs, unicode, and deep documents."""

import pytest

from repro.buffer import (
    BufferComponent,
    FragElem,
    FragHole,
    LXPProtocolError,
    TreeLXPServer,
)
from repro.mediator import MediatorError, MIXMediator
from repro.navigation import MaterializedDocument, materialize
from repro.wrappers import XMLFileWrapper
from repro.xmas import XMASSyntaxError, XMASTranslationError
from repro.xtree import Tree, XMLParseError, elem, leaf, parse_xml, to_xml


class _ScriptedServer:
    """An LXP server answering from a fixed script (for misbehaviour)."""

    def __init__(self, script):
        self.script = script

    def get_root(self):
        return FragHole(("root",))

    def fill(self, hole_id):
        return self.script[hole_id]


class TestMaliciousWrappers:
    def test_adjacent_holes_rejected(self):
        server = _ScriptedServer({
            ("root",): [FragElem("a", (FragHole(1),))],
            1: [FragHole(2), FragHole(3)],
        })
        buffer = BufferComponent(server)
        root = buffer.root()
        with pytest.raises(LXPProtocolError):
            buffer.down(root)

    def test_only_holes_rejected(self):
        server = _ScriptedServer({
            ("root",): [FragHole(7)],
        })
        buffer = BufferComponent(server)
        with pytest.raises(LXPProtocolError):
            buffer.root()

    def test_no_root_element_rejected(self):
        server = _ScriptedServer({("root",): []})
        buffer = BufferComponent(server)
        with pytest.raises(LXPProtocolError):
            buffer.root()

    def test_nested_violation_rejected(self):
        bad_child = FragElem("a", (FragElem("b"), FragHole(1),
                                   FragHole(2)))
        server = _ScriptedServer({("root",): [bad_child]})
        buffer = BufferComponent(server)
        with pytest.raises(LXPProtocolError):
            buffer.root()

    def test_dead_end_holes_are_fine(self):
        # Empty replies are legal: the hole represented zero elements.
        server = _ScriptedServer({
            ("root",): [FragElem("a", (FragHole(1),))],
            1: [],
        })
        buffer = BufferComponent(server)
        assert materialize(buffer) == leaf("a")

    def test_unbounded_virtual_document_guard(self):
        """A wrapper can keep promising more siblings forever; the
        materialize() guard catches runaway exploration."""

        class Endless:
            def get_root(self):
                return FragHole(0)

            def fill(self, hole_id):
                if hole_id == 0:
                    return [FragElem("r", (FragHole(1),))]
                return [FragElem("x"), FragHole(hole_id + 1)]

        buffer = BufferComponent(Endless())
        with pytest.raises(RuntimeError):
            materialize(buffer, max_nodes=50)


class TestMediatorErrors:
    def test_unknown_source_at_prepare_time(self):
        med = MIXMediator()
        with pytest.raises(MediatorError):
            med.prepare("CONSTRUCT <a> $X {$X} </a> {} WHERE ghost p $X")

    def test_syntax_error_propagates(self):
        med = MIXMediator()
        with pytest.raises(XMASSyntaxError):
            med.prepare("CONSTRUCT <a> oops")

    def test_translation_error_propagates(self):
        med = MIXMediator()
        med.register_wrapper("s", XMLFileWrapper("s", "<r><a>1</a></r>"))
        with pytest.raises(XMASTranslationError):
            med.prepare("CONSTRUCT <a> $Q {$Q} </a> {} WHERE s r $X")

    def test_view_name_clash(self):
        med = MIXMediator()
        med.register_wrapper("s", XMLFileWrapper("s", "<r/>"))
        med.register_view("v", "CONSTRUCT <a> $X {$X} </a> {} "
                               "WHERE s _ $X")
        with pytest.raises(MediatorError):
            med.register_view("v", "CONSTRUCT <b> $X {$X} </b> {} "
                                   "WHERE s _ $X")


class TestUnicodeAndOddContent:
    def test_unicode_round_trip(self):
        xml = "<r><name>København 中文</name></r>"
        tree = parse_xml(xml)
        assert parse_xml(to_xml(tree)) == tree

    def test_unicode_through_the_stack(self):
        med = MIXMediator()
        med.register_wrapper("s", XMLFileWrapper(
            "s", "<r><x><n>été</n></x></r>"))
        answer = med.prepare(
            "CONSTRUCT <out> $N {$N} </out> {} WHERE s r.x.n._ $N"
        ).materialize()
        assert answer.child(0).label == "été"

    def test_whitespace_heavy_text(self):
        tree = parse_xml("<r>  spaced   out  </r>")
        assert tree.child(0).label == "spaced   out"

    def test_label_with_xml_metachars_escapes(self):
        tree = elem("r", "a < b & c > d")
        assert parse_xml(to_xml(tree)) == tree


class TestDeepDocuments:
    def _deep(self, depth):
        node = leaf("bottom")
        for _ in range(depth):
            node = Tree("n", [node])
        return Tree("src", [node])

    def test_deep_parse_and_serialize(self):
        deep = self._deep(300)
        assert parse_xml(to_xml(deep)) == deep

    def test_deep_navigation(self):
        doc = MaterializedDocument(self._deep(300))
        pointer = doc.root()
        depth = 0
        while (nxt := doc.down(pointer)) is not None:
            pointer = nxt
            depth += 1
        assert depth == 301
        assert doc.fetch(pointer) == "bottom"

    def test_deep_recursive_path_query(self):
        med = MIXMediator()
        med.register_source("s", MaterializedDocument(self._deep(150)))
        answer = med.prepare(
            "CONSTRUCT <out> $X {$X} </out> {} WHERE s n+._ $X"
        ).materialize()
        # one binding per depth where the leaf is reachable: only the
        # innermost '_' match is the 'bottom' leaf under each n-chain.
        assert any(c.label == "bottom" for c in answer.children)

    def test_deep_buffered_wrapper(self):
        deep = self._deep(200)
        buffer = BufferComponent(TreeLXPServer(deep, chunk_size=1,
                                               depth=1))
        assert materialize(buffer) == deep
