"""Failure injection and robustness: protocol violations, malformed
inputs, unicode, deep documents -- and the resilience layer (retries,
circuit breakers, degradation) under scripted faults."""

import pytest

from repro.buffer import (
    BufferComponent,
    FragElem,
    FragHole,
    LXPProtocolError,
    TreeLXPServer,
)
from repro.client import XMLElement
from repro.client.remote import MessageChannel, NavigableLXPServer
from repro.errors import (
    PermanentSourceError,
    TransientSourceError,
    classify_failure,
    is_transient,
)
from repro.mediator import MediatorError, MIXMediator
from repro.navigation import MaterializedDocument, materialize
from repro.runtime import (
    BreakerOpenError,
    CircuitBreaker,
    EngineConfig,
    ResilientCaller,
    RetryPolicy,
    resilient_server,
)
from repro.testing import (
    DeadLXPServer,
    FailureSchedule,
    FakeClock,
    FlakyChannel,
    FlakyLXPServer,
)
from repro.wrappers import XMLFileWrapper
from repro.xmas import XMASSyntaxError, XMASTranslationError
from repro.xtree import Tree, XMLParseError, elem, leaf, parse_xml, to_xml


class _ScriptedServer:
    """An LXP server answering from a fixed script (for misbehaviour)."""

    def __init__(self, script):
        self.script = script

    def get_root(self):
        return FragHole(("root",))

    def fill(self, hole_id):
        return self.script[hole_id]


class TestMaliciousWrappers:
    def test_adjacent_holes_rejected(self):
        server = _ScriptedServer({
            ("root",): [FragElem("a", (FragHole(1),))],
            1: [FragHole(2), FragHole(3)],
        })
        buffer = BufferComponent(server)
        root = buffer.root()
        with pytest.raises(LXPProtocolError):
            buffer.down(root)

    def test_only_holes_rejected(self):
        server = _ScriptedServer({
            ("root",): [FragHole(7)],
        })
        buffer = BufferComponent(server)
        with pytest.raises(LXPProtocolError):
            buffer.root()

    def test_no_root_element_rejected(self):
        server = _ScriptedServer({("root",): []})
        buffer = BufferComponent(server)
        with pytest.raises(LXPProtocolError):
            buffer.root()

    def test_nested_violation_rejected(self):
        bad_child = FragElem("a", (FragElem("b"), FragHole(1),
                                   FragHole(2)))
        server = _ScriptedServer({("root",): [bad_child]})
        buffer = BufferComponent(server)
        with pytest.raises(LXPProtocolError):
            buffer.root()

    def test_dead_end_holes_are_fine(self):
        # Empty replies are legal: the hole represented zero elements.
        server = _ScriptedServer({
            ("root",): [FragElem("a", (FragHole(1),))],
            1: [],
        })
        buffer = BufferComponent(server)
        assert materialize(buffer) == leaf("a")

    def test_unbounded_virtual_document_guard(self):
        """A wrapper can keep promising more siblings forever; the
        materialize() guard catches runaway exploration."""

        class Endless:
            def get_root(self):
                return FragHole(0)

            def fill(self, hole_id):
                if hole_id == 0:
                    return [FragElem("r", (FragHole(1),))]
                return [FragElem("x"), FragHole(hole_id + 1)]

        buffer = BufferComponent(Endless())
        with pytest.raises(RuntimeError):
            materialize(buffer, max_nodes=50)


class TestMediatorErrors:
    def test_unknown_source_at_prepare_time(self):
        med = MIXMediator()
        with pytest.raises(MediatorError):
            med.prepare("CONSTRUCT <a> $X {$X} </a> {} WHERE ghost p $X")

    def test_syntax_error_propagates(self):
        med = MIXMediator()
        with pytest.raises(XMASSyntaxError):
            med.prepare("CONSTRUCT <a> oops")

    def test_translation_error_propagates(self):
        med = MIXMediator()
        med.register_wrapper("s", XMLFileWrapper("s", "<r><a>1</a></r>"))
        with pytest.raises(XMASTranslationError):
            med.prepare("CONSTRUCT <a> $Q {$Q} </a> {} WHERE s r $X")

    def test_view_name_clash(self):
        med = MIXMediator()
        med.register_wrapper("s", XMLFileWrapper("s", "<r/>"))
        med.register_view("v", "CONSTRUCT <a> $X {$X} </a> {} "
                               "WHERE s _ $X")
        with pytest.raises(MediatorError):
            med.register_view("v", "CONSTRUCT <b> $X {$X} </b> {} "
                                   "WHERE s _ $X")


class TestUnicodeAndOddContent:
    def test_unicode_round_trip(self):
        xml = "<r><name>København 中文</name></r>"
        tree = parse_xml(xml)
        assert parse_xml(to_xml(tree)) == tree

    def test_unicode_through_the_stack(self):
        med = MIXMediator()
        med.register_wrapper("s", XMLFileWrapper(
            "s", "<r><x><n>été</n></x></r>"))
        answer = med.prepare(
            "CONSTRUCT <out> $N {$N} </out> {} WHERE s r.x.n._ $N"
        ).materialize()
        assert answer.child(0).label == "été"

    def test_whitespace_heavy_text(self):
        tree = parse_xml("<r>  spaced   out  </r>")
        assert tree.child(0).label == "spaced   out"

    def test_label_with_xml_metachars_escapes(self):
        tree = elem("r", "a < b & c > d")
        assert parse_xml(to_xml(tree)) == tree


class TestDeepDocuments:
    def _deep(self, depth):
        node = leaf("bottom")
        for _ in range(depth):
            node = Tree("n", [node])
        return Tree("src", [node])

    def test_deep_parse_and_serialize(self):
        deep = self._deep(300)
        assert parse_xml(to_xml(deep)) == deep

    def test_deep_navigation(self):
        doc = MaterializedDocument(self._deep(300))
        pointer = doc.root()
        depth = 0
        while (nxt := doc.down(pointer)) is not None:
            pointer = nxt
            depth += 1
        assert depth == 301
        assert doc.fetch(pointer) == "bottom"

    def test_deep_recursive_path_query(self):
        med = MIXMediator()
        med.register_source("s", MaterializedDocument(self._deep(150)))
        answer = med.prepare(
            "CONSTRUCT <out> $X {$X} </out> {} WHERE s n+._ $X"
        ).materialize()
        # one binding per depth where the leaf is reachable: only the
        # innermost '_' match is the 'bottom' leaf under each n-chain.
        assert any(c.label == "bottom" for c in answer.children)

    def test_deep_buffered_wrapper(self):
        deep = self._deep(200)
        buffer = BufferComponent(TreeLXPServer(deep, chunk_size=1,
                                               depth=1))
        assert materialize(buffer) == deep


# -- resilience: retries, breakers, degradation ------------------------

CATALOG_XML = ("<catalog>"
               + "".join("<book><title>T%d</title><price>%d</price>"
                         "</book>" % (i, 10 * i) for i in range(1, 5))
               + "</catalog>")
BOOKS_QUERY = ("CONSTRUCT <out> $B {$B} </out> {} "
               "WHERE s catalog.book $B")
WILD_QUERY = ("CONSTRUCT <out> $B {$B} </out> {} "
              "WHERE s catalog._ $B")


def _flaky_mediator(schedule, config=None, clock=None, xml=CATALOG_XML):
    med = MIXMediator(config or EngineConfig(),
                      clock=clock or FakeClock())
    med.register_wrapper(
        "s", FlakyLXPServer(
            XMLFileWrapper("s", xml,
                           chunk_size=med.config.chunk_size),
            schedule))
    return med


def _healthy_answer(query=BOOKS_QUERY, config=None):
    med = MIXMediator(config or EngineConfig())
    med.register_wrapper("s", XMLFileWrapper("s", CATALOG_XML))
    return med.prepare(query).materialize()


class TestErrorTaxonomy:
    def test_transient_subclasses_source_error(self):
        assert issubclass(TransientSourceError, Exception)
        assert is_transient(TransientSourceError("x"))
        assert classify_failure(TransientSourceError("x")) == "transient"

    def test_permanent_not_transient(self):
        assert not is_transient(PermanentSourceError("x"))
        assert classify_failure(PermanentSourceError("x")) == "permanent"

    def test_builtin_network_errors_are_transient(self):
        assert is_transient(ConnectionError("reset"))
        assert is_transient(TimeoutError("slow"))

    def test_other_errors_are_permanent(self):
        assert not is_transient(ValueError("nope"))
        assert classify_failure(RuntimeError("boom")) == "permanent"

    def test_substrate_errors_classify_permanent(self):
        from repro.oodb import OODBError
        from repro.relational import SchemaError, SQLError
        from repro.webstore import WebError
        for exc_type in (LXPProtocolError, OODBError, SchemaError,
                         SQLError, WebError):
            assert issubclass(exc_type, PermanentSourceError), exc_type
            assert not is_transient(exc_type("x"))


class TestRetryPolicy:
    def test_delays_are_deterministic(self):
        policy = RetryPolicy(max_attempts=4)
        first = [policy.delay_ms(i, key="s") for i in range(1, 4)]
        again = [policy.delay_ms(i, key="s") for i in range(1, 4)]
        assert first == again

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=8, base_delay_ms=10.0,
                             backoff=2.0, max_delay_ms=50.0, jitter=0.0)
        delays = [policy.delay_ms(i, key="s") for i in range(1, 7)]
        assert delays[:3] == [10.0, 20.0, 40.0]
        assert all(d == 50.0 for d in delays[3:])

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_delay_ms=100.0, backoff=1.0,
                             jitter=0.25)
        for attempt in range(1, 6):
            delay = policy.delay_ms(attempt, key="k")
            assert 75.0 <= delay <= 125.0

    def test_different_keys_decorrelate(self):
        policy = RetryPolicy(base_delay_ms=100.0, backoff=1.0,
                             jitter=0.5)
        delays = {policy.delay_ms(1, key="src%d" % i)
                  for i in range(8)}
        assert len(delays) > 1


class TestCircuitBreaker:
    def _breaker(self, clock, threshold=3, reset_ms=1000.0):
        return CircuitBreaker(failure_threshold=threshold,
                              reset_timeout_ms=reset_ms, clock=clock)

    def test_trips_after_threshold(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.short_circuits == 1

    def test_success_resets_failure_count(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        breaker.allow()
        breaker.record_success()
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_recovers(self):
        clock = FakeClock()
        breaker = self._breaker(clock, reset_ms=500.0)
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        clock.advance(499.0)
        assert not breaker.allow()
        clock.advance(2.0)
        assert breaker.state == "half-open"
        assert breaker.allow()          # the single probe slot
        assert not breaker.allow()      # concurrent call still blocked
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self._breaker(clock, reset_ms=500.0)
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        clock.advance(501.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2


class TestResilientCaller:
    def _caller(self, attempts=3, clock=None, breaker=None, **kw):
        policy = RetryPolicy(max_attempts=attempts, base_delay_ms=10.0,
                             jitter=0.0, **kw)
        return ResilientCaller("peer", policy=policy,
                               clock=clock or FakeClock(),
                               breaker=breaker)

    def test_retries_transient_until_success(self):
        schedule = FailureSchedule.first(2)
        caller = self._caller(attempts=3)

        def fn():
            err = schedule.next_failure()
            if err is not None:
                raise err
            return 42

        assert caller.call(fn) == 42
        assert caller.stats.retries == 2
        assert caller.stats.giveups == 0

    def test_permanent_failure_not_retried(self):
        calls = []

        def fn():
            calls.append(1)
            raise PermanentSourceError("gone")

        caller = self._caller(attempts=5)
        with pytest.raises(PermanentSourceError):
            caller.call(fn)
        assert len(calls) == 1
        assert caller.stats.retries == 0

    def test_transient_exhaustion_gives_up(self):
        clock = FakeClock()
        caller = self._caller(attempts=3, clock=clock)

        def fn():
            raise TransientSourceError("flaky")

        with pytest.raises(TransientSourceError):
            caller.call(fn)
        assert caller.stats.retries == 2
        assert caller.stats.giveups == 1
        assert len(clock.sleeps) == 2   # no sleep after the last try

    def test_deadline_bounds_cumulative_wait(self):
        clock = FakeClock()
        caller = self._caller(attempts=100, clock=clock,
                              deadline_ms=25.0, backoff=1.0)

        def fn():
            raise TransientSourceError("flaky")

        with pytest.raises(TransientSourceError):
            caller.call(fn)
        assert sum(clock.sleeps) <= 25.0
        assert caller.stats.retries < 99

    def test_breaker_short_circuits_calls(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2,
                                 reset_timeout_ms=1000.0, clock=clock)
        caller = self._caller(attempts=1, clock=clock, breaker=breaker)

        def fn():
            raise TransientSourceError("flaky")

        for _ in range(2):
            with pytest.raises(TransientSourceError):
                caller.call(fn)
        with pytest.raises(BreakerOpenError):
            caller.call(fn)
        assert breaker.short_circuits == 1


class TestRetriesHealTheQuery:
    def test_retried_answer_is_byte_identical(self):
        baseline = to_xml(_healthy_answer())
        clock = FakeClock()
        med = _flaky_mediator(
            FailureSchedule.first(2),
            EngineConfig(retry_max_attempts=3), clock=clock)
        answer = med.prepare(BOOKS_QUERY).materialize()
        assert to_xml(answer) == baseline
        assert len(clock.sleeps) == 2   # backoff happened, faked

    def test_fail_fast_is_the_default(self):
        med = _flaky_mediator(FailureSchedule.first(1))
        with pytest.raises(TransientSourceError):
            med.prepare(BOOKS_QUERY).materialize()

    def test_permanent_fault_aborts_despite_retries(self):
        schedule = FailureSchedule(
            [PermanentSourceError("corrupt page")])
        med = _flaky_mediator(schedule,
                              EngineConfig(retry_max_attempts=5))
        with pytest.raises(PermanentSourceError):
            med.prepare(BOOKS_QUERY).materialize()
        assert schedule.calls == 1      # no second attempt

    def test_retry_counters_in_query_stats(self):
        med = _flaky_mediator(FailureSchedule.first(2),
                              EngineConfig(retry_max_attempts=3))
        result = med.prepare(BOOKS_QUERY)
        result.materialize()
        resilience = result.stats()["resilience"]
        assert resilience["retries"] == 2
        assert resilience["giveups"] == 0
        assert resilience["per_source"]["s"]["retries"] == 2

    def test_healthy_config_reports_no_resilience(self):
        med = MIXMediator()
        med.register_wrapper("s", XMLFileWrapper("s", CATALOG_XML))
        result = med.prepare(BOOKS_QUERY)
        result.materialize()
        assert "resilience" not in result.stats()


class TestDegradedAnswers:
    def _degrade_config(self, **kw):
        base = dict(chunk_size=1, retry_max_attempts=2,
                    on_source_failure="degrade")
        base.update(kw)
        return EngineConfig(**base)

    def test_mid_stream_failure_yields_partial_answer(self):
        med = _flaky_mediator(
            FailureSchedule([False, False, False], exhausted="fail"),
            self._degrade_config())
        result = med.prepare(BOOKS_QUERY)
        answer = result.materialize()
        titles = [c.child(0).child(0).label for c in answer.children]
        assert titles == ["T1", "T2"]
        assert result.stats()["resilience"]["degraded"] >= 1

    def test_wildcard_query_carries_the_placeholder(self):
        med = _flaky_mediator(
            FailureSchedule([False, False, False], exhausted="fail"),
            self._degrade_config())
        answer = med.prepare(WILD_QUERY).materialize()
        labels = [c.label for c in answer.children]
        assert "mix:error" in labels

    def test_client_api_flags_the_placeholder(self):
        med = _flaky_mediator(
            FailureSchedule([False, False, False], exhausted="fail"),
            self._degrade_config())
        root = med.query(WILD_QUERY)
        errors = root.find_errors()
        assert errors
        for error in errors:
            assert error.is_error
            info = error.error_info()
            assert info["source"] == "s"
            assert "injected" in info["reason"]

    def test_healthy_elements_are_not_errors(self):
        med = MIXMediator()
        med.register_wrapper("s", XMLFileWrapper("s", CATALOG_XML))
        root = med.query(BOOKS_QUERY)
        assert not root.is_error
        assert root.error_info() is None
        assert root.find_errors() == []

    def test_sibling_source_unaffected(self):
        med = MIXMediator(self._degrade_config(), clock=FakeClock())
        med.register_wrapper(
            "dead", DeadLXPServer(
                XMLFileWrapper("dead", CATALOG_XML, chunk_size=1)))
        med.register_wrapper(
            "alive", XMLFileWrapper(
                "alive", "<catalog><book><title>OK</title></book>"
                         "</catalog>", chunk_size=1))
        query = ("CONSTRUCT <out> $A {$A} $B {$B} </out> {} "
                 "WHERE dead _ $A AND alive catalog.book $B")
        result = med.prepare(query)
        text = to_xml(result.materialize())
        # the dead source degraded to a placeholder binding while the
        # healthy sibling still contributed its real answer
        assert "OK" in text
        assert "dead" in text
        assert result.stats()["resilience"]["per_source"]["dead"][
            "degraded"] >= 1


class TestNoHangGuarantee:
    def test_dead_source_fails_fast_without_degrade(self):
        clock = FakeClock()
        med = _flaky_mediator(FailureSchedule.always(),
                              EngineConfig(retry_max_attempts=3),
                              clock=clock)
        with pytest.raises(TransientSourceError):
            med.prepare(BOOKS_QUERY).materialize()
        assert len(clock.sleeps) == 2   # bounded attempts, no hang

    def test_dead_source_completes_in_degrade_mode(self):
        clock = FakeClock()
        med = _flaky_mediator(
            FailureSchedule.always(),
            EngineConfig(retry_max_attempts=2,
                         on_source_failure="degrade"),
            clock=clock)
        result = med.prepare(BOOKS_QUERY)
        answer = result.materialize()   # must terminate
        assert answer.label == "out"
        stats = result.stats()["resilience"]
        assert stats["giveups"] >= 1
        assert stats["degraded"] >= 1

    def test_breaker_stops_hammering_a_dead_source(self):
        clock = FakeClock()
        config = EngineConfig(chunk_size=1, retry_max_attempts=2,
                              on_source_failure="degrade",
                              breaker_threshold=2,
                              breaker_reset_ms=60000.0)
        schedule = FailureSchedule([False], exhausted="fail")
        med = _flaky_mediator(schedule, config, clock=clock)
        result = med.prepare(WILD_QUERY)
        result.materialize()
        per_source = result.stats()["resilience"]["per_source"]["s"]
        assert per_source["breaker_opens"] >= 1
        # once open, further holes are short-circuited, not attempted
        assert per_source["breaker_short_circuits"] >= 1
        # the breaker capped the source traffic: only the hole that
        # tripped it (plus the healthy first fill) reached the source
        assert schedule.calls <= 4

    def test_breaker_half_open_recovery_end_to_end(self):
        from repro.runtime import ResilientLXPServer, RetryPolicy
        clock = FakeClock()
        server = FlakyLXPServer(
            XMLFileWrapper("s", CATALOG_XML),
            FailureSchedule.first(1))
        wrapped = ResilientLXPServer(
            server, name="s",
            policy=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=1,
                                   reset_timeout_ms=100.0,
                                   clock=clock),
            clock=clock)
        with pytest.raises(TransientSourceError):
            BufferComponent(wrapped).root()
        assert wrapped.breaker.state == "open"
        with pytest.raises(BreakerOpenError):
            BufferComponent(wrapped).root()
        clock.advance(101.0)            # reset window elapses
        buffer = BufferComponent(wrapped)
        root = buffer.root()
        assert buffer.fetch(buffer.down(root)) == "catalog"
        assert wrapped.breaker.state == "closed"

    def test_breaker_only_config_is_pass_through(self):
        # resilience activates via retries / deadline / degrade; the
        # breaker rides along with them rather than by itself
        config = EngineConfig(breaker_threshold=1)
        server = XMLFileWrapper("s", CATALOG_XML)
        assert resilient_server(server, config) is server


class TestResilientChannel:
    """The remote seam: flaky round trips between client and mediator."""

    def _remote_root(self, schedule, config, clock):
        med = MIXMediator()
        med.register_wrapper("s", XMLFileWrapper("s", CATALOG_XML))
        document = med.prepare(BOOKS_QUERY).document
        server = NavigableLXPServer(document, chunk_size=2, depth=2)
        channel = FlakyChannel(
            MessageChannel(server, latency_ms=0.0, ms_per_kb=0.0),
            schedule)
        transport = resilient_server(channel, config, name="chan",
                                     clock=clock)
        buffer = BufferComponent(transport)
        return XMLElement(buffer, buffer.root())

    def test_flaky_channel_heals_with_retries(self):
        baseline = _healthy_answer()
        clock = FakeClock()
        root = self._remote_root(
            FailureSchedule([True, False, True]),
            EngineConfig(retry_max_attempts=3), clock)
        assert root.to_tree() == baseline
        assert clock.sleeps          # retries actually backed off

    def test_dead_channel_degrades_client_side(self):
        clock = FakeClock()
        root = self._remote_root(
            FailureSchedule([False, False], exhausted="fail"),
            EngineConfig(retry_max_attempts=2,
                         on_source_failure="degrade"), clock)
        tree = root.to_tree()
        assert tree.label == "out"
        found = root.find_errors()
        assert found and found[0].error_info()["source"] == "chan"
