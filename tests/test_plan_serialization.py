"""Tests for plan serialization: JSON round-trips for every operator,
plus a property over the random-plan strategy."""

import json

import pytest
from hypothesis import given, settings

from repro.algebra import (
    Comparison,
    Const,
    Materialize,
    OrderBy,
    SerializationError,
    Var,
    evaluate,
    evaluate_bindings,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
)
from repro.algebra.predicates import And, Not, Or, TruePredicate
from repro.algebra.serialize import predicate_from_dict, \
    predicate_to_dict

from .fixtures import expected_fig4_answer, fig4_plan, fig4_sources
from .test_lazy_equivalence import _plans, _source_tree


class TestRoundTrips:
    def test_fig4_plan_round_trips(self):
        plan = fig4_plan()
        clone = plan_from_dict(plan_to_dict(plan))
        assert clone.pretty() == plan.pretty()
        assert evaluate(clone, fig4_sources()) == expected_fig4_answer()

    def test_json_form_is_valid_json(self):
        text = plan_to_json(fig4_plan(), indent=2)
        data = json.loads(text)
        assert data["op"] == "tupleDestroy"
        assert evaluate(plan_from_json(text), fig4_sources()) == \
            expected_fig4_answer()

    def test_materialize_and_orderby_round_trip(self):
        from repro.algebra import GetDescendants, Project, Source
        plan = Materialize(OrderBy(
            Project(GetDescendants(Source("s", "R"), "R", "a.b", "X"),
                    ["X"]),
            ["X"], descending=True))
        clone = plan_from_dict(plan_to_dict(plan))
        assert clone.pretty() == plan.pretty()
        assert clone.child.descending is True

    def test_predicates_round_trip(self):
        cases = [
            Comparison(Var("A"), "<=", Const(10)),
            Comparison(Var("A"), "=", Var("B")),
            And((Comparison(Var("A"), "=", Const("x")),
                 TruePredicate())),
            Or((Comparison(Var("A"), "!=", Const(1.5)),
                Not(TruePredicate()))),
        ]
        for predicate in cases:
            clone = predicate_from_dict(predicate_to_dict(predicate))
            assert str(clone) == str(predicate)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            plan_from_dict({"op": "quantum-join"})
        with pytest.raises(SerializationError):
            predicate_from_dict({"kind": "maybe"})

    def test_bad_json_rejected(self):
        with pytest.raises(SerializationError):
            plan_from_json("{not json")


@settings(max_examples=120, deadline=None)
@given(tree=_source_tree, plan=_plans())
def test_round_trip_preserves_semantics(tree, plan):
    clone = plan_from_json(plan_to_json(plan))
    sources = {"src": tree}
    assert evaluate_bindings(clone, sources).to_tree() == \
        evaluate_bindings(plan, sources).to_tree()
