"""Legacy shim so that editable installs work without the `wheel` package.

All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
