"""E11 (extension) -- Section 6's future work: hybrid lazy/eager
evaluation.

"We plan to exploit the measure provided by navigational complexity
for optimizing parts of algebraic plans for which a lazy evaluation is
not beneficial.  The resulting strategy will be a combination of lazy
demand-driven evaluation and intermediate eager steps."

Implemented and measured: the optimizer's ``materialize-unbrowsable``
rule inserts an intermediate eager step above orderBy/difference
subplans.  Expected shape: identical first-browse cost (the full scan
was forced anyway), and zero additional source navigations for any
amount of re-browsing -- while the purely lazy plan re-pays value
navigation every time.
"""

import pytest

from repro.bench import format_table, homes_and_schools
from repro.mediator import MIXMediator
from repro.navigation import MaterializedDocument
from repro.runtime import EngineConfig

ORDERED_QUERY = ("CONSTRUCT <out> $H {$H} </out> {} "
                 "WHERE homesSrc homes.home $H AND $H zip._ $V "
                 "ORDER BY $V DESC")

N_HOMES = 20


def _mediator(hybrid):
    med = MIXMediator(EngineConfig(hybrid=hybrid))
    for url, tree in homes_and_schools(N_HOMES).items():
        med.register_source(url, MaterializedDocument(tree))
    return med


def _navs(hybrid, browses):
    med = _mediator(hybrid)
    result = med.prepare(ORDERED_QUERY)
    reference = None
    for _ in range(browses):
        answer = result.materialize()
        if reference is None:
            reference = answer
        assert answer == reference
    return med.total_source_navigations()


def test_hybrid_table(write_result):
    rows = []
    for browses in (1, 2, 5):
        plain = _navs(False, browses)
        hybrid = _navs(True, browses)
        rows.append([browses, plain, hybrid,
                     "%.2fx" % (plain / max(1, hybrid))])
    table = format_table(
        ["client browses", "navs (pure lazy)",
         "navs (hybrid: materialize-unbrowsable)", "lazy/hybrid"],
        rows)
    write_result("E11_hybrid", table)

    assert _navs(True, 1) <= _navs(False, 1)
    assert _navs(True, 5) == _navs(True, 1)
    assert _navs(False, 5) > _navs(False, 1)


def test_bench_hybrid_browse(benchmark):
    def run():
        med = _mediator(True)
        return med.prepare(ORDERED_QUERY).materialize()

    benchmark(run)


def test_bench_pure_lazy_browse(benchmark):
    def run():
        med = _mediator(False)
        return med.prepare(ORDERED_QUERY).materialize()

    benchmark(run)
