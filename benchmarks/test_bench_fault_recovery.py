"""E12 -- fault tolerance: what resilience costs and what it saves.

The paper's sources are live and autonomous (Sec. 2), so fills can
fail.  PR 2's resilience layer must obey two contracts:

* **free when off**: the default config returns the *unwrapped*
  server, so the healthy path is the same object graph as before --
  we assert identical source-navigation counts and record the
  wall-clock ratio (acceptance: within noise of 1.0);
* **bounded when on**: against scripted transient faults, retries
  reproduce the healthy answer exactly; against a permanently dead
  stretch, degrade mode terminates with a marked partial answer
  instead of hanging or aborting.

Table 1 sweeps the healthy workload across configurations (resilience
off / armed-but-idle) and Table 2 scripts fault scenarios on a fake
clock (zero real sleeping), recording retry/degradation counters.
"""

from repro.bench import Timer, book_catalog, format_table
from repro.mediator import MIXMediator
from repro.runtime import EngineConfig
from repro.testing import FailureSchedule, FakeClock, FlakyLXPServer
from repro.wrappers import XMLFileWrapper
from repro.xtree import Tree, to_xml

N_BOOKS = 200

QUERY = ("CONSTRUCT <hits> $B {$B} </hits> {} "
         "WHERE store catalog.book $B")


def _mediator(config=None, schedule=None, clock=None):
    med = MIXMediator(config or EngineConfig(), clock=clock)
    server = XMLFileWrapper(
        "store", Tree("catalog", book_catalog("store", N_BOOKS, 7)),
        chunk_size=20, depth=4)
    if schedule is not None:
        server = FlakyLXPServer(server, schedule)
    med.register_wrapper("store", server)
    return med


def _healthy_run(config):
    med = _mediator(config)
    with Timer() as timer:
        answer = med.prepare(QUERY).materialize()
    return answer, med.total_source_navigations(), timer.ms


def test_healthy_path_overhead(write_result):
    """Resilience off vs armed-but-idle on the same healthy workload."""
    off_answer, off_navs, off_ms = _healthy_run(EngineConfig())
    armed = EngineConfig(retry_max_attempts=3)
    on_answer, on_navs, on_ms = _healthy_run(armed)

    # contract 1: identical work, identical answer
    assert to_xml(on_answer) == to_xml(off_answer)
    assert on_navs == off_navs

    ratio = on_ms / max(off_ms, 1e-9)
    rows = [
        ["resilience off (default)", off_navs, "%.2f" % off_ms],
        ["armed, no faults", on_navs, "%.2f" % on_ms],
    ]
    table = format_table(
        ["configuration", "source navigations", "wall ms"], rows)
    write_result("E12_fault_recovery", table, extra={
        "healthy_navs_off": off_navs,
        "healthy_navs_armed": on_navs,
        "healthy_ms_off": off_ms,
        "healthy_ms_armed": on_ms,
        "armed_over_off_ratio": ratio,
    })


def test_retry_recovery_reproduces_answer(write_result):
    """Transient faults + retries give the byte-identical answer."""
    reference, _, _ = _healthy_run(EngineConfig())
    clock = FakeClock()
    med = _mediator(EngineConfig(retry_max_attempts=3),
                    schedule=FailureSchedule([True, False] * 4),
                    clock=clock)
    result = med.prepare(QUERY)
    answer = result.materialize()
    assert to_xml(answer) == to_xml(reference)
    stats = result.stats()["resilience"]["per_source"]["store"]
    assert stats["retries"] == 4
    assert stats["giveups"] == 0

    rows = [["retry recovery", stats["retries"], stats["giveups"],
             0, "%.1f" % stats["retry_wait_ms"]]]

    # degrade against a permanently dead stretch: terminates, partial
    clock = FakeClock()
    med = _mediator(EngineConfig(retry_max_attempts=2,
                                 on_source_failure="degrade"),
                    schedule=FailureSchedule([False] * 3,
                                             exhausted="fail"),
                    clock=clock)
    result = med.prepare(QUERY)
    partial = result.materialize()
    stats = result.stats()["resilience"]["per_source"]["store"]
    assert stats["degraded"] >= 1
    assert len(partial.children) < N_BOOKS   # partial, not aborted
    rows.append(["degrade (dead stretch)", stats["retries"],
                 stats["giveups"], stats["degraded"],
                 "%.1f" % stats["retry_wait_ms"]])

    table = format_table(
        ["scenario", "retries", "giveups", "degraded",
         "fake wait ms"], rows)
    write_result("E12_fault_scenarios", table, extra={
        "retry_answer_identical": True,
        "degrade_partial_children": len(partial.children),
        "all_sleeps_faked": True,
    })
