"""E16 -- source-native query pushdown: one native request instead of
navigation-by-navigation evaluation.

Paper artifact: Section 5's wrapper query capabilities -- a wrapper
that can evaluate queries natively lets the mediator collapse a whole
single-source subplan into one request (Example 5 showed this for one
hand-written SQL wrapper; PR 6 generalizes it to a compiler pass over
any plan and any push-capable wrapper).

Reproduction: the E4 selective view (``qty = 42`` over a 1000-row
``bigdb.items``) and the E4/E6-style paged web listing, each run with
``EngineConfig(pushdown=...)`` off and on.  Expected shape: answers
are byte-identical; with pushdown on the metered source navigation of
the selective view collapses by >= 10x (the WHERE clause folds into
one merged SELECT; the page dialogue drains in one request).
"""

from repro.bench import book_catalog, format_table
from repro.mediator import MIXMediator
from repro.relational import Connection, Database
from repro.runtime import EngineConfig
from repro.webstore import HttpSimulator, make_catalog_site
from repro.wrappers import RelationalLXPWrapper, WebLXPWrapper
from repro.xtree import to_xml

N_ROWS = 1000

SELECTIVE_QUERY = ("CONSTRUCT <hits> $N {$N} </hits> {} "
                   "WHERE bigdb items._ $R AND $R name._ $N "
                   "AND $R qty._ $Q AND $Q = 42")

LISTING_QUERY = ("CONSTRUCT <titles> $T {$T} </titles> {} "
                 "WHERE amazon book.title._ $T")


def _database():
    db = Database("bigdb")
    table = db.create_table("items", [("name", "str"), ("qty", "int")])
    table.insert_many([("item%04d" % i, i % 97) for i in range(N_ROWS)])
    return db


def _relational_mediator(pushdown):
    med = MIXMediator(EngineConfig(pushdown=pushdown))
    med.register_wrapper(
        "bigdb", RelationalLXPWrapper(Connection(_database()),
                                      chunk_size=20))
    return med


def _web_mediator(pushdown):
    med = MIXMediator(EngineConfig(pushdown=pushdown))
    books = book_catalog("amazon", 60, seed=5)
    site = make_catalog_site("amazon", books, page_size=10)
    med.register_wrapper("amazon",
                         WebLXPWrapper(HttpSimulator(site)))
    return med


def _run(make_mediator, query, pushdown):
    med = make_mediator(pushdown)
    result = med.prepare(query)
    answer = to_xml(result.materialize())
    return answer, med.total_source_navigations(), result


def test_pushdown_collapses_source_navigation(write_result):
    rows = []
    extra = {}
    for label, make, query in [
            ("relational selective view", _relational_mediator,
             SELECTIVE_QUERY),
            ("web paged listing", _web_mediator, LISTING_QUERY)]:
        answer_off, navs_off, _ = _run(make, query, pushdown=False)
        answer_on, navs_on, result_on = _run(make, query, pushdown=True)
        assert answer_on == answer_off  # byte-identical answers
        assert navs_off >= 10 * max(navs_on, 1)
        [decision] = result_on.pushdown_decisions
        assert decision.pushed
        factor = navs_off / max(navs_on, 1)
        rows.append([label, navs_off, navs_on,
                     "%.0fx" % factor, decision.detail])
        key = label.split()[0]
        extra["%s_navs_off" % key] = navs_off
        extra["%s_navs_on" % key] = navs_on
    table = format_table(
        ["workload", "source navs (off)", "source navs (on)",
         "collapse", "native request"], rows)
    write_result("E16_pushdown", table, extra)


def test_pushdown_decision_is_explained():
    _, _, result = _run(_relational_mediator, SELECTIVE_QUERY,
                        pushdown=True)
    assert "pushed bigdb" in result.explain()
    report = result.stats()
    assert report["pushdown"]["pushed"] == 1
