"""E4 -- Section 4 / Example 5: reconciling navigation and source
granularities with the buffered relational wrapper.

Paper artifact: the relational wrapper ships n tuples per fill
("chunks of 100 tuples at a time"); the buffer mediates between
node-at-a-time DOM-VXD navigation and tuple/chunk-at-a-time sources,
"drastically reducing communication overhead".

Reproduction: a 1000-row table browsed (a) completely and (b) only a
10-row prefix, sweeping the chunk size n.  Expected shape: fill
requests (round trips) fall roughly as N/n for the full scan; for the
prefix browse, large n ships rows the client never looks at -- the
granularity trade-off.
"""

import pytest

from repro.bench import format_table
from repro.buffer import BufferComponent
from repro.navigation import materialize
from repro.relational import Connection, Database
from repro.wrappers import RelationalLXPWrapper

N_ROWS = 1000


def _database():
    db = Database("bigdb")
    table = db.create_table("items", [("name", "str"), ("qty", "int")])
    table.insert_many([("item%04d" % i, i % 97) for i in range(N_ROWS)])
    return db


def _buffered(chunk):
    wrapper = RelationalLXPWrapper(Connection(_database()),
                                   chunk_size=chunk)
    return BufferComponent(wrapper), wrapper


def _browse_prefix(document, n_rows):
    """Navigate the first ``n_rows`` rows (with their attributes)."""
    table = document.down(document.down(document.root()))
    row = table
    visited = 0
    while row is not None and visited < n_rows:
        attr = document.down(row)
        while attr is not None:
            document.fetch(attr)
            value = document.down(attr)
            if value is not None:
                document.fetch(value)
            attr = document.right(attr)
        visited += 1
        row = document.right(row)
    return visited


def test_full_scan_fill_requests_fall_with_chunk_size(write_result):
    rows = []
    fills_by_chunk = {}
    for chunk in (1, 10, 100, 1000):
        buffer, wrapper = _buffered(chunk)
        materialize(buffer)
        fills_by_chunk[chunk] = buffer.stats.fills
        rows.append([
            chunk, buffer.stats.fills, wrapper.stats.elements_shipped,
            "%.3f" % buffer.stats.hit_rate,
        ])
    table = format_table(
        ["chunk n", "fill requests (full scan)", "elements shipped",
         "buffer hit rate"], rows)
    write_result("E4_granularity_full_scan", table)

    assert fills_by_chunk[1] > fills_by_chunk[10] \
        > fills_by_chunk[100] > fills_by_chunk[1000]
    # Roughly N/n round trips at the row level.
    assert fills_by_chunk[10] <= N_ROWS / 10 + 5
    assert fills_by_chunk[100] <= N_ROWS / 100 + 5


def test_prefix_browse_overshipping(write_result):
    rows = []
    shipped = {}
    for chunk in (1, 10, 100, 1000):
        buffer, wrapper = _buffered(chunk)
        _browse_prefix(buffer, 10)
        shipped[chunk] = wrapper.stats.elements_shipped
        rows.append([chunk, buffer.stats.fills,
                     wrapper.stats.elements_shipped])
    table = format_table(
        ["chunk n", "fill requests (first 10 rows)",
         "elements shipped"], rows)
    write_result("E4_granularity_prefix", table)

    # Small n: many round trips, no waste.  Large n: one round trip,
    # shipping ~chunk rows for a 10-row browse.
    assert shipped[1000] > shipped[10] * 5
    fills_small = [r[1] for r in rows if r[0] == 1][0]
    fills_large = [r[1] for r in rows if r[0] == 1000][0]
    assert fills_small > fills_large


def test_wrapper_never_handles_attribute_navigation():
    """Example 5's point: rows ship complete, so attribute-level
    navigation is answered by the buffer without any fill."""
    buffer, wrapper = _buffered(10)
    table = buffer.down(buffer.down(buffer.root()))
    fills_before = buffer.stats.fills
    attr = buffer.down(table)       # into row1's attributes
    buffer.fetch(attr)
    buffer.fetch(buffer.down(attr))  # the value leaf
    buffer.fetch(buffer.right(attr))
    assert buffer.stats.fills == fills_before


def test_bench_full_scan_chunk_100(benchmark):
    def run():
        buffer, _ = _buffered(100)
        return materialize(buffer)

    tree = benchmark(run)
    assert len(tree.child(0).children) == N_ROWS


class TestQueryPushdown:
    """Example 5's premise: the wrapper translates the XMAS subquery
    into SQL, so the source filters -- versus shipping the base table
    and filtering in the mediator."""

    QUERY_TEMPLATE = ("CONSTRUCT <hits> $R {$R} </hits> {} "
                      "WHERE %s AND $R qty._ $Q AND $Q = 42")

    def _run(self, pushdown: bool):
        from repro.mediator import MIXMediator
        from repro.wrappers import (
            RelationalLXPWrapper,
            RelationalQueryWrapper,
        )
        from repro.relational import Connection

        conn = Connection(_database())
        med = MIXMediator()
        if pushdown:
            wrapper = RelationalQueryWrapper(
                conn, "SELECT * FROM items WHERE qty = 42",
                chunk_size=20)
            med.register_wrapper("src", wrapper)
            query = self.QUERY_TEMPLATE % "src tuple $R"
        else:
            wrapper = RelationalLXPWrapper(conn, chunk_size=20)
            med.register_wrapper("src", wrapper)
            query = self.QUERY_TEMPLATE % "src items._ $R"
        answer = med.prepare(query).materialize()
        return (len(answer.children), med.total_source_navigations(),
                wrapper.stats.elements_shipped)

    def test_pushdown_ships_less_and_navigates_less(self, write_result):
        hits_pd, navs_pd, shipped_pd = self._run(pushdown=True)
        hits_md, navs_md, shipped_md = self._run(pushdown=False)
        assert hits_pd == hits_md  # same answer cardinality
        assert shipped_pd < shipped_md / 10
        assert navs_pd < navs_md / 10
        table = format_table(
            ["strategy", "hits", "source navs", "elements shipped"],
            [["SQL pushdown (Example 5)", hits_pd, navs_pd, shipped_pd],
             ["base-table + mediator filter", hits_md, navs_md,
              shipped_md]])
        write_result("E4_query_pushdown", table)


def test_adaptive_granularity(write_result):
    """Wrapper-controlled adaptive chunks: cheap peeks AND cheap
    scans, without picking one fixed n."""
    from repro.buffer import AdaptiveTreeLXPServer, TreeLXPServer
    from repro.xtree import Tree, elem

    tree = Tree("r", [elem("x", str(i)) for i in range(N_ROWS)])

    def run(server_factory, scan_all):
        server = server_factory()
        buffer = BufferComponent(server)
        if scan_all:
            materialize(buffer)
        else:
            buffer.fetch(buffer.down(buffer.root()))  # peek
        return buffer.stats.fills, server.stats.elements_shipped

    rows = []
    for name, factory in [
        ("fixed n=2", lambda: TreeLXPServer(tree, chunk_size=2,
                                            depth=2)),
        ("fixed n=128", lambda: TreeLXPServer(tree, chunk_size=128,
                                              depth=2)),
        ("adaptive 2..128",
         lambda: AdaptiveTreeLXPServer(tree, initial_chunk=2,
                                       max_chunk=128, depth=2)),
    ]:
        peek_fills, peek_shipped = run(factory, scan_all=False)
        scan_fills, scan_shipped = run(factory, scan_all=True)
        rows.append([name, peek_shipped, scan_fills])
    table = format_table(
        ["policy", "elements shipped (peek 1)",
         "fill requests (full scan)"], rows)
    write_result("E4_adaptive", table)

    by_name = {r[0]: r for r in rows}
    # Adaptive peeks like small chunks and scans like large ones.
    assert by_name["adaptive 2..128"][1] <= \
        by_name["fixed n=128"][1] / 10
    assert by_name["adaptive 2..128"][2] <= \
        by_name["fixed n=2"][2] / 10
