#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from the measured tables.

Run the harness first, then this script::

    pytest benchmarks/ --benchmark-only    # writes benchmarks/results/
    python benchmarks/generate_experiments.py

The narrative below states each paper claim; the quoted tables are the
latest measured run from ``benchmarks/results/``.
"""

import os

HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS = os.path.join(HERE, "results")
TARGET = os.path.join(os.path.dirname(HERE), "EXPERIMENTS.md")


def load_tables():
    tables = {}
    for name in sorted(os.listdir(RESULTS)):
        if name.endswith(".txt"):
            with open(os.path.join(RESULTS, name)) as handle:
                tables[name[:-4]] = handle.read().rstrip()
    return tables


def render(tables):
    def tbl(key):
        return "```\n%s\n```" % tables[key]

    return f"""# EXPERIMENTS — paper vs. measured

The paper (EDBT 2000) has no numeric evaluation tables; its evaluation
artifacts are worked examples, figures and qualitative claims.  Each is
reproduced as an instrumented experiment in `benchmarks/`
(`pytest benchmarks/ --benchmark-only` regenerates every table below
into `benchmarks/results/`; this file is rebuilt from them by
`python benchmarks/generate_experiments.py`).  "Paper" states the
claim; "Measured" quotes this repository's run.

Absolute numbers are from this machine/substrates and will vary; the
*shapes* (who wins, growth rates, crossovers) are the reproduction
targets and are asserted by the benchmark tests themselves.

---

## E1 — Figures 3 & 4: XMAS query → algebra plan → answer

**Paper:** the Figure 3 query translates to the Figure 4 plan; on the
Example 2 data it yields the two `med_home` elements shown in Sec. 3.

**Measured:** the translated plan is operator-isomorphic to Figure 4
(2 sources, 4 getDescendants, 1 join on `$V1 = $V2`, groupBys on
`{{$H}}` and `{{}}`, 2 createElements; our translation adds one harmless
unary concatenate at the answer level):

{tbl("E1_fig4_plan")}

Lazily navigated answer == eager evaluation == the paper's document:

{tbl("E1_answer")}

Obtaining the root handle costs **0 source navigations** (asserted),
matching "returns a handle ... without even accessing the sources".

## E2 — Example 1 / Definition 2: browsability classes

**Paper:** q_conc (concatenation) is *bounded browsable*, q_sigma
(label filter) is *(unbounded) browsable*, q_sort (reordering) is
*unbrowsable*; with the `select(σ)` command, q_sigma becomes bounded.

**Measured** (source navigations for a fixed client navigation, source
sizes 4→64, relevant datum placed early vs late):

{tbl("E2_browsability")}

The empirical classifier, the static plan analyzer, and the paper
agree on all three.  The σ upgrade, implemented end to end
(`use_sigma` pushes sibling selection into the sources), measures
bounded exactly as Example 1 predicts:

{tbl("E2_sigma_upgrade")}

## E3 — Section 1: lazy beats materialization for partial browsing

**Paper:** users issue broad queries, look at the first few results,
and stop; materializing the full answer is "not an option".

**Measured** (allbooks view over 2×300 books, query "price < 40",
233 total hits):

{tbl("E3_lazy_vs_eager")}

Shape: huge win for small prefixes (~54× at first-1), monotone growth,
and a ~2.3× constant-factor overhead if the client insists on
navigating *everything* lazily — exactly the regime the paper scopes
its approach to.  Time-to-first-result is independent of catalog size
(asserted: 400-book catalog ≤ 3× the 50-book cost).

## E4 — Section 4 / Example 5: wrapper granularity

**Paper:** the relational wrapper ships n tuples per fill; buffering
"drastically reduces communication overhead"; the wrapper "does not
have to deal with navigations at the attribute level"; wrappers
translate XMAS subqueries into SQL (Example 5 / Figure 6).

**Measured** (1000-row table):

Full scan — round trips fall ~N/n:

{tbl("E4_granularity_full_scan")}

First-10-rows browse — large n overships:

{tbl("E4_granularity_prefix")}

Attribute-level navigation after a row fill causes **0 further fills**
(asserted).  Pushing the XMAS filter down as SQL (the
`RelationalQueryWrapper` exporting Figure 6's `view[tuple[att...]]`
shape) vs shipping the base table and filtering in the mediator:

{tbl("E4_query_pushdown")}

Adaptive wrapper-controlled granularity (extension): start small,
double on sequential continuation — peeks ship like small chunks,
scans round-trip like large ones:

{tbl("E4_adaptive")}

## E5 — Example 7 / Figure 8: liberal LXP and prefetching

**Paper:** the buffer's chase algorithms must work for the most
liberal protocol (holes at arbitrary positions, Example 7's trace);
prefetching decouples client pull from wrapper push.

**Measured:** Example 7's trace replays verbatim (asserted); strict,
chunked, whole-tree, and randomized-liberal policies all reconstruct
the identical document:

{tbl("E5_lxp_policies")}

Prefetch lookahead trades demand stalls for (slightly) more page
requests on a paginated web source (first-20 browse, 60-page site):

{tbl("E5_prefetch")}

## E6 — Appendix A, Figures 9 & 10: operator command tables

**Paper:** per-command node-id mappings for createElement and groupBy;
e.g. fetching a created element's constant label touches no input, and
`r` between grouped members scans to the next binding with the same
group-by list (Example 8).

**Measured** per-command source-navigation costs on the Example 8
instance:

{tbl("E6_operator_tables")}

Constant-label fetch is free; member navigation follows Figure 10's
`next`/`next_gb` scans (Example 8's groups
`[school1, school2, school4] / [school3] / [school5]` asserted).

Per-operator cost *scaling* (average source navigations per output
step, input sizes 20/40/80): getDescendants and the construction
operators are O(1) per step; groupBy/distinct pay O(n) scans per new
group/uniqueness test; orderBy's forced scan amortizes to a constant
per step but is all charged to the first binding:

{tbl("E6_cost_scaling")}

## E7 — Section 3: operator caches (ablation)

**Paper:** "some operators perform much more efficiently by caching
parts of their input" — the join inner cache (footnote 9), recursive
getDescendants frontiers, groupBy's buffered G_prev.

**Measured** (identical plans, `cache_enabled` on/off; the
recursive-frontier case re-walks, since that cache exists for
node-id revisits):

{tbl("E7_cache_ablation")}

Caches never hurt (asserted per case); the join inner cache wins by
~the outer cardinality.

## E8 — Section 3: rewriting for navigational complexity

**Paper:** the initial plan is rewritten into one "optimized with
respect to navigational complexity" (rule set omitted in the paper).

**Measured** (full browse, 20-home sources):

{tbl("E8_rewriting")}

Answers are bit-identical with and without rewriting (asserted; also
property-checked over random plans).

## E9 — Section 5: thin-client transparency and overhead

**Paper:** the client library makes the virtual document
"indistinguishable from a main memory resident document accessed via
DOM".

**Measured:** identical client code renders identical output over the
virtual answer and a materialized copy (asserted); cost:

{tbl("E9_client_overhead")}

The first pass pays for query evaluation; memoized re-traversal is
in-memory-speed.

## E10 — Section 5 outlook: remote clients via fragment exchange
*(extension: the paper's explicitly stated next step, implemented)*

**Paper:** "In the future we will allow the client and the mediator to
communicate over the network, however this will require exchanging
fragments of XML documents to avoid the communication overhead."

**Measured:** the virtual answer exported through LXP + a client-side
buffer, vs the naive one-message-per-DOM-command design (full browse,
30-home answer, simulated 20 ms link):

{tbl("E10_remote_client")}

Partial browsing stays proportionally cheap over the wire:

{tbl("E10_remote_partial")}

## E11 — Section 6 future work: hybrid lazy/eager evaluation
*(extension: implemented and measured)*

**Paper:** "The resulting strategy will be a combination of lazy
demand-driven evaluation and intermediate eager steps."

**Measured:** the `materialize-unbrowsable` optimizer rule inserts an
intermediate eager step above orderBy/difference subplans (which force
a full input scan regardless).  First browse costs the same; re-browsing
the buffered result is free, while the purely lazy plan re-pays:

{tbl("E11_hybrid")}
"""


def main() -> None:
    tables = load_tables()
    with open(TARGET, "w") as handle:
        handle.write(render(tables))
    print("wrote %s (%d tables quoted)" % (TARGET, len(tables)))


if __name__ == "__main__":
    main()
