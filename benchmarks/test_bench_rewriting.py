"""E8 -- Section 3, "Query Rewriting": optimizing plans for
navigational complexity.

Paper artifact: "during the rewriting phase, the initial plan is
rewritten into a plan E'_q which is optimized with respect to
navigational complexity" (rules omitted in the paper for space).

Reproduction: selective queries whose initial plans filter late; the
optimizer pushes selections toward the sources and fuses adjacent
descendant extractions.  We meter source navigations for the full
browse of the answer, with and without rewriting.
"""

import pytest

from repro.bench import format_table, homes_and_schools
from repro.mediator import MIXMediator
from repro.navigation import MaterializedDocument
from repro.rewriter import optimize
from repro.runtime import EngineConfig
from repro.xmas import parse_xmas, translate

#: A selective query: only one zip code's homes survive the filter.
SELECTIVE_QUERY = """
CONSTRUCT <answer>
            <med_home> $H $S {$S} </med_home> {$H}
          </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2 AND $V1 = 91003
"""

#: A projection-only query: the zip chain fuses to one extraction.
FUSABLE_QUERY = """
CONSTRUCT <zips> $V {$V} </zips> {}
WHERE homesSrc homes.home $H AND $H zip._ $V
"""


def _mediator(optimize_plans, n_homes=20):
    med = MIXMediator(EngineConfig(optimize_plans=optimize_plans))
    for url, tree in homes_and_schools(n_homes).items():
        med.register_source(url, MaterializedDocument(tree))
    return med


def _navigations(query, optimize_plans):
    med = _mediator(optimize_plans)
    result = med.prepare(query)
    answer = result.materialize()
    return med.total_source_navigations(), answer, result


def test_rewriting_preserves_answers():
    for query in (SELECTIVE_QUERY, FUSABLE_QUERY):
        _, unopt, _ = _navigations(query, False)
        _, opt, _ = _navigations(query, True)
        assert opt == unopt


def test_selective_query_improves():
    unopt_navs, _, _ = _navigations(SELECTIVE_QUERY, False)
    opt_navs, _, result = _navigations(SELECTIVE_QUERY, True)
    assert result.optimization_trace.applied
    assert opt_navs < unopt_navs


def test_fusion_reduces_navigations():
    unopt_navs, _, _ = _navigations(FUSABLE_QUERY, False)
    opt_navs, _, result = _navigations(FUSABLE_QUERY, True)
    assert "fuse-get-descendants" in result.optimization_trace.applied
    assert opt_navs <= unopt_navs


def test_rewriting_table(write_result, benchmark):
    rows = []
    for name, query in [("selective join filter", SELECTIVE_QUERY),
                        ("fusable zip extraction", FUSABLE_QUERY)]:
        unopt_navs, _, _ = _navigations(query, False)
        opt_navs, _, result = _navigations(query, True)
        rows.append([
            name, unopt_navs, opt_navs,
            "%.2fx" % (unopt_navs / max(1, opt_navs)),
            ", ".join(sorted(set(result.optimization_trace.applied))),
        ])
    table = format_table(
        ["query", "navs (initial plan)", "navs (rewritten)",
         "improvement", "rules fired"], rows)
    write_result("E8_rewriting", table)

    benchmark(lambda: optimize(translate(parse_xmas(SELECTIVE_QUERY))))
