"""E13 -- batched & concurrent navigation.

The channel-cost model of Section 5 charges per round trip, so the
dependent chain "fill chunk n, learn the hole for chunk n+1, ask
again" is the dominant cost of a forward scan over a chunked remote
source.  E13 measures the two concurrency levers added on top of the
plain LXP channel:

* **LXP pipelining** (``batch_navigations``): one request carries a
  batch of fill commands and the server speculatively resolves the
  frontier holes its own replies introduce -- round trips collapse
  while the command count (the paper's navigation cost) is unchanged.
* **thread-backed prefetching** (``prefetch_workers``): a worker pool
  fills upcoming holes while the client thinks; measured by the stall
  ratio (demanded holes whose fill had not landed yet).

Expected shape: batching cuts round trips by roughly the speculation
depth (>= 2x required below); the prefetcher converts demand fills
into overlapped prefetch fills without changing the answer.
"""

from repro.bench import HOMES_SCHOOLS_QUERY, format_table, \
    homes_and_schools
from repro.buffer import AsyncPrefetchingBuffer, BufferComponent, \
    TreeLXPServer
from repro.mediator import MIXMediator
from repro.navigation import MaterializedDocument, materialize
from repro.runtime import EngineConfig

N_HOMES = 30
CHUNK, DEPTH = 2, 2


def _remote_scan(config):
    med = MIXMediator(config)
    for url, tree in homes_and_schools(N_HOMES).items():
        med.register_source(url, MaterializedDocument(tree))
    result = med.prepare(HOMES_SCHOOLS_QUERY)
    root, stats = result.connect_remote(chunk_size=CHUNK, depth=DEPTH)
    answer = root.to_tree()
    return answer, stats


def test_batching_cuts_round_trips(write_result):
    rows = []
    record = {}
    answers = {}

    configs = [
        ("plain", EngineConfig()),
        ("batched", EngineConfig(batch_navigations=True)),
        ("batched+spec4", EngineConfig(batch_navigations=True,
                                       prefetch=4)),
        ("batched+spec8", EngineConfig(batch_navigations=True,
                                       prefetch=8)),
    ]
    for name, config in configs:
        answer, stats = _remote_scan(config)
        answers[name] = answer
        rows.append([name, stats.messages, stats.commands,
                     stats.bytes_transferred,
                     round(stats.virtual_ms)])
        record[name] = {"messages": stats.messages,
                        "commands": stats.commands,
                        "bytes": stats.bytes_transferred,
                        "virtual_ms": round(stats.virtual_ms, 3)}

    table = format_table(
        ["channel (full forward scan)", "round trips", "commands",
         "bytes", "virtual ms"], rows)
    write_result("E13_batched_navigation", table, record)

    # Identical answers under every configuration.
    assert len(set(repr(a) for a in answers.values())) == 1
    # Pipelining never uses more round trips than commands...
    for row in record.values():
        assert row["messages"] <= row["commands"]
    # ...the command count (navigation cost) is configuration-invariant...
    assert len(set(row["commands"] for row in record.values())) == 1
    # ...and speculation achieves the required >= 2x round-trip cut.
    assert record["batched+spec4"]["messages"] * 2 \
        <= record["plain"]["messages"]
    assert record["batched+spec8"]["messages"] \
        <= record["batched+spec4"]["messages"]


def test_prefetch_worker_stall_profile(write_result):
    tree = homes_and_schools(N_HOMES)["homesSrc"]
    rows = []
    record = {}

    plain = BufferComponent(TreeLXPServer(tree, chunk_size=CHUNK,
                                          depth=DEPTH))
    expected = materialize(plain)
    rows.append(["demand only", plain.stats.fills, 0, 0, "-"])
    record["demand"] = {"fills": plain.stats.fills,
                        "prefetch_fills": 0, "stalls": 0}

    for lookahead, workers in [(2, 1), (4, 2), (8, 4)]:
        buffer = AsyncPrefetchingBuffer(
            TreeLXPServer(tree, chunk_size=CHUNK, depth=DEPTH),
            lookahead=lookahead, workers=workers)
        try:
            assert materialize(buffer) == expected
        finally:
            buffer.close()
        stats = buffer.prefetch_stats
        fills = buffer.stats.fills
        assert stats.demand_fills + stats.prefetch_fills == fills
        stall_ratio = stats.stalls / fills if fills else 0.0
        name = "workers=%d lookahead=%d" % (workers, lookahead)
        rows.append([name, stats.demand_fills, stats.prefetch_fills,
                     stats.stalls, "%.2f" % stall_ratio])
        record[name] = {"demand_fills": stats.demand_fills,
                        "prefetch_fills": stats.prefetch_fills,
                        "stalls": stats.stalls,
                        "stall_ratio": round(stall_ratio, 3)}

    table = format_table(
        ["prefetcher (full forward scan)", "demand fills",
         "prefetch fills", "stalls", "stall ratio"], rows)
    write_result("E13_prefetch_stalls", table, record)

    # The pool must actually take work off the demand path.
    busiest = record["workers=4 lookahead=8"]
    assert busiest["prefetch_fills"] > busiest["demand_fills"]
