"""E2 -- Example 1 / Definition 2: the browsability classification.

Paper artifact: three views over the same data -- concatenation
(q_conc), label filtering (q_sigma), and reordering (q_sort) -- fall
into the classes *bounded browsable*, *browsable*, and *unbrowsable*.

Reproduction: build the three views as algebra plans, classify them
(a) empirically, by metering source navigations over growing sources
with the relevant data placed early vs late, and (b) statically with
the plan analyzer -- and check both classifications agree with the
paper.  The cost curves are written out for EXPERIMENTS.md.
"""

import pytest

from repro.algebra import (
    GetDescendants,
    OrderBy,
    Project,
    Source,
    Union,
)
from repro.bench import format_table
from repro.lazy import BindingsDocument, build_lazy_plan
from repro.navigation import Browsability, Navigation, classify
from repro.rewriter import classify_plan
from repro.runtime import ExecutionContext
from repro.xtree import Tree, elem


def _concat_plan():
    """q_conc: first-level children of both sources, concatenated."""
    left = Project(GetDescendants(Source("src0", "R1"), "R1", "_", "X"),
                   ["X"])
    right = Project(GetDescendants(Source("src1", "R2"), "R2", "_", "X"),
                    ["X"])
    return Union(left, right)


def _filter_plan():
    """q_sigma: first-level children labeled 'hit'."""
    return Project(GetDescendants(Source("src0", "R1"), "R1", "hit",
                                  "X"), ["X"])


def _sort_plan():
    """q_sort: first-level children reordered by their content."""
    base = GetDescendants(
        GetDescendants(Source("src0", "R1"), "R1", "_", "X"),
        "X", "_", "V")
    return OrderBy(Project(base, ["X", "V"]), ["V"])


def _view_factory(plan):
    def factory(source_docs):
        documents = {"src%d" % i: doc
                     for i, doc in enumerate(source_docs)}
        return BindingsDocument(build_lazy_plan(plan, documents))

    return factory


def _early(n):
    kids = [elem("hit", "000")] + [elem("miss", "%03d" % i)
                                   for i in range(n - 1)]
    return [Tree("src", kids), Tree("src", kids)]


def _late(n):
    kids = [elem("miss", "%03d" % i) for i in range(n - 1)]
    kids.append(elem("hit", "000"))
    return [Tree("src", kids), Tree("src", kids)]


NAV = Navigation.parse("d;f;d@1;f;d@2;f")  # first binding + its value

CASES = [
    ("q_conc (concatenation)", _concat_plan, Browsability.BOUNDED),
    ("q_sigma (label filter)", _filter_plan, Browsability.BROWSABLE),
    ("q_sort (reorder)", _sort_plan, Browsability.UNBROWSABLE),
]


@pytest.mark.parametrize("name,builder,expected",
                         CASES, ids=[c[0].split()[0] for c in CASES])
def test_empirical_class_matches_paper(name, builder, expected):
    report = classify(_view_factory(builder()), _early, _late, NAV,
                      sizes=(4, 8, 16, 32, 64))
    assert report.classification is expected, report.summary()


@pytest.mark.parametrize("name,builder,expected",
                         CASES, ids=[c[0].split()[0] for c in CASES])
def test_static_analyzer_agrees(name, builder, expected):
    assert classify_plan(builder()) is expected


def test_cost_curves_table(write_result, benchmark):
    rows = []
    reports = {}
    for name, builder, expected in CASES:
        report = classify(_view_factory(builder()), _early, _late, NAV,
                          sizes=(4, 8, 16, 32, 64))
        reports[name] = report
        rows.append([
            name, str(expected), str(report.classification),
            str(classify_plan(builder())),
            str(report.early.costs), str(report.late.costs),
        ])
    table = format_table(
        ["view", "paper", "empirical", "static",
         "source navs (early data)", "source navs (late data)"],
        rows)
    write_result("E2_browsability", table)

    # Benchmark the bounded view's per-navigation cost at size 64.
    def navigate_bounded():
        from repro.navigation import (
            CountingDocument,
            MaterializedDocument,
            run_navigation,
        )
        docs = [CountingDocument(MaterializedDocument(t))
                for t in _early(64)]
        view = _view_factory(_concat_plan())(docs)
        run_navigation(view, NAV)
        return sum(d.total for d in docs)

    cost = benchmark(navigate_bounded)
    assert cost <= 12  # bounded: independent of the 64-element source


def test_sigma_command_upgrades_filter_view(write_result):
    """The paper's remark: with select(sigma) in NC, q_sigma becomes
    bounded browsable -- statically AND empirically."""
    from repro.rewriter import classify_path
    from repro.xtree import parse_path
    assert classify_path(parse_path("hit")) is Browsability.BROWSABLE
    assert classify_path(parse_path("hit"), sigma_available=True) \
        is Browsability.BOUNDED

    # Empirically: the same filter view, evaluated with sigma-enabled
    # lazy mediators, costs a flat number of source commands however
    # late the hit sits.
    def sigma_factory(source_docs):
        documents = {"src%d" % i: doc
                     for i, doc in enumerate(source_docs)}
        return BindingsDocument(
            build_lazy_plan(_filter_plan(), documents,
                            ExecutionContext.create(use_sigma=True)))

    report = classify(sigma_factory, _early, _late, NAV,
                      sizes=(4, 8, 16, 32, 64))
    assert report.classification is Browsability.BOUNDED, \
        report.summary()
    write_result(
        "E2_sigma_upgrade",
        "q_sigma with select(sigma) pushed to the source:\n"
        "  early-data costs: %s\n  late-data costs:  %s\n"
        "  class: %s (was: browsable without sigma)"
        % (report.early.costs, report.late.costs,
           report.classification))
