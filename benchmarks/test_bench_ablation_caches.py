"""E7 -- Section 3's operator caches, ablated.

Paper artifacts: "the mediator is not completely stateless; some
operators perform much more efficiently by caching parts of their
input": the nested-loop join's inner cache (footnote 9), the recursive
getDescendants frontier cache, and groupBy's buffered G_prev /
grouped-value lists.

Reproduction: evaluate identical plans with ``cache_enabled`` on and
off, metering source navigations.  Expected shape: caches never hurt,
and the join inner cache wins by roughly the outer cardinality.
"""

import pytest

from repro.algebra import (
    Comparison,
    Distinct,
    GetDescendants,
    GroupBy,
    Join,
    Project,
    Source,
    Var,
)
from repro.bench import Timer, format_table
from repro.lazy import BindingsDocument, build_lazy_plan
from repro.runtime import ExecutionContext
from repro.navigation import (
    CountingDocument,
    MaterializedDocument,
    materialize,
)
from repro.xtree import Tree, elem


def _run(plan, trees, cache, passes=1):
    """Walk the plan's bindings ``passes`` times over the *same*
    operator instance (re-walks model a client resuming from
    previously issued node-ids); returns (source navigations, cache
    registry report, wall-clock ms)."""
    docs = {url: CountingDocument(MaterializedDocument(t))
            for url, t in trees.items()}
    context = ExecutionContext.create(cache_enabled=cache)
    op = build_lazy_plan(plan, docs, context)
    with Timer() as timer:
        for _ in range(passes):
            materialize(BindingsDocument(op))
    navs = sum(d.total for d in docs.values())
    return navs, context.caches.as_dict(), timer.ms


def _navigations(plan, trees, cache, passes=1):
    return _run(plan, trees, cache, passes)[0]


def _join_case(n=15):
    homes = Tree("homesSrc", [Tree("homes", [
        elem("home", elem("zip", str(91000 + i % 5)))
        for i in range(n)])])
    schools = Tree("schoolsSrc", [Tree("schools", [
        elem("school", elem("zip", str(91000 + i % 5)))
        for i in range(n)])])
    left = GetDescendants(
        GetDescendants(Source("homesSrc", "R1"), "R1", "homes.home",
                       "H"), "H", "zip._", "V")
    right = GetDescendants(
        GetDescendants(Source("schoolsSrc", "R2"), "R2",
                       "schools.school", "S"), "S", "zip._", "W")
    plan = Join(left, right, Comparison(Var("V"), "=", Var("W")))
    return plan, {"homesSrc": homes, "schoolsSrc": schools}


def _recursive_path_case(depth=6, fanout=2):
    def build(level):
        if level == 0:
            return elem("a", "leaf")
        return Tree("a", [build(level - 1) for _ in range(fanout)])

    tree = Tree("src", [build(depth)])
    plan = Project(
        GetDescendants(Source("src", "R"), "R", "a+", "X"), ["X"])
    return plan, {"src": tree}


def _groupby_case(n=30):
    doc = Tree("src", [Tree("r", [
        elem("p", elem("k", str(i % 4)), elem("v", str(i)))
        for i in range(n)])])
    base = GetDescendants(Source("src", "R"), "R", "r.p", "P")
    plan = GroupBy(
        GetDescendants(GetDescendants(base, "P", "k", "K"),
                       "P", "v", "V"),
        ["K"], [("V", "Vs")])
    return plan, {"src": doc}


def _distinct_case(n=25):
    doc = Tree("src", [Tree("r", [
        elem("x", str(i % 6)) for i in range(n)])])
    plan = Distinct(Project(
        GetDescendants(Source("src", "R"), "R", "r.x", "X"), ["X"]))
    return plan, {"src": doc}


#: (name, case builder, walk passes).  The recursive-frontier cache
#: pays off when a client *revisits* node-ids, so that case re-walks.
CASES = [
    ("join inner cache (15x15)", _join_case, 1),
    ("recursive getDescendants frontier (re-walk)",
     _recursive_path_case, 2),
    ("groupBy G_prev / key memo", _groupby_case, 1),
    ("distinct seen-set", _distinct_case, 1),
]


@pytest.mark.parametrize("name,case,passes", CASES,
                         ids=[c[0].split()[0] for c in CASES])
def test_cache_never_hurts(name, case, passes):
    plan, trees = case()
    assert _navigations(plan, trees, cache=True, passes=passes) <= \
        _navigations(plan, trees, cache=False, passes=passes)

def test_recursive_frontier_cache_pays_on_revisit():
    plan, trees = _recursive_path_case()
    with_cache = _navigations(plan, trees, cache=True, passes=2)
    without = _navigations(plan, trees, cache=False, passes=2)
    assert with_cache < without


def test_join_inner_cache_wins_by_outer_cardinality():
    plan, trees = _join_case(n=15)
    with_cache = _navigations(plan, trees, cache=True)
    without = _navigations(plan, trees, cache=False)
    # 15 outer bindings each rescan the inner side without the cache.
    assert without > with_cache * 4


def test_ablation_table(write_result, benchmark):
    rows = []
    cases = {}
    for name, case, passes in CASES:
        plan, trees = case()
        with_cache, report, ms_on = _run(plan, trees, cache=True,
                                         passes=passes)
        without, _, ms_off = _run(plan, trees, cache=False,
                                  passes=passes)
        rows.append([name, with_cache, without,
                     "%.1fx" % (without / max(1, with_cache))])
        cases[name] = {"ms_cache_on": ms_on, "ms_cache_off": ms_off,
                       "cache_report": report}
    table = format_table(
        ["operator cache", "navs (cache on)", "navs (cache off)",
         "off/on"], rows)
    write_result("E7_cache_ablation", table, extra={"cases": cases})

    plan, trees = _join_case(n=15)
    benchmark(lambda: _navigations(plan, trees, cache=True))
