"""E3 -- Section 1's motivating claim: navigation-driven evaluation
beats materializing the full answer when the user browses a prefix.

Paper artifact: "users ... issue relatively broad queries, navigate the
first few results and then stop ... materializing the full answer on
the client side is not an option."

Reproduction: the allbooks integrated view over two 300-book catalogs;
a broad query (books under $40).  We sweep the number of results the
user actually looks at and meter (i) source navigations and (ii)
wall-clock, for lazy vs eager evaluation.  Expected shape: lazy cost
grows with the fraction browsed; eager cost is flat at the worst case;
lazy wins by a large factor for small prefixes and approaches eager
(with constant-factor overhead) only when everything is read.
"""

import pytest

from repro.bench import (
    Timer,
    allbooks_plan,
    browse_first_k,
    format_table,
    two_bookstores,
)
from repro.mediator import MIXMediator
from repro.wrappers import XMLFileWrapper
from repro.xtree import Tree

N_BOOKS = 300

QUERY = """
CONSTRUCT <hits> $B {$B} </hits> {}
WHERE allbooks book $B AND $B price._ $P AND $P < 40
"""


def _mediator():
    amazon, bn = two_bookstores(N_BOOKS, overlap=0.5)
    med = MIXMediator()
    med.register_wrapper(
        "amazonSrc",
        XMLFileWrapper("amazonSrc", Tree("catalog", amazon),
                       chunk_size=20, depth=4))
    med.register_wrapper(
        "bnSrc",
        XMLFileWrapper("bnSrc", Tree("catalog", bn),
                       chunk_size=20, depth=4))
    med.register_view("allbooks", allbooks_plan("amazonSrc", "bnSrc"))
    return med


def _lazy_cost(k):
    med = _mediator()
    with Timer() as timer:
        root = med.prepare(QUERY).root
        found = browse_first_k(root, k)
    return found, med.total_source_navigations(), timer.ms


def _eager_cost():
    med = _mediator()
    with Timer() as timer:
        answer = med.query_eager(QUERY)
    return len(answer.children), med.total_source_navigations(), timer.ms


def test_prefix_browsing_cost_curve(write_result):
    total_hits, eager_navs, eager_ms = _eager_cost()
    rows = []
    lazy_at = {}
    for k in (1, 5, 20, 100, total_hits):
        found, navs, ms = _lazy_cost(k)
        lazy_at[k] = navs
        rows.append(["lazy first-%d" % k, found, navs,
                     "%.1fx" % (eager_navs / max(1, navs)), ms])
    rows.append(["eager (full answer)", total_hits, eager_navs,
                 "1.0x", eager_ms])
    table = format_table(
        ["strategy", "results seen", "source navigations",
         "eager/this navs", "ms"], rows)
    write_result("E3_lazy_vs_eager", table)

    # The paper's shape: big win for small prefixes, monotone growth.
    assert lazy_at[1] * 5 < eager_navs
    assert lazy_at[1] <= lazy_at[5] <= lazy_at[20] <= lazy_at[100]


def test_time_to_first_result_is_constant_in_source_size():
    """Lazy time-to-first-result must not grow with catalog size the
    way eager evaluation does (navs metric: deterministic)."""

    def first_result_navs(n_books):
        amazon, bn = two_bookstores(n_books, overlap=0.5)
        med = MIXMediator()
        med.register_wrapper(
            "amazonSrc", XMLFileWrapper("amazonSrc",
                                        Tree("catalog", amazon)))
        med.register_wrapper(
            "bnSrc", XMLFileWrapper("bnSrc", Tree("catalog", bn)))
        med.register_view("allbooks",
                          allbooks_plan("amazonSrc", "bnSrc"))
        root = med.prepare(QUERY).root
        browse_first_k(root, 1)
        return med.total_source_navigations()

    small, large = first_result_navs(50), first_result_navs(400)
    # Depends only on where the first cheap book sits, not on size.
    assert large < small * 3


def test_bench_lazy_first_result(benchmark):
    benchmark(lambda: _lazy_cost(1))


def test_bench_eager_full_answer(benchmark):
    benchmark(_eager_cost)
