"""E1 -- Figures 3 & 4: the XMAS query, its algebraic plan, and the
worked answer of the running example.

Paper artifact: the query of Figure 3 translates to the plan of
Figure 4 and, on the Example 2 / Section 3 data, produces the
med_home answer shown in the text.

Reproduction: parse the exact query text, check the plan is
operator-isomorphic to Figure 4, and check the lazily navigated answer
equals both the eager evaluation and the paper's document.
"""

from repro.algebra import (
    Concatenate,
    CreateElement,
    GetDescendants,
    GroupBy,
    Join,
    Source,
    walk_plan,
)
from repro.mediator import MIXMediator
from repro.wrappers import XMLFileWrapper
from repro.xmas import parse_xmas, translate
from repro.xtree import elem

FIG3_QUERY = """
CONSTRUCT <answer>
            <med_home> $H $S {$S} </med_home> {$H}
          </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
"""

HOMES_XML = ("<homes>"
             "<home><addr>La Jolla</addr><zip>91220</zip></home>"
             "<home><addr>El Cajon</addr><zip>91223</zip></home>"
             "</homes>")
SCHOOLS_XML = ("<schools>"
               "<school><dir>Smith</dir><zip>91220</zip></school>"
               "<school><dir>Bar</dir><zip>91220</zip></school>"
               "<school><dir>Hart</dir><zip>91223</zip></school>"
               "</schools>")

EXPECTED_ANSWER = elem(
    "answer",
    elem("med_home",
         elem("home", elem("addr", "La Jolla"), elem("zip", "91220")),
         elem("school", elem("dir", "Smith"), elem("zip", "91220")),
         elem("school", elem("dir", "Bar"), elem("zip", "91220"))),
    elem("med_home",
         elem("home", elem("addr", "El Cajon"), elem("zip", "91223")),
         elem("school", elem("dir", "Hart"), elem("zip", "91223"))),
)

#: Operator counts of the Figure 4 plan.
FIG4_OPERATOR_COUNTS = {
    Source: 2,
    GetDescendants: 4,
    Join: 1,
    GroupBy: 2,
    Concatenate: 2,   # Figure 4 shows 1; our translation adds a
    CreateElement: 2,  # harmless unary concatenate at the answer level
}


def _mediator():
    med = MIXMediator()
    med.register_wrapper("homesSrc",
                         XMLFileWrapper("homesSrc", HOMES_XML))
    med.register_wrapper("schoolsSrc",
                         XMLFileWrapper("schoolsSrc", SCHOOLS_XML))
    return med


def test_plan_is_isomorphic_to_fig4(write_result, benchmark):
    plan = benchmark(lambda: translate(parse_xmas(FIG3_QUERY)))
    nodes = list(walk_plan(plan))
    for op_type, expected in FIG4_OPERATOR_COUNTS.items():
        actual = sum(1 for n in nodes if type(n) is op_type)
        assert actual == expected, (
            "%s: expected %d, found %d"
            % (op_type.__name__, expected, actual))
    joins = [n for n in nodes if isinstance(n, Join)]
    assert str(joins[0].predicate) == "$V1 = $V2"
    group_bys = [n for n in nodes if isinstance(n, GroupBy)]
    assert sorted(tuple(g.group_vars) for g in group_bys) \
        == [(), ("H",)]
    write_result("E1_fig4_plan", plan.pretty())


def test_lazy_answer_matches_paper_and_eager(write_result, benchmark):
    def run():
        med = _mediator()
        return med.prepare(FIG3_QUERY).materialize()

    lazy_answer = benchmark(run)
    assert lazy_answer == EXPECTED_ANSWER
    assert _mediator().query_eager(FIG3_QUERY) == EXPECTED_ANSWER
    write_result("E1_answer", lazy_answer.sexpr())


def test_root_handle_without_source_access(benchmark):
    def run():
        med = _mediator()
        result = med.prepare(FIG3_QUERY)
        tag = result.root.tag
        return tag, med.total_source_navigations()

    tag, navs = benchmark(run)
    assert tag == "answer"
    assert navs == 0
