"""E14 -- observability overhead: off vs record vs full export.

The observability layer (PR 4) threads span and metrics hooks through
every seam of the tower -- client, lazy operators, buffer, channel,
source meters.  Its contract is *pay-for-use*: with no subscribers,
no recording, and metrics disabled (all defaults), every hook
short-circuits on one attribute check, so the engine must navigate
byte-identically to the un-instrumented build and run within noise of
itself.

E14 measures the E13 remote forward-scan workload in three modes:

* **off** -- defaults: idle tracer, metrics disabled, operators
  unwrapped.  Run twice (interleaved) so the off/off ratio exposes
  the measurement noise floor; the acceptance band below is set from
  that floor.
* **record** -- recording tracer + fake clock, ``metrics_enabled``,
  ``observe_operators``: every span/event is built and kept.
* **export** -- record, plus dumping the trace as JSONL *and* Chrome
  ``trace_event`` and the metrics as Prometheus text (to in-memory
  sinks, so disk speed is not part of the measurement).

Asserted invariants: the navigation behavior (channel commands,
round trips, per-source navigation counts, answer) is identical in
every mode -- observation must never change what it observes -- and
the off-path runs within the noise band of its own re-run.
"""

import io
import time

from repro.bench import HOMES_SCHOOLS_QUERY, format_table, \
    homes_and_schools
from repro.mediator import MIXMediator
from repro.navigation import MaterializedDocument
from repro.runtime import (
    EngineConfig,
    Tracer,
    export_chrome_trace,
    export_jsonl,
    export_prometheus,
)
from repro.testing import FakeClock

N_HOMES = 30
CHUNK, DEPTH = 2, 2
ROUNDS = 5


def _scan(config, tracer=None):
    """The E13 workload: a full remote forward scan of the
    homes/schools join view."""
    med = MIXMediator(config, tracer=tracer)
    for url, tree in homes_and_schools(N_HOMES).items():
        med.register_source(url, MaterializedDocument(tree))
    result = med.prepare(HOMES_SCHOOLS_QUERY)
    root, stats = result.connect_remote(chunk_size=CHUNK, depth=DEPTH)
    answer = root.to_tree()
    return med, answer, stats


def _timed(fn):
    """Median wall-clock of ROUNDS runs (median, not min: the
    comparison is mode-to-mode on the same machine)."""
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def _fingerprint(med, answer, stats):
    return {
        "commands": stats.commands,
        "round_trips": stats.messages,
        "bytes": stats.bytes_transferred,
        "source_navigations": {
            name: meter.total for name, meter in med.meters.items()},
        "answer": repr(answer),
    }


def test_observability_overhead(write_result):
    modes = {}
    fingerprints = {}

    def run_off():
        med, answer, stats = _scan(EngineConfig())
        fingerprints["off"] = _fingerprint(med, answer, stats)

    def run_record():
        tracer = Tracer(record=True, clock=FakeClock())
        med, answer, stats = _scan(
            EngineConfig(observe_operators=True, metrics_enabled=True),
            tracer=tracer)
        fingerprints["record"] = _fingerprint(med, answer, stats)
        fingerprints["record"]["events"] = len(tracer.events)

    def run_export():
        tracer = Tracer(record=True, clock=FakeClock())
        med, answer, stats = _scan(
            EngineConfig(observe_operators=True, metrics_enabled=True),
            tracer=tracer)
        export_jsonl(tracer.events, io.StringIO())
        export_chrome_trace(tracer.events, io.StringIO())
        export_prometheus(med.runtime.metrics, io.StringIO())
        fingerprints["export"] = _fingerprint(med, answer, stats)

    # Interleave-ish: warm everything once, then time each mode.
    run_off(), run_record(), run_export()
    modes["off"] = _timed(run_off)
    modes["off_again"] = _timed(run_off)
    modes["record"] = _timed(run_record)
    modes["export"] = _timed(run_export)

    base = modes["off"]
    rows = [[name, "%.4f" % seconds, "%.2fx" % (seconds / base)]
            for name, seconds in modes.items()]
    table = format_table(
        ["mode (E13 remote scan, %d homes)" % N_HOMES,
         "median s", "vs off"], rows)
    record = {name: {"seconds": round(seconds, 6),
                     "ratio_vs_off": round(seconds / base, 4)}
              for name, seconds in modes.items()}
    record["events_recorded"] = fingerprints["record"].pop("events")
    write_result("E14_observability_overhead", table, record)

    # Observation never changes what it observes: identical channel
    # commands, round trips, bytes, per-source counts, and answer.
    assert fingerprints["off"] == fingerprints["record"] \
        == fingerprints["export"]

    # The off path is the off path: re-running the default
    # configuration lands within the noise band (generous: CI boxes
    # jitter; the point is there is no structural overhead).
    off_ratio = modes["off_again"] / modes["off"]
    assert 0.4 <= off_ratio <= 2.5, (
        "off-path re-run ratio %.2f outside noise band" % off_ratio)

    # Recording costs something, but not absurdly (sanity bound, not
    # a performance target).
    assert modes["export"] / base < 250.0
