"""E10 (extension) -- Section 5's outlook: client/mediator over a
network, "exchanging fragments of XML documents to avoid the
communication overhead".

Not an evaluation figure in the paper, but its explicitly stated next
step; we implement and measure it.  The virtual answer document is
exported through LXP and reassembled by a client-side buffer; the
baseline is the naive design where every DOM-VXD command is its own
round trip.

Expected shape: fragment exchange cuts round trips by roughly the
fragment size; bigger fragments trade bytes for messages.
"""

import pytest

from repro.bench import (
    browse_first_k,
    format_table,
    homes_and_schools,
    HOMES_SCHOOLS_QUERY,
)
from repro.client import RPCDocument, connect_remote, \
    open_virtual_document
from repro.mediator import MIXMediator
from repro.navigation import MaterializedDocument

N_HOMES = 30


def _mediator():
    med = MIXMediator()
    for url, tree in homes_and_schools(N_HOMES).items():
        med.register_source(url, MaterializedDocument(tree))
    return med


def _fragment_session(chunk, depth):
    med = _mediator()
    return connect_remote(med.prepare(HOMES_SCHOOLS_QUERY).document,
                          chunk_size=chunk, depth=depth)


def test_remote_answers_agree():
    root, _ = _fragment_session(5, 3)
    med = _mediator()
    rpc_root = open_virtual_document(
        RPCDocument(med.prepare(HOMES_SCHOOLS_QUERY).document))
    assert root.to_tree() == rpc_root.to_tree()


def test_fragment_exchange_cuts_round_trips(write_result):
    rows = []
    messages = {}
    # RPC baseline: full browse.
    med = _mediator()
    rpc = RPCDocument(med.prepare(HOMES_SCHOOLS_QUERY).document)
    open_virtual_document(rpc).to_tree()
    rows.append(["RPC (1 command = 1 msg)", rpc.stats.messages,
                 rpc.stats.bytes_transferred,
                 round(rpc.stats.virtual_ms)])
    messages["rpc"] = rpc.stats.messages

    for chunk, depth in [(1, 1), (5, 3), (20, 6)]:
        root, stats = _fragment_session(chunk, depth)
        root.to_tree()
        name = "LXP fragments chunk=%d depth=%d" % (chunk, depth)
        rows.append([name, stats.messages, stats.bytes_transferred,
                     round(stats.virtual_ms)])
        messages[(chunk, depth)] = stats.messages

    table = format_table(
        ["client channel (full browse)", "messages", "bytes",
         "virtual ms"], rows)
    write_result("E10_remote_client", table)

    assert messages[(5, 3)] * 3 < messages["rpc"]
    assert messages[(20, 6)] <= messages[(5, 3)]


def test_partial_browse_stays_cheap_remotely(write_result):
    rows = []
    for k in (1, 5, 15):
        root, stats = _fragment_session(5, 3)
        browse_first_k(root, k)
        rows.append([k, stats.messages, stats.bytes_transferred])
    table = format_table(
        ["first-k med_homes", "messages", "bytes"], rows)
    write_result("E10_remote_partial", table)
    assert rows[0][1] < rows[-1][1]


def test_bench_remote_full_browse(benchmark):
    def run():
        root, _ = _fragment_session(10, 4)
        return root.to_tree()

    benchmark(run)
