"""E5 -- Example 7 / Figure 8: liberal LXP policies and prefetching.

Paper artifacts: the liberal fill trace of Example 7; the claim that
the generic buffer's chase algorithms work for "the most liberal LXP
protocol, in which the wrapper can return holes at arbitrary
positions"; and the prefetching extension ("the wrapper can prefetch
data from the source and fill in previously left open holes").

Reproduction: (a) replay Example 7's exact trace; (b) drive the buffer
over strict-chunked and randomized-liberal servers on the same
document and check indistinguishability plus the fill-count spread;
(c) measure how prefetch lookahead trades demand stalls for total page
requests on a paginated web source.
"""

import pytest

from repro.bench import book_catalog, browse_first_k, format_table
from repro.buffer import (
    BufferComponent,
    FragElem,
    FragHole,
    PrefetchingBuffer,
    RandomizedLXPServer,
    TreeLXPServer,
)
from repro.mediator import MIXMediator
from repro.navigation import materialize
from repro.webstore import HttpSimulator, make_catalog_site
from repro.wrappers import WebLXPWrapper
from repro.xtree import Tree, elem


def test_example7_trace_replays():
    """The paper's liberal trace, verbatim."""
    script = {
        ("root",): [FragElem("a", (FragHole(1),))],
        1: [FragElem("b", (FragHole(2),)), FragHole(3)],
        3: [FragElem("c")],
        2: [FragHole(4), FragElem("d", (FragHole(5),)), FragHole(6)],
        4: [],
        5: [],
        6: [FragElem("e")],
    }
    fills = []

    class Scripted:
        def get_root(self):
            return FragHole(("root",))

        def fill(self, hole_id):
            fills.append(hole_id)
            return script[hole_id]

    buffer = BufferComponent(Scripted())
    assert materialize(buffer) == elem("a", elem("b", "d", "e"),
                                       elem("c"))
    assert set(fills) == set(script)  # every hole eventually filled


def test_liberal_vs_strict_policies(write_result):
    tree = Tree("r", [elem("x", str(i), str(i + 1000))
                      for i in range(60)])
    rows = []
    for name, server in [
        ("strict chunk=5 depth=1", TreeLXPServer(tree, chunk_size=5,
                                                 depth=1)),
        ("strict chunk=20 depth=3", TreeLXPServer(tree, chunk_size=20,
                                                  depth=3)),
        ("whole tree per fill", TreeLXPServer(tree, chunk_size=100)),
        ("liberal randomized s=1", RandomizedLXPServer(tree, seed=1)),
        ("liberal randomized s=2", RandomizedLXPServer(tree, seed=2)),
    ]:
        buffer = BufferComponent(server)
        assert materialize(buffer) == tree  # indistinguishable
        rows.append([name, buffer.stats.fills,
                     server.stats.elements_shipped,
                     server.stats.holes_shipped])
    table = format_table(
        ["policy", "fill requests", "elements shipped",
         "holes shipped"], rows)
    write_result("E5_lxp_policies", table)


def _browse_web(lookahead, n_books=1500, page_size=25, k=20):
    books = book_catalog("amazon", n_books, seed=3)
    site = make_catalog_site("amazon", books, page_size=page_size)
    http = HttpSimulator(site, latency_ms=80.0, ms_per_kb=5.0)
    buffer = PrefetchingBuffer(WebLXPWrapper(http),
                               lookahead=lookahead)
    med = MIXMediator()
    med.register_source("amazon", buffer)
    root = med.query(
        "CONSTRUCT <hits> $B {$B} </hits> {} "
        "WHERE amazon book $B AND $B price._ $P AND $P < 12")
    browse_first_k(root, k, per_result=lambda b: b.to_tree())
    return buffer.prefetch_stats, http.stats


def test_prefetch_trades_stalls_for_requests(write_result):
    rows = []
    stalls = {}
    requests = {}
    for lookahead in (0, 1, 2, 4):
        prefetch_stats, http_stats = _browse_web(lookahead)
        stalls[lookahead] = prefetch_stats.demand_fills
        requests[lookahead] = http_stats.requests
        rows.append([lookahead, prefetch_stats.demand_fills,
                     prefetch_stats.prefetch_fills,
                     http_stats.requests,
                     round(http_stats.virtual_ms)])
    table = format_table(
        ["lookahead", "demand fills (stalls)", "prefetch fills",
         "page requests", "virtual ms"], rows)
    write_result("E5_prefetch", table)

    assert stalls[2] < stalls[0]
    # Bounded lookahead keeps request inflation modest.
    assert requests[2] <= requests[0] + 4


def test_bench_buffer_over_liberal_server(benchmark):
    tree = Tree("r", [elem("x", str(i)) for i in range(40)])

    def run():
        buffer = BufferComponent(RandomizedLXPServer(tree, seed=5))
        return materialize(buffer)

    assert benchmark(run) == tree
