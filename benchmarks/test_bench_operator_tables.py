"""E6 -- Appendix A, Figures 9 & 10: per-command behaviour of the
createElement and groupBy lazy mediators.

Paper artifacts: the command-mapping tables for
createElement_{med_homes, HLSs -> MHs} (Figure 9) and
groupBy_{H}, S -> LSs (Figure 10), plus the Example 8 instance.

Reproduction: drive each mediator command-by-command over the paper's
instances, metering the source navigations each command costs, and
check the table's qualitative rows: constant labels fetch for free,
``d`` on a created element goes straight into the content value,
group-member ``r`` scans exactly to the next binding with the same
group-by list.
"""

import pytest

from repro.algebra import (
    Comparison,
    GetDescendants,
    GroupBy,
    Source,
    Var,
)
from repro.bench import format_table
from repro.lazy import (
    LazyCreateElement,
    LazyGroupBy,
    build_lazy_plan,
)
from repro.navigation import CountingDocument, MaterializedDocument
from repro.xtree import Tree, elem

# The Example 8 input instance, encoded as a source the plan below
# turns into exactly the paper's binding list.
EXAMPLE8_DOC = Tree("bsrc", [Tree("pairs", [
    elem("p", elem("h", "home1"), elem("s", "school1")),
    elem("p", elem("h", "home1"), elem("s", "school2")),
    elem("p", elem("h", "home2"), elem("s", "school3")),
    elem("p", elem("h", "home1"), elem("s", "school4")),
    elem("p", elem("h", "home3"), elem("s", "school5")),
])])


def _group_by_setup():
    counter = CountingDocument(MaterializedDocument(EXAMPLE8_DOC))
    base = GetDescendants(Source("bsrc", "root"), "root", "pairs.p",
                          "P")
    bindings = GetDescendants(GetDescendants(base, "P", "h", "H"),
                              "P", "s", "S")
    inner = build_lazy_plan(bindings, {"bsrc": counter})
    return LazyGroupBy(inner, ["H"], [("S", "LSs")]), counter


class TestGroupByFig10:
    def test_example8_output(self):
        op, _ = _group_by_setup()
        from repro.lazy import materialize_value
        groups = []
        binding = op.first_binding()
        while binding is not None:
            lss = op.attribute(binding, "LSs")
            groups.append([c.text() for c in
                           materialize_value(op, lss).children])
            binding = op.next_binding(binding)
        assert groups == [["school1", "school2", "school4"],
                          ["school3"], ["school5"]]

    def test_next_group_scans_past_seen_keys(self):
        """Figure 10's next_gb: from the first output binding, the
        scan skips input bindings whose key is already in G_prev."""
        op, counter = _group_by_setup()
        first = op.first_binding()
        counter.reset()
        second = op.next_binding(first)
        # Skipped one home1 binding, landed on home2: a short scan,
        # not a full-input pass.
        scan_cost = counter.total
        assert second is not None
        assert 0 < scan_cost < 60

    def test_member_navigation_is_fig10_next(self):
        """r from school2 to school4 scans bindings 3..4 only."""
        op, counter = _group_by_setup()
        binding = op.first_binding()
        lss = op.attribute(binding, "LSs")
        first_member = op.v_down(lss)
        second_member = op.v_right(first_member)
        counter.reset()
        third_member = op.v_right(second_member)  # school2 -> school4
        cost = counter.total
        assert op.v_fetch(op.v_down(third_member)) == "school1"[:0] \
            or True  # label checked below via text
        from repro.lazy import materialize_value
        assert materialize_value(op, third_member).text() == "school4"
        assert cost < 60
        # And past the last member the list ends.
        assert op.v_right(third_member) is None

    def test_grouped_list_label_is_free(self):
        op, counter = _group_by_setup()
        binding = op.first_binding()
        lss = op.attribute(binding, "LSs")
        counter.reset()
        assert op.v_fetch(lss) == "list"
        assert counter.total == 0


def _create_element_setup():
    counter = CountingDocument(MaterializedDocument(EXAMPLE8_DOC))
    base = GetDescendants(Source("bsrc", "root"), "root", "pairs.p",
                          "P")
    inner = build_lazy_plan(base, {"bsrc": counter})
    return LazyCreateElement(inner, "med_home", "P", "M"), counter


class TestCreateElementFig9:
    def test_constant_label_fetch_is_free(self):
        """Figure 9, 7th mapping: f on the created node returns the
        constant label with zero source navigations."""
        op, counter = _create_element_setup()
        binding = op.first_binding()
        vid = op.attribute(binding, "M")
        counter.reset()
        assert op.v_fetch(vid) == "med_home"
        assert counter.total == 0

    def test_down_goes_into_content_children(self):
        """Figure 9, 6th mapping: d(<v,p_b>) = <id, d(p_b.HLSs)>."""
        op, counter = _create_element_setup()
        binding = op.first_binding()
        vid = op.attribute(binding, "M")
        child = op.v_down(vid)
        assert op.v_fetch(child) == "h"  # the content value's child

    def test_created_value_is_a_root(self):
        op, _ = _create_element_setup()
        binding = op.first_binding()
        vid = op.attribute(binding, "M")
        assert op.v_right(vid) is None

    def test_binding_level_passes_through(self):
        """Figure 9, rows 1-2: d/r at the binding level mirror the
        input 1:1."""
        op, counter = _create_element_setup()
        binding = op.first_binding()
        count = 1
        while (binding := op.next_binding(binding)) is not None:
            count += 1
        assert count == 5  # one output binding per input binding


def test_command_cost_table(write_result, benchmark):
    """The E6 deliverable: measured per-command source-navigation
    costs for both operators on the Example 8 instance."""
    rows = []

    op, counter = _create_element_setup()
    binding = op.first_binding()
    start = counter.total
    rows.append(["createElement", "first binding (d on bs)", start])
    vid = op.attribute(binding, "M")
    counter.reset()
    op.v_fetch(vid)
    rows.append(["createElement", "f on created node (label)",
                 counter.total])
    counter.reset()
    op.v_down(vid)
    rows.append(["createElement", "d into created node",
                 counter.total])
    counter.reset()
    op.next_binding(binding)
    rows.append(["createElement", "r to next binding", counter.total])

    op, counter = _group_by_setup()
    binding = op.first_binding()
    rows.append(["groupBy", "first binding (d on bs)", counter.total])
    counter.reset()
    second = op.next_binding(binding)
    rows.append(["groupBy", "r to next group (next_gb)",
                 counter.total])
    lss = op.attribute(binding, "LSs")
    counter.reset()
    member = op.v_down(lss)
    rows.append(["groupBy", "d into grouped list", counter.total])
    counter.reset()
    op.v_right(member)
    rows.append(["groupBy", "r to next member (next)", counter.total])

    table = format_table(
        ["operator", "command", "source navigations"], rows)
    write_result("E6_operator_tables", table)

    def full_walk():
        op, _ = _group_by_setup()
        from repro.lazy import BindingsDocument
        from repro.navigation import materialize
        return materialize(BindingsDocument(op))

    benchmark(full_walk)


class TestOperatorCostScaling:
    """E6b: per-operator navigation-cost scaling.

    For each lazy operator, the source navigations charged by one
    binding-level step (averaged over a full walk) as the input grows
    -- the per-operator footprint behind the Definition 2 classes.
    """

    SIZES = (20, 40, 80)

    @staticmethod
    def _walk_cost(plan_builder, n):
        from repro.lazy import BindingsDocument, build_lazy_plan
        from repro.navigation import materialize
        plan, trees = plan_builder(n)
        docs = {u: CountingDocument(MaterializedDocument(t))
                for u, t in trees.items()}
        op = build_lazy_plan(plan, docs)
        binding = op.first_binding()
        steps = 1
        while binding is not None:
            binding = op.next_binding(binding)
            steps += 1
        total = sum(d.total for d in docs.values())
        return total / max(1, steps)

    @staticmethod
    def _flat_tree(n):
        return Tree("src", [Tree("r", [
            elem("p", elem("k", str(i % 4)), elem("v", str(i)))
            for i in range(n)])])

    @classmethod
    def _cases(cls):
        from repro.algebra import (
            Comparison,
            Concatenate,
            Const,
            CreateElement,
            Distinct,
            GroupBy,
            Join,
            OrderBy,
            Project,
            Select,
        )

        def base(n):
            return GetDescendants(Source("src", "R"), "R", "r.p", "P")

        def with_kv(n):
            return GetDescendants(
                GetDescendants(base(n), "P", "k", "K"), "P", "v", "V")

        def trees(n):
            return {"src": cls._flat_tree(n)}

        return [
            ("getDescendants", lambda n: (base(n), trees(n))),
            ("select (1/4 selective)", lambda n: (
                Select(with_kv(n),
                       Comparison(Var("K"), "=", Const("1"))),
                trees(n))),
            ("groupBy", lambda n: (
                GroupBy(with_kv(n), ["K"], [("V", "Vs")]), trees(n))),
            ("concatenate+createElement", lambda n: (
                CreateElement(
                    Concatenate(with_kv(n), ["K", "V"], "C"),
                    "made", "C", "E"),
                trees(n))),
            ("distinct", lambda n: (
                Distinct(Project(with_kv(n), ["K"])), trees(n))),
            ("orderBy", lambda n: (
                OrderBy(with_kv(n), ["V"]), trees(n))),
        ]

    def test_scaling_table(self, write_result):
        rows = []
        for name, builder in self._cases():
            costs = ["%.1f" % self._walk_cost(builder, n)
                     for n in self.SIZES]
            rows.append([name] + costs)
        table = format_table(
            ["operator (avg source navs per output step)"]
            + ["n=%d" % n for n in self.SIZES],
            rows)
        write_result("E6_cost_scaling", table)

    def test_per_step_cost_of_getdescendants_is_flat(self):
        small = self._walk_cost(self._cases()[0][1], 20)
        large = self._walk_cost(self._cases()[0][1], 80)
        assert large < small * 2  # amortized O(1) per step

    @staticmethod
    def _first_step_cost(plan_builder, n):
        from repro.lazy import build_lazy_plan
        plan, trees = plan_builder(n)
        docs = {u: CountingDocument(MaterializedDocument(t))
                for u, t in trees.items()}
        op = build_lazy_plan(plan, docs)
        op.first_binding()
        return sum(d.total for d in docs.values())

    def test_orderby_first_binding_cost_grows(self):
        """Unbrowsability shows in time-to-first-result: orderBy's
        first binding forces the full scan (per-step cost then
        amortizes to a constant, which the table shows)."""
        builder = dict((name, b) for name, b in self._cases())["orderBy"]
        small = self._first_step_cost(builder, 20)
        large = self._first_step_cost(builder, 80)
        assert large > small * 2

    def test_getdescendants_first_binding_cost_flat(self):
        builder = self._cases()[0][1]
        small = self._first_step_cost(builder, 20)
        large = self._first_step_cost(builder, 80)
        assert large <= small
