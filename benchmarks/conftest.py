"""Shared infrastructure for the experiment harness.

Every experiment writes its result table to ``benchmarks/results/``
(so EXPERIMENTS.md can quote measured numbers), plus a machine-readable
``BENCH_<name>.json`` twin of the same data, and benchmarks a
representative operation through pytest-benchmark.
"""

import json
import os

import pytest

from repro.bench import bench_record

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def write_result(results_dir):
    """write_result(name, text, extra=None): persist an experiment
    table as ``<name>.txt`` plus a ``BENCH_<name>.json`` record of the
    parsed table and any ``extra`` measurements (timings, cache
    counters)."""

    def writer(name: str, text: str, extra: dict = None) -> None:
        path = os.path.join(results_dir, name + ".txt")
        with open(path, "w") as handle:
            handle.write(text.rstrip() + "\n")
        json_path = os.path.join(results_dir, "BENCH_%s.json" % name)
        with open(json_path, "w") as handle:
            json.dump(bench_record(name, text, extra), handle,
                      indent=2, sort_keys=True)
            handle.write("\n")

    return writer


@pytest.fixture(autouse=True)
def _run_experiments_under_benchmark_only(request, benchmark):
    """Experiment tests that only produce tables/assertions (no timing
    loop) must still run under ``--benchmark-only``: the harness's
    contract is that that command regenerates every result table.
    pytest-benchmark skips tests whose fixture closure lacks its
    fixture, so this autouse fixture pulls it in for every experiment
    test and, for those that never call it themselves, records a
    single no-op round to keep the plugin satisfied."""
    yield
    if request.config.getoption("--benchmark-only", default=False)             and not benchmark.stats:
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
