"""E9 -- Section 5: the thin client library's transparency and cost.

Paper artifact: "A thin client library ... makes the virtual document
exported by the mediator indistinguishable from a main memory resident
document accessed via DOM."

Reproduction: run identical client code over (a) the virtual answer
and (b) a materialized in-memory copy; check the outputs coincide and
benchmark both traversals to quantify the virtuality overhead.  Also
check the memoization contract: re-traversal of an already-explored
virtual document costs no further source navigations.
"""

import pytest

from repro.bench import format_table, homes_and_schools
from repro.client import open_virtual_document
from repro.mediator import MIXMediator
from repro.navigation import MaterializedDocument
from repro.bench import HOMES_SCHOOLS_QUERY

N_HOMES = 15


def _mediator():
    med = MIXMediator()
    for url, tree in homes_and_schools(N_HOMES).items():
        med.register_source(url, MaterializedDocument(tree))
    return med


def _render(element):
    """Generic client code: works on any XMLElement."""
    if element.is_leaf:
        return element.tag
    return "%s(%s)" % (element.tag,
                       ",".join(_render(c) for c in element.children()))


def test_transparency():
    med = _mediator()
    result = med.prepare(HOMES_SCHOOLS_QUERY)
    virtual_rendering = _render(result.root)

    materialized = open_virtual_document(
        MaterializedDocument(result.materialize()))
    assert _render(materialized) == virtual_rendering


def test_retraversal_costs_no_source_navigations():
    med = _mediator()
    result = med.prepare(HOMES_SCHOOLS_QUERY)
    root = result.root
    _render(root)
    navs = med.total_source_navigations()
    _render(root)  # memoized XMLElements: no new navigation
    assert med.total_source_navigations() == navs


def test_overhead_table(write_result):
    import time
    med = _mediator()
    result = med.prepare(HOMES_SCHOOLS_QUERY)

    start = time.perf_counter()
    _render(result.root)
    virtual_first_ms = (time.perf_counter() - start) * 1000

    start = time.perf_counter()
    _render(result.root)
    virtual_again_ms = (time.perf_counter() - start) * 1000

    materialized = open_virtual_document(
        MaterializedDocument(result.materialize()))
    start = time.perf_counter()
    _render(materialized)
    materialized_ms = (time.perf_counter() - start) * 1000

    table = format_table(
        ["traversal", "ms"],
        [["virtual, first pass (evaluates the query)",
          virtual_first_ms],
         ["virtual, second pass (memoized)", virtual_again_ms],
         ["materialized in-memory copy", materialized_ms]])
    write_result("E9_client_overhead", table)
    # Memoization makes re-traversal comparable to in-memory DOM.
    assert virtual_again_ms < virtual_first_ms


def test_bench_virtual_traversal(benchmark):
    def run():
        med = _mediator()
        return _render(med.prepare(HOMES_SCHOOLS_QUERY).root)

    benchmark(run)


def test_bench_materialized_traversal(benchmark):
    med = _mediator()
    answer = med.prepare(HOMES_SCHOOLS_QUERY).materialize()

    def run():
        return _render(open_virtual_document(
            MaterializedDocument(answer)))

    benchmark(run)
