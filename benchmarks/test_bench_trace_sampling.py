"""E18 -- deterministic trace sampling: off vs sampled vs full record.

PR 9 adds head-based sampling: ``trace_sample_rate`` hashes the trace
id (CRC-32 into 10k buckets) once, before any span is minted, and a
sampled-out tracer goes quiet for the whole trace.  The pitch is that
a production daemon can run with tracing *armed* at a 1% rate and pay
almost nothing: the sampled-out path costs one hash up front plus the
same one-attribute check per hook as the off path.

E18 measures the E13 remote forward-scan workload in three modes:

* **off** -- defaults: idle tracer, no trace id, metrics disabled.
* **sampled** -- a recording tracer armed with a fresh trace id per
  scan and ``trace_sample_rate=0.01``: the honest hash verdict
  decides per scan whether anything records (at 1% nearly all scans
  go quiet).
* **record** -- a recording tracer at the default rate 1.0: every
  span and event is built and kept (the E14 "record" mode).

Asserted: the navigation fingerprint (channel commands, round trips,
bytes, per-source counts, answer) is identical in every mode --
sampling must never change what it observes -- and the sampled mode
runs within 3x of off (the ISSUE acceptance bound; in practice it
sits near 1x).
"""

import itertools
import time

from repro.bench import HOMES_SCHOOLS_QUERY, format_table, \
    homes_and_schools
from repro.mediator import MIXMediator
from repro.navigation import MaterializedDocument
from repro.runtime import EngineConfig, Tracer, sample_trace
from repro.testing import FakeClock

N_HOMES = 30
CHUNK, DEPTH = 2, 2
ROUNDS = 5
SAMPLE_RATE = 0.01

_trace_serial = itertools.count(1)


def _scan(config, tracer=None):
    """The E13 workload: a full remote forward scan of the
    homes/schools join view."""
    med = MIXMediator(config, tracer=tracer)
    for url, tree in homes_and_schools(N_HOMES).items():
        med.register_source(url, MaterializedDocument(tree))
    result = med.prepare(HOMES_SCHOOLS_QUERY)
    root, stats = result.connect_remote(chunk_size=CHUNK, depth=DEPTH)
    answer = root.to_tree()
    return med, answer, stats


def _timed(fn):
    """Median wall-clock of ROUNDS runs (median, not min: the
    comparison is mode-to-mode on the same machine)."""
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def _fingerprint(med, answer, stats):
    return {
        "commands": stats.commands,
        "round_trips": stats.messages,
        "bytes": stats.bytes_transferred,
        "source_navigations": {
            name: meter.total for name, meter in med.meters.items()},
        "answer": repr(answer),
    }


def test_trace_sampling_overhead(write_result):
    modes = {}
    fingerprints = {}
    sampled_outcomes = {"kept": 0, "dropped": 0, "events": 0}

    def run_off():
        med, answer, stats = _scan(EngineConfig())
        fingerprints["off"] = _fingerprint(med, answer, stats)

    def run_sampled():
        # A fresh trace id per scan keeps the hash verdicts honest:
        # this is the production shape (one trace per request), not
        # a single lucky/unlucky id timed five times.
        trace_id = "e18-%d" % next(_trace_serial)
        tracer = Tracer(record=True, clock=FakeClock(),
                        trace_id=trace_id)
        med, answer, stats = _scan(
            EngineConfig(trace_sample_rate=SAMPLE_RATE),
            tracer=tracer)
        if sample_trace(trace_id, SAMPLE_RATE):
            sampled_outcomes["kept"] += 1
        else:
            sampled_outcomes["dropped"] += 1
        sampled_outcomes["events"] += len(tracer.events)
        fingerprints["sampled"] = _fingerprint(med, answer, stats)

    def run_record():
        tracer = Tracer(record=True, clock=FakeClock())
        med, answer, stats = _scan(EngineConfig(), tracer=tracer)
        fingerprints["record"] = _fingerprint(med, answer, stats)
        fingerprints["record"]["events"] = len(tracer.events)

    # Warm everything once, then time each mode.
    run_off(), run_sampled(), run_record()
    modes["off"] = _timed(run_off)
    modes["off_again"] = _timed(run_off)
    modes["sampled"] = _timed(run_sampled)
    modes["record"] = _timed(run_record)

    base = modes["off"]
    rows = [[name, "%.4f" % seconds, "%.2fx" % (seconds / base)]
            for name, seconds in modes.items()]
    table = format_table(
        ["mode (E13 remote scan, %d homes, rate %.2f)"
         % (N_HOMES, SAMPLE_RATE), "median s", "vs off"], rows)
    record = {name: {"seconds": round(seconds, 6),
                     "ratio_vs_off": round(seconds / base, 4)}
              for name, seconds in modes.items()}
    record["sample_rate"] = SAMPLE_RATE
    record["sampled_scans_kept"] = sampled_outcomes["kept"]
    record["sampled_scans_dropped"] = sampled_outcomes["dropped"]
    record["sampled_events_recorded"] = sampled_outcomes["events"]
    record["record_events"] = fingerprints["record"].pop("events")
    write_result("E18_trace_sampling", table, record)

    # Sampling never changes what it observes: identical channel
    # commands, round trips, bytes, per-source counts, and answer.
    assert fingerprints["off"] == fingerprints["sampled"] \
        == fingerprints["record"]

    # Noise floor: the off path against its own re-run.
    off_ratio = modes["off_again"] / modes["off"]
    assert 0.4 <= off_ratio <= 2.5, (
        "off-path re-run ratio %.2f outside noise band" % off_ratio)

    # The acceptance bound: an armed 1% tracer within 3x of off.
    sampled_ratio = modes["sampled"] / base
    assert sampled_ratio <= 3.0, (
        "sampled mode %.2fx vs off exceeds the 3x bound"
        % sampled_ratio)

    # The verdicts really are hash-driven: a dropped scan must
    # record nothing (kept scans may or may not occur at 1% over a
    # handful of ids -- that split is reported, not asserted).
    if sampled_outcomes["kept"] == 0:
        assert sampled_outcomes["events"] == 0
