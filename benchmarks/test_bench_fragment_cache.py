"""E17 -- cross-session fragment caching: warm sessions reuse
materialized fragments instead of re-navigating the sources.

Paper artifact: Section 3's observation that the mediator "is not
completely stateless" -- PR 8 extends that intra-session reuse across
*sessions*: a process-wide ``FragmentStore`` keeps immutable
materialized subtrees tagged with source snapshot versions, so a
repeated or overlapping query served later grafts stored fragments
(or adopts a completed view whole) instead of re-issuing LXP fills.

Reproduction: two workloads over the homes sources, measured at the
raw wrapper seam (``LXPStats.fills`` -- the buffer meters above the
cache cannot see the saving):

* *repeated query*: K sessions run the identical query; the first is
  cold, the rest must collapse to (near) zero source fills.  The
  acceptance bar is a >= 5x reduction of warm-session source fills
  vs the cache-off run of the same session sequence.
* *overlapping queries*: sessions ask different questions over the
  same view; the shared prefix of their demand sets is paid once.
"""

from repro.bench import format_table
from repro.mediator import MIXMediator
from repro.runtime import EngineConfig
from repro.runtime.fragcache import reset_shared_store, shared_store
from repro.wrappers import XMLFileWrapper
from repro.xtree import to_xml

N_HOMES = 40
SESSIONS = 6

HOMES_XML = (
    "<homes>"
    + "".join("<home><addr>a%03d</addr><price>p%03d</price>"
              "<zip>z%02d</zip></home>" % (i, i, i % 7)
              for i in range(N_HOMES))
    + "</homes>")

REPEATED_QUERY = ("CONSTRUCT <hits> $A {$A} </hits> {} "
                  "WHERE homesSrc homes.home.addr._ $A")

OVERLAPPING_QUERIES = [
    ("CONSTRUCT <hits> $A {$A} </hits> {} "
     "WHERE homesSrc homes.home.addr._ $A"),
    ("CONSTRUCT <prices> $P {$P} </prices> {} "
     "WHERE homesSrc homes.home.price._ $P"),
    ("CONSTRUCT <pairs> <pair> $A $P </pair> {$A, $P} </pairs> {} "
     "WHERE homesSrc homes.home $H AND $H addr._ $A "
     "AND $H price._ $P"),
]


def _session(query, fragment_cache):
    """One fresh mediator session; returns (answer, wrapper fills)."""
    wrapper = XMLFileWrapper("homesSrc", HOMES_XML, chunk_size=2)
    med = MIXMediator(EngineConfig(fragment_cache=fragment_cache))
    med.register_wrapper("homesSrc", wrapper)
    answer = to_xml(med.prepare(query).materialize())
    return answer, wrapper.stats.fills


def _partial_session(fragment_cache):
    """One session that only inspects the answer's first element --
    the lazy-prefix walk of Fig. 9.  The view is never drained, so no
    whole view is harvested: warm savings here come from
    exact-subtree grafting, and the store counts real hits."""
    wrapper = XMLFileWrapper("homesSrc", HOMES_XML, chunk_size=2)
    med = MIXMediator(EngineConfig(fragment_cache=fragment_cache))
    med.register_wrapper("homesSrc", wrapper)
    result = med.prepare(REPEATED_QUERY)
    first = result.root.first_child()
    return first.tag, wrapper.stats.fills


def _run_sequence(queries, fragment_cache):
    """Run the session sequence; returns answers, cold fills, and the
    total fills of every session after the first."""
    if fragment_cache:
        reset_shared_store()
    answers, fills = [], []
    for query in queries:
        answer, session_fills = _session(query, fragment_cache)
        answers.append(answer)
        fills.append(session_fills)
    return answers, fills[0], sum(fills[1:])


def test_fragment_cache_collapses_warm_session_traffic(write_result):
    rows = []
    extra = {}

    # -- repeated-query workload ------------------------------------
    repeated = [REPEATED_QUERY] * SESSIONS
    answers_off, cold_off, warm_off = _run_sequence(repeated, False)
    answers_on, cold_on, warm_on = _run_sequence(repeated, True)
    assert answers_on == answers_off  # byte-identical answers
    # cache off: every warm session pays the cold cost again
    assert warm_off == cold_off * (SESSIONS - 1)
    # the acceptance bar: >= 5x fewer warm-session source fills
    assert warm_off >= 5 * max(warm_on, 1)
    factor_rep = warm_off / max(warm_on, 1)
    rows.append(["repeated query", cold_off, warm_off, warm_on,
                 "%.0fx" % factor_rep])
    extra["repeated_warm_fills_off"] = warm_off
    extra["repeated_warm_fills_on"] = warm_on
    extra["repeated_reduction"] = factor_rep

    # -- overlapping-query workload ---------------------------------
    answers_off, cold_off, warm_off = _run_sequence(
        OVERLAPPING_QUERIES, False)
    answers_on, cold_on, warm_on = _run_sequence(
        OVERLAPPING_QUERIES, True)
    assert answers_on == answers_off
    assert warm_off > warm_on  # the shared demand prefix is paid once
    factor_ovl = warm_off / max(warm_on, 1)
    rows.append(["overlapping queries", cold_off, warm_off, warm_on,
                 "%.1fx" % factor_ovl])
    extra["overlapping_warm_fills_off"] = warm_off
    extra["overlapping_warm_fills_on"] = warm_on
    extra["overlapping_reduction"] = factor_ovl

    # -- partial-exploration workload (subtree grafting) ------------
    fills_off = []
    for _ in range(SESSIONS):
        tag_off, fills = _partial_session(False)
        fills_off.append(fills)
    reset_shared_store()
    fills_on = []
    for _ in range(SESSIONS):
        tag_on, fills = _partial_session(True)
        fills_on.append(fills)
        assert tag_on == tag_off
    cold_off, warm_off = fills_off[0], sum(fills_off[1:])
    warm_on = sum(fills_on[1:])
    assert warm_off >= 5 * max(warm_on, 1)
    factor_part = warm_off / max(warm_on, 1)
    rows.append(["partial prefix walk", cold_off, warm_off, warm_on,
                 "%.0fx" % factor_part])
    extra["partial_warm_fills_off"] = warm_off
    extra["partial_warm_fills_on"] = warm_on
    extra["partial_reduction"] = factor_part

    counters = shared_store().stats.snapshot()
    demands = counters["hits"] + counters["misses"]
    assert demands > 0
    assert counters["hits"] > 0  # real subtree grafts, not adoption
    assert counters["view_adoptions"] == 0
    hit_ratio = counters["hits"] / demands
    extra["hit_ratio"] = hit_ratio
    extra["view_adoptions"] = counters["view_adoptions"]
    reset_shared_store()

    table = format_table(
        ["workload", "cold fills", "warm fills (off)",
         "warm fills (on)", "reduction"], rows)
    table += "\npartial-walk store hit ratio: %.2f " \
             "(%d hits / %d demands, no whole-view adoption)\n" \
             % (hit_ratio, counters["hits"], demands)
    write_result("E17_fragment_cache", table, extra)


def test_fragment_cache_decision_is_explained():
    reset_shared_store()
    try:
        wrapper = XMLFileWrapper("homesSrc", HOMES_XML, chunk_size=2)
        med = MIXMediator(EngineConfig(fragment_cache=True))
        med.register_wrapper("homesSrc", wrapper)
        result = med.prepare(REPEATED_QUERY)
        result.materialize()
        assert "cached homesSrc" in result.explain()
        report = result.stats()
        assert report["fragcache"]["cached_sources"] == 1
        assert report["fragcache"]["hits"] \
            + report["fragcache"]["misses"] > 0
    finally:
        reset_shared_store()
