"""E15 -- the hardened session server under concurrent load.

The in-process experiments measure navigation work; this one measures
the *service*: a real :class:`~repro.server.daemon.MediatorServer` on
a loopback socket, driven by the load generator with hundreds of
concurrent mixed-pattern sessions.

Three tables:

* **Table 1 (load)**: sessions/sec and navigation round-trip latency
  (p50/p95/p99) across fleet sizes, up to 100+ concurrent sessions
  sustained against one daemon.
* **Table 2 (fairness)**: what one saturating (``greedy``) client
  does to everyone else's tail -- polite-session p99 with and without
  the aggressor, and the ratio (admission control + per-connection
  handlers keep it bounded).
* **Table 3 (recovery)**: throughput and tail latency immediately
  after a burst of transport faults (garbage frames, truncated
  frames, slow-loris probes) -- the fault burst must kill only its
  own sessions and leave the next fleet's numbers intact.
"""

import threading

from repro.bench import format_table, homes_and_schools
from repro.bench.loadgen import percentile, run_load
from repro.mediator import MIXMediator
from repro.navigation import MaterializedDocument
from repro.runtime import EngineConfig
from repro.server import MediatorServer

N_HOMES = 40

QUERY = """
CONSTRUCT <result> <home> $A {$A} </home> {$H} </result> {}
WHERE homesSrc homes.home $H AND $H addr._ $A
"""


def _server(max_sessions=256, **overrides):
    overrides.setdefault("serve_idle_timeout_ms", 10000.0)
    config = EngineConfig(serve_port=0,
                          serve_max_sessions=max_sessions,
                          chunk_size=4, **overrides)
    mediator = MIXMediator(config)
    tree = homes_and_schools(N_HOMES)["homesSrc"]
    mediator.register_source("homesSrc", MaterializedDocument(tree))
    server = MediatorServer(mediator)
    host, port = server.start()
    return server, host, port


def _polite_latencies(report):
    return [latency for outcome in report.outcomes
            if outcome.pattern != "greedy"
            for latency in outcome.latencies_ms]


def test_concurrent_session_load(write_result):
    """Table 1: the daemon sustains 100+ concurrent sessions."""
    server, host, port = _server()
    rows = []
    try:
        for sessions, concurrency in ((24, 8), (60, 20), (120, 40)):
            report = run_load(host, port, QUERY, sessions=sessions,
                              concurrency=concurrency, rounds=3)
            assert report.completed == sessions
            assert report.failed == 0
            rows.append([sessions, concurrency, report.completed,
                         round(report.sessions_per_sec, 1),
                         round(report.latency_ms(0.50), 2),
                         round(report.latency_ms(0.95), 2),
                         round(report.latency_ms(0.99), 2)])
    finally:
        assert server.drain()
    snapshot = server.stats.snapshot()
    assert snapshot["sessions_opened"] == 24 + 60 + 120
    assert snapshot["sessions_closed"] == snapshot["accepted"]
    text = format_table(
        ["sessions", "concurrency", "completed", "sessions_per_s",
         "nav_p50_ms", "nav_p95_ms", "nav_p99_ms"], rows)
    write_result("E15_server", text,
                 extra={"server_stats": snapshot,
                        "n_homes": N_HOMES})


def test_fairness_under_saturating_client(write_result):
    """Table 2: a greedy client must not starve the polite fleet."""
    server, host, port = _server()
    try:
        polite = ("drill", "scan", "burst")
        uncontended = run_load(host, port, QUERY, sessions=48,
                               concurrency=16, rounds=3,
                               patterns=polite)
        # One greedy pattern slot in four: a quarter of the fleet
        # turns saturating (8x the navigation rounds each).
        contended = run_load(host, port, QUERY, sessions=48,
                             concurrency=16, rounds=3,
                             patterns=polite + ("greedy",))
        assert uncontended.failed == 0 and contended.failed == 0
    finally:
        assert server.drain()
    base = percentile(_polite_latencies(uncontended), 0.99)
    under = percentile(_polite_latencies(contended), 0.99)
    ratio = under / base if base > 0 else 0.0
    rows = [
        ["uncontended", 48, round(base, 2), 1.0],
        ["with_greedy", 48, round(under, 2), round(ratio, 2)],
    ]
    # Thread-per-connection isolation keeps the polite tail bounded;
    # the acceptance window (2x) is asserted loosely here (CI noise)
    # and recorded exactly in the JSON.
    assert ratio < 5.0, "greedy client starved the polite fleet"
    text = format_table(
        ["scenario", "polite_sessions", "polite_p99_ms",
         "p99_ratio"], rows)
    write_result("E15_server_fairness", text,
                 extra={"p99_ratio": round(ratio, 3),
                        "acceptance_window": 2.0})


def test_recovery_after_fault_burst(write_result):
    """Table 3: a transport-fault burst leaves the next fleet's
    throughput and tail intact."""
    from repro.testing.transport import (
        send_garbage, send_truncated_frame, slow_loris)

    server, host, port = _server(serve_idle_timeout_ms=300.0)
    rows = []
    try:
        before = run_load(host, port, QUERY, sessions=36,
                          concurrency=12, rounds=3)
        assert before.failed == 0

        attacks = []
        for index in range(12):
            attack = (send_garbage if index % 3 == 0 else
                      send_truncated_frame if index % 3 == 1 else
                      slow_loris)
            thread = threading.Thread(
                target=attack, args=(host, port), daemon=True)
            attacks.append(thread)
            thread.start()
        for thread in attacks:
            thread.join(15.0)
            assert not thread.is_alive()

        after = run_load(host, port, QUERY, sessions=36,
                         concurrency=12, rounds=3)
        assert after.failed == 0
        assert after.completed == 36

        for phase, report in (("before_burst", before),
                              ("after_burst", after)):
            rows.append([phase, report.completed,
                         round(report.sessions_per_sec, 1),
                         round(report.latency_ms(0.50), 2),
                         round(report.latency_ms(0.99), 2)])
    finally:
        assert server.drain()
    snapshot = server.stats.snapshot()
    assert snapshot["protocol_kills"] >= 4
    assert snapshot["idle_kills"] >= 1
    text = format_table(
        ["phase", "completed", "sessions_per_s", "nav_p50_ms",
         "nav_p99_ms"], rows)
    write_result("E15_server_recovery", text,
                 extra={"fault_burst": 12,
                        "server_stats": snapshot})
