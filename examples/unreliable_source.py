#!/usr/bin/env python3
"""Querying an unreliable source: retries, breakers, degradation.

The paper's mediator navigates live, autonomous sources -- which may
drop a ``fill`` at any time.  This example runs the same bookstore
query three times against a scripted flaky wrapper:

1. **fail fast** (the default): the first dropped fill aborts the
   query with a ``TransientSourceError``;
2. **retries heal**: with ``retry_max_attempts=3`` the transient
   faults are retried (deterministic backoff on a fake clock -- the
   script never sleeps for real) and the answer is byte-identical to
   the healthy run;
3. **degrade to a partial answer**: against a permanently dead stretch
   of the source, ``on_source_failure="degrade"`` splices a marked
   ``<mix:error source=...>`` placeholder into the virtual answer
   instead of aborting, and the client spots it via ``find_errors()``.

Run:  python examples/unreliable_source.py
"""

from repro import (
    EngineConfig,
    MIXMediator,
    TransientSourceError,
    XMLFileWrapper,
)
from repro.testing import FailureSchedule, FakeClock, FlakyLXPServer
from repro.xtree import to_xml

BOOKS_XML = """
<catalog>
  <book><title>The Art of Navigation</title><price>30</price></book>
  <book><title>Lazy Mediators</title><price>25</price></book>
  <book><title>Virtual Views</title><price>40</price></book>
</catalog>
"""

QUERY = ("CONSTRUCT <shelf> $B {$B} </shelf> {} "
         "WHERE store catalog._ $B")


def flaky_mediator(schedule, config=None):
    """A mediator whose single source drops fills per ``schedule``.

    ``chunk_size=1`` keeps the fragment traffic fine-grained so the
    scripted schedule lines up with individual elements.
    """
    mediator = MIXMediator(config or EngineConfig(chunk_size=1),
                           clock=FakeClock())
    mediator.register_wrapper(
        "store",
        FlakyLXPServer(
            XMLFileWrapper("store", BOOKS_XML, chunk_size=1),
            schedule))
    return mediator


def main():
    healthy = MIXMediator()
    healthy.register_wrapper("store",
                             XMLFileWrapper("store", BOOKS_XML))
    reference = to_xml(healthy.prepare(QUERY).materialize())
    print("healthy answer:")
    print("  " + reference)

    # -- act 1: the default config fails fast ------------------------
    print("\n[1] default config, flaky source -> fail fast")
    mediator = flaky_mediator(FailureSchedule.first(1))
    try:
        mediator.prepare(QUERY).materialize()
    except TransientSourceError as err:
        print("  query aborted: %s" % err)

    # -- act 2: retries heal the transient faults --------------------
    print("\n[2] retry_max_attempts=3 -> retries heal")
    mediator = flaky_mediator(
        FailureSchedule.first(2),
        EngineConfig(chunk_size=1, retry_max_attempts=3))
    result = mediator.prepare(QUERY)
    answer = to_xml(result.materialize())
    print("  answer identical to healthy run: %s"
          % (answer == reference))
    resilience = result.stats()["resilience"]
    print("  retries=%d giveups=%d (waited %.1f fake ms)"
          % (resilience["retries"], resilience["giveups"],
             resilience["per_source"]["store"]["retry_wait_ms"]))

    # -- act 3: a dead stretch degrades to a partial answer ----------
    print("\n[3] on_source_failure='degrade' -> marked partial answer")
    mediator = flaky_mediator(
        FailureSchedule([False, False, False, False],
                        exhausted="fail"),
        EngineConfig(chunk_size=1, retry_max_attempts=2,
                     on_source_failure="degrade"))
    result = mediator.prepare(QUERY)
    root = result.root
    print("  " + to_xml(root.to_tree()))
    for error in root.find_errors():
        info = error.error_info()
        print("  degraded: source=%r reason=%r"
              % (info["source"], info["reason"]))
    resilience = result.stats()["resilience"]
    print("  degraded fills: %d" % resilience["degraded"])


if __name__ == "__main__":
    main()
