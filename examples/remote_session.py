#!/usr/bin/env python3
"""A remote client session: mediator and client in separate "address
spaces" (the Section 5 outlook, implemented).

The virtual answer document is exported over LXP and reassembled by a
client-side buffer; the client code is the same XMLElement API as
everywhere else.  The demo compares the fragment channel against the
naive design where every DOM command is its own round trip.

Run:  python examples/remote_session.py
"""

from repro import MIXMediator
from repro.bench import format_table, homes_and_schools, \
    HOMES_SCHOOLS_QUERY
from repro.client import RPCDocument, connect_remote, \
    open_virtual_document
from repro.navigation import MaterializedDocument

N_HOMES = 25


def build_mediator() -> MIXMediator:
    mediator = MIXMediator()
    for url, tree in homes_and_schools(N_HOMES).items():
        mediator.register_source(url, MaterializedDocument(tree))
    return mediator


def main() -> None:
    # --- the naive remote design: one message per DOM command -------
    mediator = build_mediator()
    rpc = RPCDocument(mediator.prepare(HOMES_SCHOOLS_QUERY).document,
                      latency_ms=20.0)
    rpc_root = open_virtual_document(rpc)
    rpc_answer = rpc_root.to_tree()
    rpc_stats = rpc.stats

    # --- the paper's plan: ship XML fragments --------------------------
    rows = [["RPC (1 cmd = 1 msg)", rpc_stats.messages,
             rpc_stats.bytes_transferred, round(rpc_stats.virtual_ms)]]
    for chunk, depth in [(1, 1), (5, 3), (20, 6)]:
        mediator = build_mediator()
        root, stats = connect_remote(
            mediator.prepare(HOMES_SCHOOLS_QUERY).document,
            chunk_size=chunk, depth=depth, latency_ms=20.0)
        answer = root.to_tree()
        assert answer == rpc_answer  # transparent, whatever the channel
        rows.append(["fragments chunk=%d depth=%d" % (chunk, depth),
                     stats.messages, stats.bytes_transferred,
                     round(stats.virtual_ms)])

    print("Full browse of the virtual answer (%d med_homes), client "
          "and mediator separated by a 20ms link:" % len(rpc_answer))
    print()
    print(format_table(
        ["channel", "messages", "bytes", "virtual ms"], rows))
    print()
    print('"exchanging fragments of XML documents to avoid the '
          'communication overhead" -- paper, Section 5.')


if __name__ == "__main__":
    main()
