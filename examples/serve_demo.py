#!/usr/bin/env python3
"""The mediator as a network daemon, with a rude neighbour.

The heterogeneous three-way join of ``heterogeneous_join.py`` --
homes in XML, schools in a relational database, inspections in an
object database -- but served over a real TCP socket by the hardened
session server, and browsed by two very different clients:

* a **well-behaved** client that opens a session, navigates the
  virtual report exactly as the in-process demos do, and closes
  politely;
* a **misbehaving** client that connects and sends garbage where a
  frame should be — while the polite session is live — then another
  that dribbles half a frame and goes silent (a slow-loris).

The point of the demo is the containment: the rude clients' sessions
are killed with typed error replies (``mix:protocol``, ``mix:idle``),
while the polite session -- running at the same time -- never notices.
The daemon then drains gracefully and reports its counters.

Run:  python examples/serve_demo.py
"""

from repro import (
    MIXMediator,
    OODBLXPWrapper,
    RelationalLXPWrapper,
    XMLFileWrapper,
)
from repro.oodb import ObjectStore
from repro.relational import Connection, Database
from repro.runtime import EngineConfig
from repro.server import MediatorServer, connect
from repro.testing.transport import send_garbage, slow_loris

HOMES_XML = """
<homes>
  <home><addr>12 Shore Dr</addr><zip>91220</zip></home>
  <home><addr>3 Hill Rd</addr><zip>91223</zip></home>
  <home><addr>9 Bay Ct</addr><zip>91224</zip></home>
</homes>
"""

QUERY = """
CONSTRUCT <report>
            <entry> $H $D $G {$G} </entry> {$H, $D}
          </report> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schooldb schools._ $S AND $S zip._ $V2
  AND $S dir._ $D
  AND inspections Inspection.object $I AND $I director._ $D2
  AND $I grade $G
  AND $V1 = $V2 AND $D = $D2
"""


def build_school_db() -> Database:
    db = Database("schooldb")
    table = db.create_table("schools", [("dir", "str"), ("zip", "str")])
    table.insert_many([
        ("Smith", "91220"),
        ("Bar", "91220"),
        ("Hart", "91223"),
    ])
    return db


def build_inspections() -> ObjectStore:
    store = ObjectStore("inspections")
    store.define_class("Inspection", ["director", "grade", "year"])
    store.create("Inspection", director="Smith", grade="A", year="1999")
    store.create("Inspection", director="Smith", grade="B", year="2000")
    store.create("Inspection", director="Hart", grade="A", year="2000")
    store.create("Inspection", director="Bar", grade="C", year="1998")
    return store


def build_mediator() -> MIXMediator:
    config = EngineConfig(
        serve_port=0,              # ephemeral loopback port
        serve_max_sessions=8,
        serve_idle_timeout_ms=400.0,   # snappy, for the slow-loris
        serve_session_max_fills=200,
    )
    mediator = MIXMediator(config)
    mediator.register_wrapper(
        "homesSrc", XMLFileWrapper("homesSrc", HOMES_XML))
    mediator.register_wrapper(
        "schooldb",
        RelationalLXPWrapper(Connection(build_school_db()),
                             chunk_size=2))
    mediator.register_wrapper(
        "inspections", OODBLXPWrapper(build_inspections()))
    return mediator


def main() -> None:
    server = MediatorServer(build_mediator())
    host, port = server.start()
    print("daemon listening on %s:%d" % (host, port))

    print("\n-- the well-behaved client --")
    with connect(host, port, QUERY) as session:
        for entry in session.root.children():
            cells = [child.text() for child in entry.children()]
            print("  entry:", " | ".join(cells))

        print("\n-- a misbehaving client (same daemon) --")
        garbage_reply = send_garbage(host, port)
        print("  garbage frame ->", garbage_reply["error"])

        # The polite session is entirely unharmed by its neighbour.
        assert session.ping()
        report = session.server_stats()
        print("\n-- the polite session, after the attack --")
        print("  still alive: ping ok, %d fills, %d bytes shipped"
              % (report["session"]["fills"],
                 report["session"]["bytes_shipped"]))

    # A slow-loris (dribbles two bytes, then goes silent) is bounded
    # by the idle timeout rather than holding a handler forever.
    loris_reply = slow_loris(host, port)
    print("\n-- a slow-loris client --")
    print("  slow-loris ->", loris_reply["error"])

    clean = server.drain()
    snapshot = server.stats.snapshot()
    print("\n-- drain: clean=%s --" % clean)
    print("  sessions opened/closed: %d/%d"
          % (snapshot["sessions_opened"], snapshot["sessions_closed"]))
    print("  kills: protocol=%d idle=%d"
          % (snapshot["protocol_kills"], snapshot["idle_kills"]))


if __name__ == "__main__":
    main()
