#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Integrates two XML sources (homes and schools) through the MIX
mediator, runs the Figure 3 XMAS query, and navigates the *virtual*
answer with the DOM-like client API -- watching how many source
navigations each step actually costs.

Run:  python examples/quickstart.py
"""

from repro import MIXMediator, XMLFileWrapper

HOMES_XML = """
<homes>
  <home><addr>La Jolla</addr><zip>91220</zip></home>
  <home><addr>El Cajon</addr><zip>91223</zip></home>
  <home><addr>Del Mar</addr><zip>91225</zip></home>
</homes>
"""

SCHOOLS_XML = """
<schools>
  <school><dir>Smith</dir><zip>91220</zip></school>
  <school><dir>Bar</dir><zip>91220</zip></school>
  <school><dir>Hart</dir><zip>91223</zip></school>
  <school><dir>Lee</dir><zip>91224</zip></school>
</schools>
"""

# The XMAS query of Figure 3: homes with the schools in their zip code.
QUERY = """
CONSTRUCT <answer>
            <med_home> $H $S {$S} </med_home> {$H}
          </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
"""


def main() -> None:
    # 1. Wire the mediator: each source behind an LXP wrapper and the
    #    generic buffer component.
    mediator = MIXMediator()
    mediator.register_wrapper(
        "homesSrc", XMLFileWrapper("homesSrc", HOMES_XML,
                                   chunk_size=2, depth=2))
    mediator.register_wrapper(
        "schoolsSrc", XMLFileWrapper("schoolsSrc", SCHOOLS_XML,
                                     chunk_size=2, depth=2))

    # 2. Preprocessing + rewriting: parse, translate to the XMAS
    #    algebra, optimize.  No source has been touched yet.
    result = mediator.prepare(QUERY)
    print("The algebraic plan (compare with the paper's Figure 4):")
    print(result.plan.pretty())
    print()
    print("source navigations after planning: %d"
          % mediator.total_source_navigations())

    # 3. The client receives a handle to the *virtual* answer document.
    root = result.root
    print("answer root tag: %r  (still %d source navigations)"
          % (root.tag, mediator.total_source_navigations()))
    print()

    # 4. Navigation drives evaluation: each step pays only for what it
    #    reveals.
    print("Browsing the virtual answer:")
    for med_home in root.children():
        home = med_home.find("home")
        schools = med_home.find_all("school")
        print("  %-10s zip %s: %d school(s) [%s]  (navs so far: %d)"
              % (home.find("addr").text(),
                 home.find("zip").text(),
                 len(schools),
                 ", ".join(s.find("dir").text() for s in schools),
                 mediator.total_source_navigations()))

    print()
    print("total source navigations: %d"
          % mediator.total_source_navigations())
    for name, meter in mediator.meters.items():
        print("  %-12s %s" % (name, meter.counters))

    # 5. The same answer, computed eagerly (what pre-MIX mediators do).
    eager = mediator.query_eager(QUERY)
    assert eager == result.materialize()
    print()
    print("eager evaluation produces the identical document -- but "
          "only after reading everything up front.")


if __name__ == "__main__":
    main()
