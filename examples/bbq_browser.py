#!/usr/bin/env python3
"""BBQ-style browsing of a virtual mediated view.

A scripted session of the browse-and-query client (paper Section 6):
the user queries, lists, and walks into the virtual answer; the
``stats`` lines show that every step pays only for what it reveals.

Run:  python examples/bbq_browser.py            (scripted session)
      python examples/bbq_browser.py -i         (interactive shell)
"""

import sys

from repro import MIXMediator, XMLFileWrapper
from repro.client.bbq import BBQSession

HOMES_XML = """
<homes>
  <home><addr>La Jolla</addr><zip>91220</zip><price>725000</price></home>
  <home><addr>El Cajon</addr><zip>91223</zip><price>350000</price></home>
  <home><addr>Del Mar</addr><zip>91220</zip><price>990000</price></home>
</homes>
"""

SCHOOLS_XML = """
<schools>
  <school><dir>Smith</dir><zip>91220</zip></school>
  <school><dir>Bar</dir><zip>91220</zip></school>
  <school><dir>Hart</dir><zip>91223</zip></school>
</schools>
"""

# lint: allow=B001,B002,C001 -- the reorder demo is deliberately unbrowsable
QUERY = ("CONSTRUCT <answer><med_home> $H $S {$S} </med_home> {$H}"
         "</answer> {} "
         "WHERE homesSrc homes.home $H AND $H zip._ $V1 "
         "AND schoolsSrc schools.school $S AND $S zip._ $V2 "
         "AND $V1 = $V2 ORDER BY $V1")

SCRIPT = [
    "query " + QUERY,
    "stats",
    "ls",
    "stats",
    "cd 0",
    "ls",
    "cd home",
    "text",
    "up",
    "cd school",
    "tree",
    "pwd",
    "schema",
    "stats",
]


def build_session() -> BBQSession:
    mediator = MIXMediator()
    mediator.register_wrapper(
        "homesSrc", XMLFileWrapper("homesSrc", HOMES_XML))
    mediator.register_wrapper(
        "schoolsSrc", XMLFileWrapper("schoolsSrc", SCHOOLS_XML))
    return BBQSession(mediator)


def main() -> None:
    session = build_session()
    if "-i" in sys.argv[1:]:
        print("BBQ shell -- commands: query ls cd up pwd text tree "
              "stats; ctrl-d to exit")
        while True:
            try:
                line = input("bbq> ")
            except EOFError:
                print()
                return
            output = session.execute(line)
            if output:
                print(output)
    else:
        for line in SCRIPT:
            shown = line if len(line) < 70 else line[:67] + "..."
            print("bbq> %s" % shown)
            output = session.execute(line)
            if output:
                print(output)
            print()


if __name__ == "__main__":
    main()
