#!/usr/bin/env python3
"""Integrating all three source species of Figure 1 in one query.

Homes live in an XML file, schools in a relational database, and
school inspections in an object database.  One XMAS query joins all
three through the mediator; a second part of the demo sweeps the
relational wrapper's chunk size to show the granularity trade-off of
Section 4 (fill requests vs shipped-but-unused tuples).

Run:  python examples/heterogeneous_join.py
"""

from repro import (
    MIXMediator,
    OODBLXPWrapper,
    RelationalLXPWrapper,
    XMLFileWrapper,
)
from repro.bench import format_table
from repro.oodb import ObjectStore
from repro.relational import Connection, Database

HOMES_XML = """
<homes>
  <home><addr>12 Shore Dr</addr><zip>91220</zip></home>
  <home><addr>3 Hill Rd</addr><zip>91223</zip></home>
  <home><addr>9 Bay Ct</addr><zip>91224</zip></home>
</homes>
"""

QUERY = """
CONSTRUCT <report>
            <entry> $H $D $G {$G} </entry> {$H, $D}
          </report> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schooldb schools._ $S AND $S zip._ $V2
  AND $S dir._ $D
  AND inspections Inspection.object $I AND $I director._ $D2
  AND $I grade $G
  AND $V1 = $V2 AND $D = $D2
"""


def build_school_db(n_extra: int = 0) -> Database:
    db = Database("schooldb")
    table = db.create_table("schools", [("dir", "str"), ("zip", "str")])
    table.insert_many([
        ("Smith", "91220"),
        ("Bar", "91220"),
        ("Hart", "91223"),
    ])
    for i in range(n_extra):
        table.insert(("Extra%d" % i, "99%03d" % i))
    return db


def build_inspections() -> ObjectStore:
    store = ObjectStore("inspections")
    store.define_class("Inspection", ["director", "grade", "year"])
    store.create("Inspection", director="Smith", grade="A", year="1999")
    store.create("Inspection", director="Smith", grade="B", year="2000")
    store.create("Inspection", director="Hart", grade="A", year="2000")
    store.create("Inspection", director="Bar", grade="C", year="1998")
    return store


def main() -> None:
    mediator = MIXMediator()
    mediator.register_wrapper(
        "homesSrc", XMLFileWrapper("homesSrc", HOMES_XML))
    mediator.register_wrapper(
        "schooldb",
        RelationalLXPWrapper(Connection(build_school_db()),
                             chunk_size=2))
    mediator.register_wrapper(
        "inspections", OODBLXPWrapper(build_inspections()))

    print("One query over XML + relational + object database:")
    answer = mediator.prepare(QUERY).materialize()
    for entry in answer.children:
        home = entry.child(0)
        director = entry.child(1)
        grades = [g.text() for g in entry.children[2:]]
        print("  %-12s school dir %-6s inspection grades: %s"
              % (home.find_child("addr").text(),
                 director.text(), ", ".join(grades)))
    print()
    for name, meter in mediator.meters.items():
        print("  %-12s %s" % (name, meter.counters))
    print()

    # Granularity sweep (Section 4): the same partial browse against
    # the relational wrapper at different chunk sizes n.
    print("Relational wrapper granularity (browse first home's "
          "schools only), source has 3 + 200 rows:")
    rows = []
    for chunk in (1, 5, 20, 100):
        med = MIXMediator()
        med.register_wrapper(
            "homesSrc", XMLFileWrapper("homesSrc", HOMES_XML))
        wrapper = RelationalLXPWrapper(
            Connection(build_school_db(n_extra=200)), chunk_size=chunk)
        med.register_wrapper("schooldb", wrapper)
        root = med.query("""
            CONSTRUCT <out><e> $H $S {$S} </e> {$H}</out> {}
            WHERE homesSrc homes.home $H AND $H zip._ $V1
              AND schooldb schools._ $S AND $S zip._ $V2
              AND $V1 = $V2""")
        first = root.first_child()
        if first is not None:
            first.to_tree()
        rows.append([chunk, wrapper.stats.fills,
                     wrapper.stats.elements_shipped])
    print(format_table(
        ["chunk n", "fill requests", "elements shipped"], rows))
    print()
    print("small n: many round trips; large n: few round trips but "
          "more shipped data -- the paper's buffering trade-off.")


if __name__ == "__main__":
    main()
