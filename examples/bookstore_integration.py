#!/usr/bin/env python3
"""The introduction's motivating scenario: the ``allbooks`` view.

Two booksellers -- one exporting an XML catalog, one a relational
database -- are integrated into a virtual ``allbooks`` view.  A user
asks a broad query ("database books under $30"), looks at the first
few hits, and stops.  The demand-driven evaluation reads only a prefix
of both catalogs; the eager baseline reads everything.

Run:  python examples/bookstore_integration.py
"""

from repro import MIXMediator, RelationalLXPWrapper, XMLFileWrapper
from repro.bench import allbooks_plan, browse_first_k, two_bookstores
from repro.relational import Connection, Database
from repro.xtree import Tree

N_BOOKS = 400

CHEAP_BOOKS_QUERY = """
CONSTRUCT <hits> $B {$B} </hits> {}
WHERE allbooks book $B AND $B price._ $P AND $P < 30
"""


def build_relational_store(books) -> Database:
    """barnesandnoble keeps its catalog in a relational database."""
    db = Database("bndb")
    table = db.create_table(
        "books", [("title", "str"), ("author", "str"),
                  ("price", "int"), ("isbn", "str")])
    for book in books:
        table.insert((
            book.find_child("title").text(),
            book.find_child("author").text(),
            int(book.find_child("price").text()),
            book.find_child("isbn").text(),
        ))
    return db


def build_mediator():
    amazon_books, bn_books = two_bookstores(N_BOOKS, overlap=0.5)

    mediator = MIXMediator()
    # amazon: an XML catalog behind the XML-file wrapper.
    mediator.register_wrapper(
        "amazonSrc",
        XMLFileWrapper("amazonSrc", Tree("catalog", amazon_books),
                       chunk_size=20, depth=4))
    # barnesandnoble: a relational database behind the paper's
    # relational LXP wrapper (rows ship 20 tuples per fill).
    mediator.register_wrapper(
        "bnSrc",
        RelationalLXPWrapper(Connection(build_relational_store(bn_books)),
                             chunk_size=20))
    # The virtual integrated view.  The relational wrapper exports
    # book rows as  bndb[books[rowN[title, ...]]], the XML wrapper as
    # catalog/book elements; the view's path `_*.book | _*.row...`
    # would be clumsy, so allbooks_plan unions both shapes on `_*.book`
    # -- we rename the relational rows to `book` with a tiny adapter
    # view first.
    mediator.register_view(
        "bnbooks",
        "CONSTRUCT <shelf> <book> $T $A $P $I </book> {$T, $A, $P, $I} "
        "</shelf> {} "
        "WHERE bnSrc books._ $R AND $R title $T AND $R author $A "
        "AND $R price $P AND $R isbn $I")
    mediator.register_view(
        "allbooks", allbooks_plan("amazonSrc", "bnbooks"))
    return mediator


def main() -> None:
    mediator = build_mediator()
    result = mediator.prepare(CHEAP_BOOKS_QUERY)
    root = result.root

    print("Browsing cheap database books from the virtual allbooks "
          "view (2 x %d books):" % N_BOOKS)
    shown = [0]

    def render(book) -> None:
        title = book.find("title").text()
        price = book.find("price").text()
        shown[0] += 1
        print("  %2d. $%-3s %s" % (shown[0], price, title))

    browse_first_k(root, 5, per_result=render)
    lazy_navs = mediator.total_source_navigations()
    print("source navigations for the first 5 hits: %d" % lazy_navs)

    # The eager baseline: materialize the full answer first.
    mediator.reset_meters()
    eager_answer = mediator.query_eager(CHEAP_BOOKS_QUERY)
    eager_navs = mediator.total_source_navigations()
    print("total hits in the full answer: %d" % len(eager_answer.children))
    print("source navigations for eager evaluation: %d" % eager_navs)
    print("lazy/early-stop advantage: %.1fx fewer source navigations"
          % (eager_navs / max(1, lazy_navs)))


if __name__ == "__main__":
    main()
