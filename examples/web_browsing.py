#!/usr/bin/env python3
"""Browsing a huge paginated Web source through the VXD stack.

A synthetic bookseller site with thousands of result pages is wrapped
by the Web LXP wrapper (page-at-a-time granularity) under the generic
buffer.  The client browses the first results of a broad query; the
simulator accounts every page request, byte, and virtual millisecond --
showing why "materializing the full answer on the client side is not
an option" for Web sources, and what prefetching buys.

Run:  python examples/web_browsing.py
"""

from repro import MIXMediator, WebLXPWrapper
from repro.bench import book_catalog, browse_first_k, format_table
from repro.buffer import PrefetchingBuffer
from repro.navigation import CountingDocument
from repro.webstore import HttpSimulator, make_catalog_site

N_BOOKS = 5000
PAGE_SIZE = 25

QUERY = """
CONSTRUCT <hits> $B {$B} </hits> {}
WHERE amazon book $B AND $B price._ $P AND $P < 12
"""


def build_site():
    books = book_catalog("amazon", N_BOOKS, seed=3)
    return make_catalog_site("amazon", books, page_size=PAGE_SIZE)


def run_browse(k: int, prefetch: int):
    """Browse the first k hits; return the HTTP stats."""
    site = build_site()
    http = HttpSimulator(site, latency_ms=80.0, ms_per_kb=5.0)
    wrapper = WebLXPWrapper(http)
    buffer = (PrefetchingBuffer(wrapper, lookahead=prefetch)
              if prefetch else None)

    mediator = MIXMediator()
    if buffer is not None:
        mediator.register_source("amazon", buffer)
    else:
        mediator.register_wrapper("amazon", wrapper)
    root = mediator.query(QUERY)
    found = browse_first_k(root, k, per_result=lambda b: b.to_tree())
    return found, http.stats


def main() -> None:
    total_pages = (N_BOOKS + PAGE_SIZE - 1) // PAGE_SIZE
    print("site: %d books across %d pages of %d"
          % (N_BOOKS, total_pages, PAGE_SIZE))
    print()

    rows = []
    for k in (1, 5, 20, 50):
        found, stats = run_browse(k, prefetch=0)
        rows.append([
            k, found, stats.requests,
            "%.1f%%" % (100.0 * stats.requests / total_pages),
            stats.bytes_transferred // 1024,
            round(stats.virtual_ms),
        ])
    print("Demand-driven browsing (no prefetch):")
    print(format_table(
        ["first-k", "hits", "page requests", "of site", "KiB",
         "virtual ms"],
        rows))
    print()

    # What the eager/materializing approach costs on the same site.
    site = build_site()
    http = HttpSimulator(site, latency_ms=80.0, ms_per_kb=5.0)
    mediator = MIXMediator()
    mediator.register_wrapper("amazon", WebLXPWrapper(http))
    answer = mediator.query_eager(QUERY)
    print("Eager baseline: %d hits, %d page requests (the whole "
          "site), %d KiB, %d virtual ms"
          % (len(answer.children), http.stats.requests,
             http.stats.bytes_transferred // 1024,
             round(http.stats.virtual_ms)))
    print()

    # Prefetching overlaps page fetches with client think time.
    print("Prefetching (first-20 browse):")
    rows = []
    for lookahead in (0, 1, 2, 4):
        site = build_site()
        http = HttpSimulator(site)
        buffer = PrefetchingBuffer(WebLXPWrapper(http),
                                   lookahead=lookahead)
        mediator = MIXMediator()
        mediator.register_source("amazon", buffer)
        root = mediator.query(QUERY)
        browse_first_k(root, 20, per_result=lambda b: b.to_tree())
        stats = buffer.prefetch_stats
        rows.append([lookahead, stats.demand_fills,
                     stats.prefetch_fills, http.stats.requests])
    print(format_table(
        ["lookahead", "demand fills (stalls)", "prefetch fills",
         "page requests"],
        rows))


if __name__ == "__main__":
    main()
